#!/usr/bin/env python3
"""Generate ``docs/OPERATORS.md`` from the operator registries.

The reference table is derived entirely from code — the same structures
the planner, optimizer and cluster layers consult at runtime:

* :data:`repro.luna.operators.OPERATOR_SPECS` — required params, arity;
* :data:`repro.luna.planner.OPERATOR_DOCS` — the one-line documentation
  that goes into the planner prompt;
* :data:`repro.luna.operators.SHARDABLE_OPERATIONS` — which operators
  the cluster layer may scatter across workers;
* :data:`repro.luna.operators.CASCADE_ELIGIBLE_OPERATIONS` — which the
  cost-based optimizer may annotate with a draft/verify cascade;
* :data:`repro.optimizer.TOKEN_PROFILES` /
  :data:`repro.optimizer.SELECTIVITY_PRIORS` — the cost model's priors.

``--check`` regenerates in memory and fails (exit 1) if the committed
file has drifted — run in CI so the docs can never go stale. Without
flags the file is (re)written in place.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.luna.operators import (  # noqa: E402
    CASCADE_ELIGIBLE_OPERATIONS,
    OPERATOR_SPECS,
    SHARDABLE_OPERATIONS,
)
from repro.luna.planner import OPERATOR_DOCS  # noqa: E402
from repro.optimizer import SELECTIVITY_PRIORS, TOKEN_PROFILES  # noqa: E402

TARGET = REPO / "docs" / "OPERATORS.md"

HEADER = """\
# Operator reference

<!-- GENERATED FILE - DO NOT EDIT BY HAND.
     Regenerate with: python scripts/gen_operator_docs.py
     CI runs `python scripts/gen_operator_docs.py --check` and fails on drift. -->

Every logical-plan operator Luna's planner may emit, with the
properties the rest of the system keys off. The table is generated
from the runtime registries in `src/repro/luna/operators.py`,
`src/repro/luna/planner.py` and `src/repro/optimizer/costmodel.py` by
`scripts/gen_operator_docs.py`; see [docs/OPTIMIZER.md](OPTIMIZER.md)
for how the optimizer uses the cost columns and
[docs/ARCHITECTURE.md](ARCHITECTURE.md) for where operators sit in the
stack.

Column key:

* **Arity** — number of plan inputs the operator consumes (`0` =
  source, `+` = one or more).
* **Shardable** — the cluster layer may scatter the operator across
  worker processes as part of a fused per-record segment
  (`SHARDABLE_OPERATIONS`).
* **Cascade** — the cost-based optimizer may annotate the node with a
  cheap-model draft / strong-model verify cascade
  (`CASCADE_ELIGIBLE_OPERATIONS`).
* **LLM** — the operator calls the LLM per record; the cost model's
  per-call token profile `(input, output)` is shown.
* **Sel. prior** — the cost model's default selectivity (fraction of
  rows surviving) before any learned statistics exist.
"""

FOOTER = """\

## Observability contract

Every operator executes inside a span named `op[<index>]:<Operation>`
(kind `operator`) carrying `records_in`/`records_out` attributes and an
`ok`/`error` status; the span parents the transform and LLM-request
spans beneath it, so per-operator dollars roll up in the trace's cost
account. Operators marked **LLM** additionally drive the `llm.*`
metrics (requests, tokens, cache/dedup hits) through the shared
client, and nodes the optimizer annotated with a cascade emit
`optimizer.cascade_drafts` / `optimizer.cascade_escalations` as the
executor drafts and escalates. The optimizer itself records
`optimizer.plans_optimized`, `optimizer.rewrites` and
`optimizer.stats_observations` (see
[docs/OPTIMIZER.md](OPTIMIZER.md#metrics)).
"""


def _row(name: str) -> str:
    spec = OPERATOR_SPECS[name]
    params = ", ".join(f"`{p}`" for p in spec["required"]) or "—"
    arity = str(spec["arity"])
    shardable = "yes" if name in SHARDABLE_OPERATIONS else "—"
    cascade = "yes" if name in CASCADE_ELIGIBLE_OPERATIONS else "—"
    if name in TOKEN_PROFILES:
        tokens_in, tokens_out = TOKEN_PROFILES[name]
        llm = f"yes ({tokens_in}/{tokens_out})"
    else:
        llm = "—"
    prior = (
        f"{SELECTIVITY_PRIORS[name]:g}" if name in SELECTIVITY_PRIORS else "—"
    )
    doc = OPERATOR_DOCS.get(name, "")
    return (
        f"| `{name}` | {arity} | {params} | {shardable} | {cascade} "
        f"| {llm} | {prior} | {doc} |"
    )


def render() -> str:
    lines = [
        HEADER,
        "| Operator | Arity | Required params | Shardable | Cascade "
        "| LLM (tok in/out) | Sel. prior | Description |",
        "|---|---|---|---|---|---|---|---|",
    ]
    lines.extend(_row(name) for name in OPERATOR_SPECS)
    lines.append(FOOTER)
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify docs/OPERATORS.md matches the registries; do not write",
    )
    args = parser.parse_args()

    expected = render()
    if args.check:
        if not TARGET.exists():
            print(f"{TARGET.relative_to(REPO)} is missing; run "
                  f"`python scripts/gen_operator_docs.py` and commit it")
            return 1
        actual = TARGET.read_text()
        if actual != expected:
            print(f"{TARGET.relative_to(REPO)} is stale relative to the "
                  f"operator registries; regenerate with "
                  f"`python scripts/gen_operator_docs.py` and commit")
            return 1
        print(f"{TARGET.relative_to(REPO)} is up to date "
              f"({len(OPERATOR_SPECS)} operators)")
        return 0

    TARGET.parent.mkdir(parents=True, exist_ok=True)
    TARGET.write_text(expected)
    print(f"wrote {TARGET.relative_to(REPO)} ({len(OPERATOR_SPECS)} operators)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
