#!/usr/bin/env python3
"""Check internal links in the repo's documentation.

Validates, for each checked markdown file:

* relative links ``[text](path)`` point at files/directories that exist;
* anchor links ``[text](path#anchor)`` and ``[text](#anchor)`` resolve
  to a heading in the target file (GitHub slug rules, simplified);
* backtick references to repo paths (``tests/...``, ``benchmarks/...``,
  ``examples/...``, ``docs/...``, ``src/repro/...``) exist on disk.

External links (http/https/mailto) are not fetched — CI must not
depend on the network. Exit code 0 iff everything resolves.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOCS = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "docs/ARCHITECTURE.md",
    "docs/ANALYSIS.md",
    "docs/OPTIMIZER.md",
    "docs/OPERATORS.md",
    "docs/GATEWAY.md",
]

MD_LINK = re.compile(r"\[([^\]]*)\]\(([^)\s]+)\)")
CODE_PATH = re.compile(
    r"`((?:tests|benchmarks|examples|docs|scripts|src/repro)/[\w./-]+?)`"
)
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading (simplified but sufficient)."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\s-]", "", text, flags=re.UNICODE)
    return re.sub(r"\s+", "-", text.strip())


def anchors_of(path: Path) -> set:
    return {github_slug(h) for h in HEADING.findall(path.read_text())}


def strip_code_blocks(text: str) -> str:
    """Drop fenced code blocks — links inside them are illustrative."""
    return re.sub(r"```.*?```", "", text, flags=re.DOTALL)


def check_file(doc: Path) -> list:
    errors = []
    text = doc.read_text()
    prose = strip_code_blocks(text)
    for label, target in MD_LINK.findall(prose):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, anchor = target.partition("#")
        if path_part:
            resolved = (doc.parent / path_part).resolve()
            if not resolved.exists():
                errors.append(f"{doc}: broken link [{label}]({target})")
                continue
        else:
            resolved = doc
        if anchor and resolved.suffix == ".md":
            if github_slug(anchor) not in anchors_of(resolved):
                errors.append(
                    f"{doc}: missing anchor [{label}]({target})"
                )
    for ref in CODE_PATH.findall(prose):
        if not (REPO / ref).exists():
            errors.append(f"{doc}: stale path reference `{ref}`")
    return errors


def main() -> int:
    errors = []
    for name in DOCS:
        doc = REPO / name
        if not doc.exists():
            errors.append(f"missing documentation file: {name}")
            continue
        errors.extend(check_file(doc))
    if errors:
        print(f"{len(errors)} broken documentation reference(s):")
        for error in errors:
            print(f"  - {error}")
        return 1
    print(f"doc links OK across {len(DOCS)} files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
