#!/usr/bin/env python
"""NTSB unstructured analytics with Luna (paper §6), including the
human-in-the-loop workflow the paper's design centres on.

Demonstrates:
* several sweep-and-harvest questions with plan + trace inspection;
* the optimizer's rewrites (string-match substitution, pushdown);
* correcting a misinterpreted plan through a LunaSession;
* provenance: tracing an answer back to source documents.

Run: python examples/ntsb_analytics.py
"""

from repro import ArynPartitioner, Luna, SycamoreContext
from repro.datagen import generate_ntsb_corpus


def main() -> None:
    records, raw_docs = generate_ntsb_corpus(100, seed=11)
    ctx = SycamoreContext(parallelism=8)
    (
        ctx.read.raw(raw_docs)
        .partition(ArynPartitioner())
        .extract_properties(
            {
                "state": "string",
                "incident_year": "int",
                "weather_related": "bool",
                "injuries_fatal": "int",
            }
        )
        .write.index("ntsb")
    )
    print(f"indexed {len(ctx.catalog.get('ntsb'))} reports; "
          f"discovered schema: {ctx.catalog.get('ntsb').schema}")

    luna = Luna(ctx, policy="balanced")

    # --- Question 1: the paper's flagship example, fully explained. -----
    result = luna.query(
        "What percent of environmentally caused incidents were due to wind?",
        index="ntsb",
    )
    print("\n" + "=" * 70)
    print(result.explain())

    # --- Question 2: optimizer turns a semantic filter into a free
    # structured filter on the already-extracted property. --------------
    result = luna.query("How many incidents in 2022 were weather related?", index="ntsb")
    print("\n" + "=" * 70)
    print("Q: How many incidents in 2022 were weather related?")
    print("optimizations:", *result.optimization_log, sep="\n  ")
    print(f"answer: {result.answer}  "
          f"(truth: {sum(1 for r in records if r.year == 2022 and r.weather_related)})")

    # --- Question 3: grouping. ------------------------------------------
    result = luna.query("Which state had the most incidents caused by wind?", index="ntsb")
    print("\n" + "=" * 70)
    print("Q: Which state had the most incidents caused by wind?")
    print(f"answer: {result.answer}")

    # --- Human in the loop: inspect, then correct, a plan. --------------
    print("\n" + "=" * 70)
    print("human-in-the-loop: 'How many serious incidents happened in Alaska?'")
    session = luna.session("How many serious incidents happened in Alaska?", index="ntsb")
    print("planner proposed:")
    print(session.show_plan())
    # The analyst decides "serious" means serious *injuries* and replaces
    # the fuzzy semantic filter with a precise condition.
    for i, node in enumerate(session.plan.nodes):
        if node.operation == "LlmFilter":
            session.set_param(i, "condition", "involving serious injuries to persons")
    corrected = session.run()
    print(f"corrected answer: {corrected.answer}")

    # --- Conversational follow-ups (§6.1 iterative refinement) ----------
    print("\n" + "=" * 70)
    print("follow-up queries: filters compose across turns")
    first = luna.query("How many incidents were caused by wind?", index="ntsb")
    print(f"Q: How many incidents were caused by wind?  A: {first.answer}")
    follow = luna.follow_up("How many of those happened in 2022?")
    print(f"Q: How many of those happened in 2022?      A: {follow.answer}")
    truth = sum(1 for r in records if r.cause_detail == "wind" and r.year == 2022)
    print(f"(ground truth: {truth})")

    # --- Provenance -------------------------------------------------------
    print("\n" + "=" * 70)
    print("provenance: which documents back the wind count?")
    session = luna.session("How many incidents were caused by wind?", index="ntsb")
    result = session.run()
    filter_entry = next(
        e for e in result.trace.entries if e.operation in ("LlmFilter", "BasicFilter")
    )
    print(
        f"answer {result.answer} is supported by {filter_entry.records_out} "
        f"documents surviving the filter (trace step {filter_entry.index})"
    )


if __name__ == "__main__":
    main()
