#!/usr/bin/env python
"""RAG vs Luna: the paper's §2 argument, live.

Builds one corpus, serves the same questions through a classic RAG
pipeline (chunk -> embed -> top-k retrieve -> generate) and through Luna
(sweep-and-harvest query plans), and prints both answers next to ground
truth. Point lookups favour RAG's simplicity; aggregations break it.

Run: python examples/rag_vs_luna.py
"""

from repro import ArynPartitioner, Luna, RagPipeline, SycamoreContext
from repro.datagen import generate_ntsb_corpus


def main() -> None:
    records, raw_docs = generate_ntsb_corpus(120, seed=17)
    ctx = SycamoreContext(parallelism=8)
    docs = (
        ctx.read.raw(raw_docs)
        .partition(ArynPartitioner())
        .extract_properties(
            {"state": "string", "incident_year": "int", "aircraft": "string"}
        )
    )
    docs.write.index("ntsb")

    # RAG side: chunk the same documents into a vector index.
    chunk_index = ctx.catalog.create("chunks")
    RagPipeline.ingest(chunk_index, ctx.read.index("ntsb").take_all(), chunk_tokens=200)
    rag = RagPipeline(chunk_index, ctx.llm, top_k=5)
    luna = Luna(ctx, policy="balanced")

    target = records[3]
    icing_truth = sum(1 for r in records if r.cause_detail == "icing")
    env = sum(1 for r in records if r.cause_category == "environmental")
    wind = sum(1 for r in records if r.cause_detail == "wind")

    cases = [
        (
            f"What aircraft was involved in the incident near "
            f"{target.city}, {target.state} on {target.date}?",
            target.aircraft,
        ),
        ("How many incidents were caused by icing?", icing_truth),
        (
            "What percent of environmentally caused incidents were due to wind?",
            f"{100.0 * wind / env:.1f}%",
        ),
    ]

    for question, truth in cases:
        rag_answer = rag.answer(question)
        luna_answer = luna.query(question, index="ntsb").answer
        print("=" * 72)
        print(f"Q: {question}")
        print(f"  truth: {truth}")
        print(f"  RAG (top-5 chunks): {str(rag_answer.answer)[:90]}")
        print(f"  Luna:               {str(luna_answer)[:90]}")

    print("=" * 72)
    print(
        "Note how RAG matches Luna on the point lookup but undercounts the\n"
        "aggregations: only the retrieved top-k chunks can ever be counted\n"
        "— the keyhole problem of §2. Run benchmarks/test_bench_rag_vs_luna_scale.py\n"
        "to see the gap widen with corpus size."
    )


if __name__ == "__main__":
    main()
