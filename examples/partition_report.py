#!/usr/bin/env python
"""The Aryn Partitioner on one accident report (paper Figure 2 / §4).

Shows the element inventory the vision pipeline recovers — typed regions,
a structured table with identified cells, an image with a summary — and
contrasts it with the naive text-extraction baseline and with the weaker
cloud-vendor detector the paper compares against.

Run: python examples/partition_report.py
"""

from repro import ArynPartitioner, NaiveTextPartitioner
from repro.datagen import generate_ntsb_corpus
from repro.docmodel import TableElement
from repro.partitioner import CLOUD_BASELINE_DETECTOR


def show_elements(title: str, doc) -> None:
    print(f"\n--- {title} ({len(doc.elements)} elements) ---")
    for element in doc.elements:
        preview = element.text_representation().replace("\n", " ")[:60]
        page = f"p{element.page}" if element.page is not None else "--"
        print(f"  [{page}] {element.type:<15} {preview}")


def main() -> None:
    _, raw_docs = generate_ntsb_corpus(1, seed=7)
    raw = raw_docs[0]

    # The Aryn Partitioner: vision segmentation + table structure + OCR.
    aryn = ArynPartitioner()
    doc = aryn.partition(raw)
    show_elements("Aryn Partitioner", doc)

    # Table extraction: the paper converts tables "to formats like HTML,
    # CSV, and Pandas Dataframes".
    tables = [e for e in doc.elements if isinstance(e, TableElement)]
    if tables:
        table = tables[0].table
        print("\nfirst recovered table as CSV:")
        print(table.to_csv())
        print("as records:", table.to_records()[:2])
        print("as HTML:", table.to_html()[:120], "...")

    # The weaker detector the paper benchmarks against (§4).
    cloud = ArynPartitioner(detector=CLOUD_BASELINE_DETECTOR)
    cloud_doc = cloud.partition(raw)
    print(
        f"\ncloud-vendor baseline recovered {len(cloud_doc.elements)} elements "
        f"(Aryn: {len(doc.elements)}); tables: "
        f"{len(cloud_doc.tables)} vs {len(doc.tables)}"
    )

    # The structure-blind baseline: a flat character stream.
    naive = NaiveTextPartitioner().partition(raw)
    print(
        f"naive text extraction: {len(naive.elements)} untyped chunks, "
        f"{len(naive.tables)} tables (table semantics lost)"
    )


if __name__ == "__main__":
    main()
