#!/usr/bin/env python
"""Quickstart: the paper's Figure 3 pipeline plus one Luna query.

Generates a small synthetic NTSB corpus, runs the canonical Sycamore ETL
script (partition -> extract_properties -> explode -> embed -> write to a
vector index), then asks Luna the paper's sample question.

Run: python examples/quickstart.py
"""

from repro import ArynPartitioner, Luna, SycamoreContext
from repro.datagen import generate_ntsb_corpus


def main() -> None:
    # 1. Data: a synthetic stand-in for the NTSB accident-report PDFs.
    records, raw_docs = generate_ntsb_corpus(60, seed=0)
    print(f"generated {len(raw_docs)} synthetic NTSB reports")

    # 2. ETL (paper Figure 3): partition, extract, explode, embed, write.
    ctx = SycamoreContext(parallelism=4)
    docs = (
        ctx.read.raw(raw_docs)
        .partition(ArynPartitioner())
        .extract_properties(
            {
                "us_state": "string",
                "probable_cause": "string",
                "weather_related": "bool",
            }
        )
        .materialize()
    )
    docs.write.index("ntsb")  # document-level index for analytics
    docs.explode().embed().write.index("ntsb_chunks")  # chunk-level vectors

    sample = docs.first()
    print("\nextract_properties output for one document (paper Figure 4):")
    for key in ("us_state", "probable_cause", "weather_related"):
        print(f"  {key}: {sample.properties[key]!r}")

    # 3. Query (paper §6.2): natural language in, audited answer out.
    luna = Luna(ctx, policy="balanced")
    result = luna.query(
        "What percent of environmentally caused incidents were due to wind?",
        index="ntsb",
    )
    print("\ngenerated Sycamore code:")
    print(result.code)
    print(f"\nanswer: {result.answer:.1f}%")
    print(
        f"(LLM calls: {result.trace.total_llm_calls()}, "
        f"cost: ${result.trace.total_cost_usd():.4f})"
    )

    truth_env = sum(1 for r in records if r.cause_category == "environmental")
    truth_wind = sum(1 for r in records if r.cause_detail == "wind")
    print(f"ground truth: {100.0 * truth_wind / truth_env:.1f}%")


if __name__ == "__main__":
    main()
