#!/usr/bin/env python
"""Q&A over product service manuals (paper §2b, manufacturing use case).

"Building Q&A systems over product and service manuals involving text,
images, and tables for thousands of parts and products." This example
partitions a manual corpus, answers torque-spec questions straight from
recovered table structure, uses OCR to read a scanned legacy appendix,
and runs aggregate questions across the fleet of manuals.

Run: python examples/manuals_qa.py
"""

from repro import ArynPartitioner, SycamoreContext
from repro.datagen import generate_manuals_corpus
from repro.docmodel import TableElement


def torque_of(document, part_name):
    """Look up a part's torque from the recovered specification table."""
    for element in document.elements:
        if isinstance(element, TableElement):
            values = element.table.lookup("Name", part_name, "Torque (Nm)")
            if values:
                return float(values[0])
    return None


def main() -> None:
    manuals, raw_docs = generate_manuals_corpus(25, seed=3)
    ctx = SycamoreContext(parallelism=4)
    docs = (
        ctx.read.raw(raw_docs)
        .partition(ArynPartitioner())
        .extract_properties(
            {"product": "string", "model_number": "string", "revision_year": "int"}
        )
    )
    docs.write.index("manuals")
    parsed = {d.doc_id: d for d in ctx.read.index("manuals").take_all()}
    print(f"indexed {len(parsed)} service manuals")

    # --- Table-lookup QA: the core manufacturing question. --------------
    print("\ntorque-spec lookups (structure-aware):")
    correct = total = 0
    for manual in manuals[:8]:
        part = manual.parts[0]
        answer = torque_of(parsed[manual.manual_id], part.name)
        status = "ok " if answer == part.torque_nm else "MISS"
        print(
            f"  [{status}] {manual.model_number}: {part.name} -> {answer} Nm "
            f"(spec: {part.torque_nm})"
        )
        total += 1
        correct += answer == part.torque_nm
    print(f"  {correct}/{total} exact")

    # --- Scanned appendix: facts only OCR can reach. ---------------------
    with_appendix = next(m for m in manuals if m.has_scanned_appendix)
    doc = parsed[with_appendix.manual_id]
    appendix_text = "\n".join(e.text for e in doc.images if e.text)
    print(f"\nscanned appendix of {with_appendix.model_number} (via OCR):")
    print(f"  {appendix_text[:100]}...")

    # --- Fleet-level analytics over manual metadata. ----------------------
    by_year = ctx.read.index("manuals").aggregate(
        "count", "revision_year", group_by="revision_year"
    )
    print("\nmanual revisions by year:")
    for year, count in sorted((k, v) for k, v in by_year.items() if k):
        print(f"  {year}: {int(count)}")


if __name__ == "__main__":
    main()
