#!/usr/bin/env python
"""Financial-analyst workload over earnings reports (paper §2d).

Covers the paper's motivating questions — revenue growth of companies
whose CEO changed, sector comparisons, the BNPL market — plus the
pay-as-you-go knowledge-graph projection the paper discusses (§7).

Run: python examples/earnings_analytics.py
"""

from repro import ArynPartitioner, Luna, SycamoreContext
from repro.datagen import generate_earnings_corpus
from repro.datagen.earnings import build_market_database
from repro.docmodel import Document
from repro.indexes import GraphStore


def main() -> None:
    records, raw_docs = generate_earnings_corpus(80, seed=13)
    ctx = SycamoreContext(parallelism=8)
    docs = (
        ctx.read.raw(raw_docs)
        .partition(ArynPartitioner())
        .extract_properties(
            {
                "company": "string",
                "sector": "string",
                "revenue_musd": "float",
                "revenue_growth_pct": "float",
                "ceo_changed": "bool",
            }
        )
        .classify(["positive", "negative", "neutral"], "sentiment")
    )
    docs.write.index("earnings")
    print(f"indexed {len(ctx.catalog.get('earnings'))} earnings reports")

    # The structured "database" of the paper's data-integration pattern.
    market_rows = build_market_database(records, seed=1)
    ctx.read.documents(
        [Document(properties=row) for row in market_rows]
    ).write.index("market_db")

    luna = Luna(ctx, policy="balanced")

    questions = [
        "What was the average revenue growth of companies whose CEO recently changed?",
        "How many companies in the Cloud sector lowered guidance?",
        "Which sector had the most companies with negative sentiment?",
        "List the fastest growing companies in the BNPL market.",
    ]
    for question in questions:
        result = luna.query(question, index="earnings")
        answer = result.answer
        if isinstance(answer, str) and len(answer) > 120:
            answer = answer[:117] + "..."
        print(f"\nQ: {question}\nA: {answer}")

    # Data integration (paper §1): "list the fastest growing companies in
    # the BNPL market and their competitors, where the competitive
    # information may involve a lookup in a database".
    result = luna.query(
        "List the fastest growing companies in the BNPL market and their competitors.",
        index="earnings",
        secondary_indexes=["market_db"],
    )
    print("\nQ: ... and their competitors (join against market_db)")
    for company, competitors in result.answer:
        print(f"  {company}: {', '.join(competitors)}")

    # Execution history (§6.1): everything asked so far, with costs.
    print("\nquery history:")
    print(luna.history.render())

    # Direct DocSet analytics (the data-engineer path, paper §5).
    ds = ctx.read.index("earnings")
    by_sector = ds.aggregate("avg", "revenue_growth_pct", group_by="sector")
    print("\naverage revenue growth by sector (DocSet API):")
    for sector, value in sorted(by_sector.items(), key=lambda kv: str(kv[0])):
        if sector is not None and value is not None:
            print(f"  {sector:<12} {value:6.1f}%")

    # Pay-as-you-go knowledge graph (paper §7): project extracted facts
    # into a graph with document provenance.
    graph = GraphStore()
    written = ds.write.graph(
        graph,
        subject_property="company",
        edges=[("in_sector", "sector"), ("sentiment", "sentiment")],
    )
    print(f"\nknowledge graph: {graph.num_entities()} entities, "
          f"{graph.num_triples()} triples ({written} written)")
    ai_companies = graph.incoming("AI", "in_sector")
    print(f"companies in the AI sector (graph lookup): {ai_companies[:5]}...")
    if ai_companies:
        provenance = graph.provenance(ai_companies[0], "in_sector", "AI")
        print(f"fact provenance for {ai_companies[0]!r}: report {provenance}")


if __name__ == "__main__":
    main()
