"""Tests for the simulated-LLM task skills (extraction, filter, classify,
summarize, QA) driven through the full prompt pipeline."""

import json
import random

import pytest

from repro.llm import (
    ANSWER_QUESTION,
    CLASSIFY_TEXT,
    EXTRACT_PROPERTIES,
    FILTER_DOCUMENT,
    ReliableLLM,
    SUMMARIZE_COLLECTION,
    SUMMARIZE_DOCUMENT,
    SimulatedLLM,
    render_task_prompt,
)
from repro.llm.skills.common import Noise, extract_field, find_labeled_value, label_lines

NTSB_DOC = """Report ID: NTSB-2023-00042
Location: Anchorage, AK
Date: May 3, 2023
Aircraft: Cessna 172
Aircraft Damage: substantial

Injuries
Injury Level | Count
Fatal | 1
Serious | 2
Minor | 0

Analysis
On May 3, 2023, a Cessna 172 was involved in an accident near Anchorage, AK.
The pilot reported that during the landing, the airplane encountered a strong
gusty crosswind. The airplane impacted terrain and sustained substantial damage.
Probable Cause: The airplane's encounter with a gusty crosswind during the
landing, which resulted in a loss of directional control.
"""


@pytest.fixture()
def oracle():
    return ReliableLLM(SimulatedLLM(seed=0))


class TestLabelLines:
    def test_parses_pairs(self):
        pairs = label_lines("Alpha: one\nnot a pair\nBeta Gamma: two three")
        assert ("Alpha", "one") in pairs
        assert ("Beta Gamma", "two three") in pairs
        assert len(pairs) == 2

    def test_fuzzy_field_match(self):
        assert find_labeled_value("us_state_abbrev", "Location: Anchorage, AK") is None
        assert find_labeled_value("location", "Location: Anchorage, AK") == "Anchorage, AK"
        assert find_labeled_value("aircraft_damage", NTSB_DOC) == "substantial"

    def test_no_match(self):
        assert find_labeled_value("zzz", "Alpha: one") is None


class TestExtractField:
    def test_state(self):
        assert extract_field("us_state_abbrev", "string", NTSB_DOC) == "AK"

    def test_date_iso(self):
        assert extract_field("incident_date", "string", NTSB_DOC) == "2023-05-03"

    def test_year(self):
        assert extract_field("incident_year", "int", NTSB_DOC) == 2023

    def test_boolean_concept(self):
        assert extract_field("weather_related", "bool", NTSB_DOC) is True
        assert extract_field("weather_related", "bool", "engine failure") is False

    def test_probable_cause_sentence(self):
        cause = extract_field("probable_cause", "string", NTSB_DOC)
        assert "gusty crosswind" in cause

    def test_table_numbers(self):
        assert extract_field("injuries_fatal", "int", NTSB_DOC) == 1
        assert extract_field("injuries_serious", "int", NTSB_DOC) == 2

    def test_labeled_string(self):
        assert extract_field("aircraft", "string", NTSB_DOC) == "Cessna 172"

    def test_missing_returns_none(self):
        assert extract_field("ticker_symbol", "string", NTSB_DOC) is None


class TestExtractionSkill:
    def test_full_schema(self, oracle):
        schema = {
            "us_state": "string",
            "incident_date": "string",
            "weather_related": "bool",
            "injuries_fatal": "int",
        }
        prompt = EXTRACT_PROPERTIES.render(
            schema=json.dumps(schema), document=NTSB_DOC
        )
        result = oracle.complete_json(prompt, model="sim-oracle")
        assert result == {
            "us_state": "AK",
            "incident_date": "2023-05-03",
            "weather_related": True,
            "injuries_fatal": 1,
        }

    def test_all_schema_keys_present_even_if_null(self, oracle):
        prompt = EXTRACT_PROPERTIES.render(
            schema=json.dumps({"nonexistent_field": "string"}), document=NTSB_DOC
        )
        result = oracle.complete_json(prompt, model="sim-oracle")
        assert result == {"nonexistent_field": None}


class TestFilterSkill:
    @pytest.mark.parametrize(
        "condition,expected",
        [
            ("caused by wind", "yes"),
            ("caused by environmental factors", "yes"),
            ("caused by icing", "no"),
            ("involving a bird strike", "no"),
            ("not caused by wind", "no"),
        ],
    )
    def test_verdicts(self, oracle, condition, expected):
        prompt = FILTER_DOCUMENT.render(condition=condition, document=NTSB_DOC)
        assert oracle.complete(prompt, model="sim-oracle").text == expected


class TestClassifySkill:
    def test_cause_classification(self, oracle):
        prompt = CLASSIFY_TEXT.render(
            categories="environmental, mechanical, pilot error",
            document=NTSB_DOC,
        )
        assert oracle.complete(prompt, model="sim-oracle").text == "environmental"

    def test_empty_categories(self, oracle):
        prompt = CLASSIFY_TEXT.render(categories="", document=NTSB_DOC)
        assert oracle.complete(prompt, model="sim-oracle").text == ""


class TestSummarizeSkill:
    def test_summary_is_extractive(self, oracle):
        prompt = SUMMARIZE_DOCUMENT.render(document=NTSB_DOC, max_sentences="2")
        summary = oracle.complete(prompt, model="sim-oracle").text
        assert summary
        # every summary sentence must come from the source
        flat_source = " ".join(NTSB_DOC.split())
        for sentence in summary.split(". "):
            assert sentence.split(".")[0][:40] in flat_source

    def test_collection_summary_counts_docs(self, oracle):
        docs = "\n---\n".join(["The wind was strong.", "The engine failed badly."])
        prompt = SUMMARIZE_COLLECTION.render(documents=docs)
        text = oracle.complete(prompt, model="sim-oracle").text
        assert text.startswith("Synthesis of 2 documents:")
        assert "wind" in text and "engine" in text


class TestQaSkill:
    def _ask(self, oracle, question, passages):
        prompt = ANSWER_QUESTION.render(
            question=question, context="\n---\n".join(passages)
        )
        return oracle.complete(prompt, model="sim-oracle").text

    def test_point_lookup(self, oracle):
        passages = [
            "The accident near Anchorage, AK involved a Cessna 172.",
            "Weather in Miami was clear.",
        ]
        answer = self._ask(oracle, "What aircraft was involved near Anchorage?", passages)
        assert "Cessna 172" in answer

    def test_counting_limited_to_context(self, oracle):
        passages = [
            "Incident one was caused by a gusty wind.",
            "Incident two was caused by engine failure.",
            "Incident three involved a strong crosswind.",
        ]
        answer = self._ask(oracle, "How many incidents were caused by wind?", passages)
        assert answer.strip() == "2"

    def test_empty_context_says_dont_know(self, oracle):
        answer = self._ask(oracle, "What happened?", [])
        assert "do not know" in answer.lower()

    def test_percentage_over_context(self, oracle):
        passages = [
            "Incident A: gusty wind during landing.",
            "Incident B: icing conditions in cruise.",
        ]
        answer = self._ask(
            oracle, "What percent of incidents were caused by wind?", passages
        )
        assert "50.0%" in answer


class TestNoise:
    def test_invalid_quality(self):
        with pytest.raises(ValueError):
            Noise(quality=1.5, rng=random.Random(0))

    def test_oracle_never_slips(self):
        noise = Noise(quality=1.0, rng=random.Random(0))
        assert not any(noise.slips(10.0) for _ in range(100))

    def test_zero_quality_always_slips(self):
        noise = Noise(quality=0.0, rng=random.Random(0))
        assert all(noise.slips(1.0) for _ in range(100))

    def test_slip_rate_scales_with_weight(self):
        rng = random.Random(0)
        noise = Noise(quality=0.9, rng=rng)
        heavy = sum(noise.slips(5.0) for _ in range(2000))
        rng2 = random.Random(0)
        noise2 = Noise(quality=0.9, rng=rng2)
        light = sum(noise2.slips(0.5) for _ in range(2000))
        assert heavy > light * 3
