"""Tests for repro.gateway: middleware, routes, streaming, overload.

The contracts under test (docs/GATEWAY.md):

* middleware composes: request ids are assigned (or honored) and echoed,
  bearer tokens map to tenants, the token bucket sheds 429 with a
  Retry-After, and every request (including shed ones) is access-logged;
* typed serving failures map to typed HTTP statuses (429/504/499/503)
  with machine-readable bodies;
* ``?stream=1`` delivers the ticket's progress events as SSE over a real
  socket, ending in exactly one terminal ``result``/``error`` frame;
* a client that disconnects mid-stream cancels its query and leaks
  nothing (the module-wide leak sanitizer enforces the thread half);
* the request id a client supplies is reachable end-to-end: access log,
  progress events, ``GET /v1/query/<request-id>``, and the serve trace.
"""

import json
import threading
import time

import pytest

from repro.datagen import generate_ntsb_corpus
from repro.lifecycle import DeadlineExceeded, QueryCancelled
from repro.llm import ReliableLLM, SimulatedLLM
from repro.observability import MetricsRegistry, Tracer
from repro.partitioner import ArynPartitioner
from repro.gateway import (
    AccessLogMiddleware,
    BearerAuthMiddleware,
    Gateway,
    GatewayClient,
    GatewayConfig,
    GatewayError,
    RateLimitMiddleware,
    RequestContext,
    RequestIdMiddleware,
    Response,
    TokenBucket,
    error_response,
)
from repro.serving import Overloaded, QueryService, ServiceClosed, ServiceConfig
from repro.sycamore import SycamoreContext

SCHEMA = {
    "state": "string",
    "incident_year": "int",
    "weather_related": "bool",
    "injuries_fatal": "int",
}


def build_ctx(n_docs=10, seed=13, latency_scale=0.0):
    registry = MetricsRegistry()
    tracer = Tracer()
    llm = ReliableLLM(
        SimulatedLLM(seed=seed, real_latency_scale=latency_scale),
        cache_enabled=False,
        tracer=tracer,
        registry=registry,
    )
    ctx = SycamoreContext(
        llm=llm, parallelism=2, seed=seed, tracer=tracer, registry=registry
    )
    _, raws = generate_ntsb_corpus(n_docs, seed=seed)
    (
        ctx.read.raw(raws)
        .partition(ArynPartitioner(seed=0))
        .extract_properties(SCHEMA, model="sim-large")
        .write.index("ntsb")
    )
    return ctx


@pytest.fixture(scope="module")
def fast_ctx():
    return build_ctx()


@pytest.fixture(scope="module")
def slow_ctx():
    # Real (scaled) LLM latency, so queries stay in flight long enough
    # for streaming/cancel/disconnect tests to act mid-query.
    return build_ctx(n_docs=8, latency_scale=0.05)


def make_gateway(ctx, service_config=None, gateway_config=None):
    service = QueryService(
        ctx, service_config or ServiceConfig(max_workers=2), registry=MetricsRegistry()
    )
    return Gateway(service, gateway_config).start()


@pytest.fixture()
def gateway(fast_ctx):
    gw = make_gateway(fast_ctx)
    yield gw
    gw.close()


@pytest.fixture()
def client(gateway):
    return GatewayClient("127.0.0.1", gateway.port, timeout_s=30.0)


def _ctx_for(path="/v1/query", method="POST", headers=None, tenant=""):
    return RequestContext(
        method=method, path=path, headers=headers or {}, tenant=tenant
    )


# ----------------------------------------------------------------------
# Middleware units
# ----------------------------------------------------------------------


class TestRequestIdMiddleware:
    def test_generates_and_echoes(self):
        mw = RequestIdMiddleware()
        ctx = _ctx_for()
        assert mw.before(ctx) is None
        assert ctx.request_id.startswith("req-")
        response = Response()
        mw.after(ctx, response)
        assert response.headers["X-Request-Id"] == ctx.request_id

    def test_client_supplied_id_wins(self):
        mw = RequestIdMiddleware()
        ctx = _ctx_for(headers={"x-request-id": "trace-me-7"})
        mw.before(ctx)
        assert ctx.request_id == "trace-me-7"

    def test_ids_are_unique(self):
        mw = RequestIdMiddleware()
        seen = set()
        for _ in range(5):
            ctx = _ctx_for()
            mw.before(ctx)
            seen.add(ctx.request_id)
        assert len(seen) == 5


class TestBearerAuthMiddleware:
    def test_valid_token_maps_tenant(self):
        mw = BearerAuthMiddleware({"s3cret": "acme"})
        ctx = _ctx_for(headers={"authorization": "Bearer s3cret"})
        assert mw.before(ctx) is None
        assert ctx.tenant == "acme"

    def test_missing_or_unknown_token_is_401(self):
        mw = BearerAuthMiddleware({"s3cret": "acme"})
        denied = mw.before(_ctx_for())
        assert denied is not None and denied.status == 401
        assert denied.headers["WWW-Authenticate"] == "Bearer"
        wrong = mw.before(_ctx_for(headers={"authorization": "Bearer nope"}))
        assert wrong is not None and wrong.status == 401

    def test_ops_routes_stay_open_unless_protected(self):
        mw = BearerAuthMiddleware({"s3cret": "acme"})
        assert mw.before(_ctx_for(path="/ops/health", method="GET")) is None
        strict = BearerAuthMiddleware({"s3cret": "acme"}, protect_ops=True)
        denied = strict.before(_ctx_for(path="/ops/health", method="GET"))
        assert denied is not None and denied.status == 401


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = [0.0]
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=lambda: clock[0])
        assert bucket.try_acquire()[0]
        assert bucket.try_acquire()[0]
        granted, retry_after = bucket.try_acquire()
        assert not granted
        assert retry_after == pytest.approx(1.0)
        clock[0] = 1.0
        assert bucket.try_acquire()[0]

    def test_rejects_nonpositive_config(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=1)


class TestRateLimitMiddleware:
    def test_per_tenant_isolation_and_429(self):
        clock = [0.0]
        mw = RateLimitMiddleware(rate_per_s=1.0, burst=1.0, clock=lambda: clock[0])
        assert mw.before(_ctx_for(tenant="a")) is None
        shed = mw.before(_ctx_for(tenant="a"))
        assert shed is not None and shed.status == 429
        assert shed.payload["error"] == "rate_limited"
        assert shed.payload["retry_after_s"] > 0
        assert int(shed.headers["Retry-After"]) >= 1
        # Tenant b has its own bucket.
        assert mw.before(_ctx_for(tenant="b")) is None
        assert mw.shed == 1

    def test_ops_exempt(self):
        mw = RateLimitMiddleware(rate_per_s=1.0, burst=1.0)
        for _ in range(5):
            assert mw.before(_ctx_for(path="/ops/metrics", method="GET")) is None


class TestAccessLog:
    def test_records_are_bounded_and_structured(self):
        mw = AccessLogMiddleware(max_records=3)
        for i in range(5):
            ctx = _ctx_for()
            ctx.request_id = f"req-{i}"
            mw.after(ctx, Response(status=200))
        records = mw.records()
        assert len(records) == 3
        assert records[-1].request_id == "req-4"
        line = records[-1].render()
        assert "request_id=req-4" in line and "POST /v1/query 200" in line

    def test_sink_errors_never_propagate(self):
        def bad_sink(line):
            raise RuntimeError("boom")

        mw = AccessLogMiddleware(sink=bad_sink)
        mw.after(_ctx_for(), Response())  # must not raise
        assert len(mw.records()) == 1


# ----------------------------------------------------------------------
# Error mapping
# ----------------------------------------------------------------------


class TestErrorMapping:
    def test_overloaded_is_429_with_retry_after(self):
        response = error_response(
            Overloaded("queue full", reason="queue_full", retry_after_s=2.5)
        )
        assert response.status == 429
        assert response.payload["error"] == "overloaded"
        assert response.payload["retry_after_s"] == 2.5
        assert response.headers["Retry-After"] == "3"

    def test_deadline_exceeded_is_504(self):
        response = error_response(
            DeadlineExceeded(
                "budget spent", budget_s=1.0, elapsed_s=1.2, retry_after_s=0.4
            )
        )
        assert response.status == 504
        assert response.payload["error"] == "deadline_exceeded"
        assert int(response.headers["Retry-After"]) >= 1

    def test_cancelled_closed_timeout_and_defaults(self):
        assert error_response(QueryCancelled("gone", query_id="q1")).status == 499
        assert error_response(ServiceClosed("closed")).status == 503
        import concurrent.futures

        sync = error_response(concurrent.futures.TimeoutError())
        assert sync.status == 504 and sync.payload["error"] == "sync_timeout"
        assert error_response(KeyError("missing")).status == 404
        assert error_response(ValueError("bad")).status == 400
        assert error_response(RuntimeError("boom")).status == 500


# ----------------------------------------------------------------------
# Routes over real sockets
# ----------------------------------------------------------------------


class TestQueryRoutes:
    def test_sync_query_and_cache_hit(self, gateway, client):
        first = client.query(
            "How many incidents were caused by wind?", index="ntsb", tenant="acme"
        )
        assert first["result_cache"] == "miss"
        assert first["query_id"].startswith("q")
        again = client.query(
            "How many incidents were caused by wind?", index="ntsb", tenant="acme"
        )
        assert again["result_cache"] == "hit"
        assert again["answer"] == first["answer"]
        assert again["saved_usd"] > 0

    def test_request_id_round_trip(self, gateway, client):
        served = client.query(
            "How many incidents had fatal injuries?",
            index="ntsb",
            request_id="my-req-1",
        )
        assert served["request_id"] == "my-req-1"
        # Status lookup works by request id, not just query id.
        status = client.status("my-req-1")
        assert status["query_id"] == served["query_id"]
        # Every progress event carries the request id.
        assert all(
            event["detail"].get("request_id") == "my-req-1"
            for event in status["events"]
        )
        # And the access log links request id to query id.
        records = client.accesslog()
        mine = [r for r in records if r["request_id"] == "my-req-1"]
        assert mine and mine[0]["query_id"] == served["query_id"]

    def test_request_id_reaches_trace_json(self, gateway, client):
        served = client.query(
            "How many incidents happened in 2023?",
            index="ntsb",
            request_id="traced-9",
        )
        trace = client.trace("traced-9")
        root = trace["spans"][0]
        assert root["name"] == "serve:query"
        assert root["attributes"]["request_id"] == "traced-9"
        assert root["attributes"]["query_id"] == served["query_id"]
        assert trace["trace_id"] == served["trace_id"]

    def test_bad_requests_are_typed_400s(self, gateway, client):
        with pytest.raises(GatewayError) as excinfo:
            client.query("", index="ntsb")
        assert excinfo.value.status == 400
        with pytest.raises(GatewayError) as excinfo:
            client._call("POST", "/v1/query", {"question": "hi"})  # no index
        assert excinfo.value.status == 400

    def test_malformed_json_is_400(self, gateway):
        import http.client

        connection = http.client.HTTPConnection("127.0.0.1", gateway.port, timeout=10)
        try:
            connection.request(
                "POST",
                "/v1/query",
                body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            length = int(response.getheader("Content-Length") or "0")
            payload = json.loads(response.read(length))
            assert response.status == 400
            assert payload["error"] in ("bad_request", "JSONDecodeError")
        finally:
            connection.close()

    def test_unknown_route_and_unknown_query_are_404(self, gateway, client):
        with pytest.raises(GatewayError) as excinfo:
            client._call("GET", "/v1/nope")
        assert excinfo.value.status == 404
        with pytest.raises(GatewayError) as excinfo:
            client.status("q999999")
        assert excinfo.value.status == 404

    def test_streaming_delivers_events_then_single_result(self, gateway, client):
        handle = client.query_stream(
            "How many incidents were caused by icing?", index="ntsb"
        )
        frames = list(handle.events())
        names = [name for name, _ in frames]
        assert names[0] == "open"
        assert "admitted" in names and "completed" in names
        assert names[-1] == "result"
        # Exactly one terminal progress frame and one result frame.
        assert names.count("completed") == 1
        assert names.count("result") == 1
        result = frames[-1][1]
        assert result["answer"] is not None
        # Stage frames carry the request id (access-log correlation).
        stage_frames = [p for n, p in frames if n == "admitted"]
        assert stage_frames[0]["detail"]["request_id"]

    def test_session_and_follow_up_over_http(self, gateway, client):
        opened = client.open_session(index="ntsb", tenant="acme")
        session_id = opened["session"]
        first = client.query(
            "How many incidents had fatal injuries?", session=session_id
        )
        assert first["session"] == session_id
        follow = client.query(
            "Of those, how many were weather related?",
            session=session_id,
            follow_up=True,
        )
        assert follow["session"] == session_id
        transcript = client.session(session_id)
        assert len(transcript["entries"]) == 2
        assert transcript["tenant"] == "acme"
        with pytest.raises(GatewayError) as excinfo:
            client.session("sess-unknown")
        assert excinfo.value.status == 404

    def test_ingest_then_query_new_index(self, gateway, client):
        ingested = client.ingest(dataset="earnings", index="earn", docs=3, seed=7)
        assert ingested["documents_ingested"] == 3
        served = client.query("How many companies raised guidance?", index="earn")
        assert served["answer"] is not None and served["query_id"]
        with pytest.raises(GatewayError) as excinfo:
            client.ingest(dataset="nope")
        assert excinfo.value.status == 400


class TestAuthAndRateLimitOverSockets:
    def test_bearer_auth_maps_tenant_and_rejects(self, fast_ctx):
        gw = make_gateway(
            fast_ctx,
            gateway_config=GatewayConfig(tokens={"tok-a": "acme"}),
        )
        try:
            no_token = GatewayClient("127.0.0.1", gw.port)
            with pytest.raises(GatewayError) as excinfo:
                no_token.query("How many incidents?", index="ntsb")
            assert excinfo.value.status == 401
            # /ops stays open for probes.
            assert no_token.health()["status"] == "ok"
            authed = GatewayClient("127.0.0.1", gw.port, token="tok-a")
            served = authed.query(
                "How many incidents were caused by wind?",
                index="ntsb",
                tenant="spoofed",  # body cannot override the token's tenant
            )
            assert served["tenant"] == "acme"
        finally:
            gw.close()

    def test_rate_limit_sheds_429_with_retry_after(self, fast_ctx):
        gw = make_gateway(
            fast_ctx,
            gateway_config=GatewayConfig(rate_per_s=0.5, rate_burst=1.0),
        )
        try:
            client = GatewayClient("127.0.0.1", gw.port)
            client.query(
                "How many incidents were caused by wind?", index="ntsb"
            )
            with pytest.raises(GatewayError) as excinfo:
                client.query(
                    "How many incidents were caused by wind?", index="ntsb"
                )
            err = excinfo.value
            assert err.status == 429
            assert err.payload["error"] == "rate_limited"
            assert err.retry_after_s and err.retry_after_s > 0
            # Ops surface stays reachable while the tenant is limited.
            assert client.health()["status"] == "ok"
            assert gw.stats()["rate_limited"] == 1
        finally:
            gw.close()


class TestOverloadAndDeadlines:
    def test_burst_sheds_typed_429_over_socket(self, slow_ctx):
        gw = make_gateway(
            slow_ctx,
            service_config=ServiceConfig(max_workers=1, max_queue_depth=1),
        )
        try:
            statuses = []
            lock = threading.Lock()

            def fire(i):
                client = GatewayClient("127.0.0.1", gw.port, timeout_s=60.0)
                try:
                    client.query(
                        f"How many incidents happened in {2021 + i}?",
                        index="ntsb",
                    )
                    outcome = (200, None)
                except GatewayError as exc:
                    outcome = (exc.status, exc)
                with lock:
                    statuses.append(outcome)

            threads = [
                threading.Thread(target=fire, args=(i,), daemon=True)
                for i in range(6)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            sheds = [exc for status, exc in statuses if status == 429]
            oks = [status for status, _ in statuses if status == 200]
            assert sheds, "2x burst over capacity must shed 429s"
            assert oks, "admitted queries must still complete"
            assert len(sheds) + len(oks) == 6
            for exc in sheds:
                assert exc.payload["error"] == "overloaded"
                assert exc.retry_after_s and exc.retry_after_s > 0
        finally:
            gw.close()

    def test_expired_queue_deadline_maps_to_504(self, slow_ctx):
        gw = make_gateway(
            slow_ctx, service_config=ServiceConfig(max_workers=1)
        )
        try:
            client = GatewayClient("127.0.0.1", gw.port, timeout_s=60.0)
            # Occupy the single worker...
            blocker = threading.Thread(
                target=lambda: client.query(
                    "How many incidents were caused by wind?", index="ntsb"
                ),
                daemon=True,
            )
            blocker.start()
            time.sleep(0.05)
            # ...so this one expires in the queue.
            with pytest.raises(GatewayError) as excinfo:
                client.query(
                    "How many incidents happened in 2023?",
                    index="ntsb",
                    deadline_s=0.01,
                )
            blocker.join()
            assert excinfo.value.status == 504
            assert excinfo.value.payload["error"] == "deadline_exceeded"
            assert excinfo.value.retry_after_s is not None
        finally:
            gw.close()

    def test_cancel_route_and_single_terminal_event(self, slow_ctx):
        gw = make_gateway(slow_ctx, service_config=ServiceConfig(max_workers=1))
        try:
            client = GatewayClient("127.0.0.1", gw.port, timeout_s=60.0)
            done = []

            def blocker():
                client.query(
                    "How many incidents were caused by icing?", index="ntsb"
                )
                done.append(True)

            thread = threading.Thread(target=blocker, daemon=True)
            thread.start()
            time.sleep(0.05)
            # The second query sits in the queue; cancel it over HTTP.
            handle = client.query_stream(
                "How many incidents happened in 2022?", index="ntsb"
            )
            frames = []
            events = handle.events()
            name, payload = next(events)
            assert name == "open"
            cancel = client.cancel(payload["query_id"])
            assert cancel["cancel_requested"]
            frames = [(name, payload)] + list(events)
            names = [n for n, _ in frames]
            # One cancelled progress frame, one terminal error frame, no
            # double-terminal.
            assert names.count("cancelled") == 1
            assert names[-1] == "error"
            assert frames[-1][1]["status"] == 499
            thread.join()
            # Cancelling an already-finished query never re-emits a
            # terminal event (double-terminal regression).
            status = client.status(cancel["query_id"])
            terminal = [
                e
                for e in status["events"]
                if e["stage"] in ("completed", "failed", "cancelled")
            ]
            assert len(terminal) == 1
            client.cancel(cancel["query_id"])
            status_after = client.status(cancel["query_id"])
            assert len(status_after["events"]) == len(status["events"])
        finally:
            gw.close()


class TestClientDisconnect:
    def test_disconnect_cancels_query_and_stream_terminates(self, slow_ctx):
        gw = make_gateway(
            slow_ctx,
            service_config=ServiceConfig(max_workers=1),
            gateway_config=GatewayConfig(
                stream_poll_s=0.02, stream_heartbeat_s=0.02
            ),
        )
        try:
            client = GatewayClient("127.0.0.1", gw.port, timeout_s=60.0)
            handle = client.query_stream(
                "How many incidents were caused by wind?", index="ntsb"
            )
            events = handle.events()
            name, opened = next(events)
            assert name == "open"
            query_id = opened["query_id"]
            # Drop the connection mid-query.
            handle.abort()
            # The server must notice (heartbeat write fails), cancel the
            # query, and tear the stream down.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if gw.stats()["client_disconnects"] >= 1:
                    break
                time.sleep(0.02)
            assert gw.stats()["client_disconnects"] >= 1
            ticket = gw.ticket(query_id)
            assert ticket.cancelled
            # The ticket reaches a terminal state and the SSE pump exits
            # (active_streams returns to zero).
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if (
                    ticket.done()
                    and gw.registry.gauge("gateway.active_streams").value() == 0
                ):
                    break
                time.sleep(0.02)
            assert ticket.done()
            assert gw.registry.gauge("gateway.active_streams").value() == 0
        finally:
            gw.close()
        # Leaked threads are caught by the module-wide leak sanitizer.


class TestOpsSurface:
    def test_health_metrics_costs_stats(self, gateway, client):
        client.query(
            "How many incidents were caused by wind?", index="ntsb", tenant="acme"
        )
        health = client.health()
        assert health["status"] == "ok" and health["http_status"] == 200
        metrics = client.metrics("gateway.")
        assert metrics["gateway.requests"] >= 1
        assert "gateway.request_ms" in metrics
        serving_metrics = client.metrics("serving.")
        assert serving_metrics["serving.completed"] >= 1
        costs = client.costs()
        assert "acme" in costs and costs["acme"]["totals"]["cost_usd"] > 0
        stats = client.stats()
        assert stats["service"]["completed"] >= 1
        assert stats["gateway"]["responses_2xx"] >= 1
        assert "optimizer" in stats["service"]

    def test_draining_health_is_503(self, fast_ctx):
        gw = make_gateway(fast_ctx)
        try:
            client = GatewayClient("127.0.0.1", gw.port)
            assert client.health()["http_status"] == 200
            gw.request_shutdown()
            health = client.health()
            assert health["http_status"] == 503
            assert health["status"] == "draining"
            assert gw.wait_for_shutdown(timeout=1.0)
        finally:
            gw.close()

    def test_trace_of_unknown_or_unfinished_query_is_typed(self, gateway, client):
        with pytest.raises(GatewayError) as excinfo:
            client.trace("q424242")
        assert excinfo.value.status == 404


class TestLifecycleAndDrain:
    def test_close_is_idempotent_and_drains(self, fast_ctx):
        gw = make_gateway(fast_ctx)
        client = GatewayClient("127.0.0.1", gw.port)
        served = client.query(
            "How many incidents were caused by wind?", index="ntsb"
        )
        assert served["answer"] is not None
        gw.close()
        gw.close()  # idempotent
        # The socket is gone after close.
        with pytest.raises(OSError):
            client.health()

    def test_service_closed_maps_to_503(self, fast_ctx):
        gw = make_gateway(fast_ctx)
        try:
            client = GatewayClient("127.0.0.1", gw.port)
            gw.service.close()
            with pytest.raises(GatewayError) as excinfo:
                client.query("How many incidents?", index="ntsb")
            assert excinfo.value.status == 503
            assert excinfo.value.payload["error"] == "service_closed"
        finally:
            gw.close()
