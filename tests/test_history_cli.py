"""Tests for query history and the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.luna import Luna, QueryHistory


class TestQueryHistory:
    @pytest.fixture()
    def luna(self, indexed_context):
        return Luna(indexed_context, planner_model="sim-oracle", policy="quality")

    def test_queries_recorded(self, luna):
        assert len(luna.history) == 0
        luna.query("How many incidents were caused by icing?", index="ntsb")
        luna.query("How many incidents were caused by wind?", index="ntsb")
        assert len(luna.history) == 2
        assert luna.history.get(0).sequence == 0
        assert "icing" in luna.history.get(0).result.question

    def test_filter_by_index(self, luna):
        luna.query("How many incidents were caused by icing?", index="ntsb")
        luna.query("How many companies raised guidance?", index="earnings")
        assert len(luna.history.entries(index="ntsb")) == 1
        assert len(luna.history.entries(index="earnings")) == 1

    def test_search(self, luna):
        luna.query("How many incidents were caused by icing?", index="ntsb")
        assert luna.history.search("ICING")
        assert not luna.history.search("volcano")

    def test_render_and_cost(self, luna):
        assert luna.history.render() == "(no queries recorded)"
        luna.query("How many incidents were caused by icing?", index="ntsb")
        rendered = luna.history.render()
        assert "#0" in rendered and "icing" in rendered
        assert luna.history.total_cost_usd() >= 0.0

    def test_replay_reproduces_answer(self, luna):
        first = luna.query("How many incidents were caused by icing?", index="ntsb")
        replayed = luna.history.replay(0, luna)
        assert replayed.answer == first.answer
        # the replay execution itself lands in the history
        assert len(luna.history) == 2

    def test_replay_reflects_edited_plan(self, luna):
        session = luna.session("How many incidents were caused by icing?", index="ntsb")
        filters = [
            i
            for i, n in enumerate(session.plan.nodes)
            if n.operation in ("LlmFilter", "BasicFilter")
        ]
        for i in filters:
            session.remove_filter(i)
        edited = session.run()
        replayed = luna.history.replay(len(luna.history) - 1, luna)
        assert replayed.answer == edited.answer

    def test_get_out_of_range(self, luna):
        with pytest.raises(IndexError):
            luna.history.get(5)
        assert luna.history.last() is None


class TestCLI:
    def test_parser_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_partition_command(self, capsys):
        assert main(["partition", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "elements" in out
        assert "Title" in out

    def test_query_command(self, capsys):
        code = main(
            [
                "query",
                "How many incidents were caused by icing?",
                "--docs", "12",
                "--seed", "2",
                "--parallelism", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "answer:" in out
        assert "plan:" in out

    def test_query_explain_flag(self, capsys):
        code = main(
            [
                "query",
                "How many incidents were caused by wind?",
                "--docs", "8",
                "--explain",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Execution trace:" in out

    def test_demo_command(self, capsys):
        assert main(["demo", "--docs", "12", "--parallelism", "2"]) == 0
        out = capsys.readouterr().out
        assert "math_operation" in out
        assert "Answer:" in out
