"""Tests for repro.serving: single-flight caches, admission, accounting.

The invariants the subsystem documents:

* N identical concurrent queries plan once and execute once (asserted
  through the metrics registry, not timing);
* a corpus-version bump invalidates the result cache but keeps the plan
  cache (plans depend on the schema, answers on the data);
* overload sheds with typed :class:`Overloaded` rejections and never
  deadlocks; drain completes every admitted query;
* cache reuse shows up as ``saved_usd`` in the tenant's cost account.

Also covers the satellite plumbing this PR added underneath the service:
``stable_fingerprint``/``plan_fingerprint``, the DiskCache fingerprint
sidecar, and monotonic catalog versions.
"""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.docmodel.document import Document
from repro.execution.materialize import (
    DiskCache,
    plan_fingerprint,
    stable_fingerprint,
)
from repro.indexes.catalog import IndexCatalog
from repro.llm import ReliableLLM, SimulatedLLM
from repro.luna import Luna
from repro.luna.planner import LunaPlanner
from repro.observability import MetricsRegistry, Tracer
from repro.partitioner import ArynPartitioner
from repro.serving import (
    COALESCED,
    HIT,
    MISS,
    Overloaded,
    QueryService,
    ServiceClosed,
    ServiceConfig,
    SingleFlightCache,
    TenantQuota,
    index_fingerprint,
    normalize_question,
    plan_cache_key,
    result_cache_key,
)
from repro.sycamore import SycamoreContext
from repro.datagen import generate_ntsb_corpus

SCHEMA = {
    "state": "string",
    "incident_year": "int",
    "weather_related": "bool",
    "injuries_fatal": "int",
}


def build_served_context(n_docs=10, seed=13):
    """A private-registry NTSB context with the LLM response cache OFF,
    so serving-cache savings are the only savings in play."""
    registry = MetricsRegistry()
    tracer = Tracer()
    llm = ReliableLLM(
        SimulatedLLM(seed=seed),
        cache_enabled=False,
        tracer=tracer,
        registry=registry,
    )
    ctx = SycamoreContext(
        llm=llm, parallelism=2, seed=seed, tracer=tracer, registry=registry
    )
    _, raws = generate_ntsb_corpus(n_docs, seed=seed)
    (
        ctx.read.raw(raws)
        .partition(ArynPartitioner(seed=0))
        .extract_properties(SCHEMA, model="sim-large")
        .write.index("ntsb")
    )
    return ctx


@pytest.fixture(scope="module")
def served_ctx():
    return build_served_context()


@pytest.fixture()
def service(served_ctx):
    registry = MetricsRegistry()
    service = QueryService(
        served_ctx, ServiceConfig(max_workers=3), registry=registry
    )
    yield service
    service.close()


# ----------------------------------------------------------------------
# SingleFlightCache
# ----------------------------------------------------------------------


class TestSingleFlightCache:
    def test_miss_then_hit(self):
        cache = SingleFlightCache()
        calls = []
        value, outcome = cache.get_or_compute("k", lambda: calls.append(1) or 41)
        assert outcome == MISS
        value, outcome = cache.get_or_compute("k", lambda: calls.append(1) or 42)
        assert outcome == HIT
        assert len(calls) == 1

    def test_concurrent_callers_coalesce_onto_one_compute(self):
        cache = SingleFlightCache()
        release = threading.Event()
        computes = []

        def compute():
            computes.append(1)
            release.wait(timeout=10)
            return "answer"

        n = 8
        with ThreadPoolExecutor(max_workers=n) as pool:
            futures = [
                pool.submit(cache.get_or_compute, "key", compute) for _ in range(n)
            ]
            # Wait until the leader is inside compute, then release it.
            while not computes:
                time.sleep(0.001)
            time.sleep(0.01)  # give the others time to park on the future
            release.set()
            results = [f.result(timeout=10) for f in futures]
        assert len(computes) == 1
        assert all(value == "answer" for value, _ in results)
        outcomes = sorted(outcome for _, outcome in results)
        assert outcomes.count(MISS) == 1
        assert outcomes.count(COALESCED) + outcomes.count(HIT) == n - 1

    def test_failures_propagate_and_are_not_cached(self):
        cache = SingleFlightCache()

        def boom():
            raise RuntimeError("planner down")

        with pytest.raises(RuntimeError):
            cache.get_or_compute("k", boom)
        # The failure is not cached: the next caller recomputes.
        value, outcome = cache.get_or_compute("k", lambda: "recovered")
        assert (value, outcome) == ("recovered", MISS)

    def test_concurrent_waiters_see_the_leaders_exception(self):
        cache = SingleFlightCache()
        release = threading.Event()
        entered = threading.Event()

        def boom():
            entered.set()
            release.wait(timeout=10)
            raise RuntimeError("planner down")

        with ThreadPoolExecutor(max_workers=3) as pool:
            futures = [
                pool.submit(cache.get_or_compute, "k", boom) for _ in range(3)
            ]
            entered.wait(timeout=10)
            time.sleep(0.01)
            release.set()
            for future in futures:
                with pytest.raises(RuntimeError, match="planner down"):
                    future.result(timeout=10)

    def test_lru_eviction(self):
        cache = SingleFlightCache(max_entries=2)
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("b", lambda: 2)
        cache.get_or_compute("a", lambda: 1)  # refresh a
        cache.get_or_compute("c", lambda: 3)  # evicts b
        assert cache.peek("a") == 1
        assert cache.peek("b") is None
        assert cache.peek("c") == 3
        assert cache.stats()["evictions"] == 1


# ----------------------------------------------------------------------
# Cache keys
# ----------------------------------------------------------------------


class TestCacheKeys:
    def test_normalize_question(self):
        assert (
            normalize_question("  How many\n incidents?? ")
            == normalize_question("how many incidents")
        )
        assert normalize_question("a") != normalize_question("b")

    def test_plan_key_survives_version_bump_result_key_does_not(self):
        catalog = IndexCatalog()
        index = catalog.create("ntsb")
        index.schema["state"] = "string"
        doc = Document(doc_id="d1", text="wind incident in AK")
        pkey_before = plan_cache_key("how many?", index)
        rkey_before = result_cache_key("how many?", index)
        index.add_document(doc)
        assert plan_cache_key("how many?", index) == pkey_before
        assert result_cache_key("how many?", index) != rkey_before

    def test_schema_change_invalidates_plan_key(self):
        catalog = IndexCatalog()
        index = catalog.create("ntsb")
        index.schema["state"] = "string"
        fp_before = index_fingerprint(index)
        pkey_before = plan_cache_key("how many?", index)
        index.schema["incident_year"] = "int"
        assert index_fingerprint(index) != fp_before
        assert plan_cache_key("how many?", index) != pkey_before


# ----------------------------------------------------------------------
# QueryService: single-flight end to end
# ----------------------------------------------------------------------


class TestServiceSingleFlight:
    def test_n_threads_identical_query_one_plan_one_execution(self, served_ctx):
        registry = MetricsRegistry()
        n = 6
        with QueryService(
            served_ctx,
            ServiceConfig(max_workers=4, default_tenant_inflight=n),
            registry=registry,
        ) as service:
            with ThreadPoolExecutor(max_workers=n) as pool:
                futures = [
                    pool.submit(
                        service.query,
                        "How many incidents were caused by wind?",
                        "ntsb",
                        timeout=60,
                    )
                    for _ in range(n)
                ]
                results = [f.result(timeout=60) for f in futures]
            # The cache-concurrency invariant, asserted via counters.
            assert registry.counter("serving.plans_computed").value() == 1
            assert registry.counter("serving.executions").value() == 1
            answers = {r.answer for r in results}
            assert len(answers) == 1
            outcomes = sorted(r.result_cache for r in results)
            assert outcomes.count(MISS) == 1
            assert outcomes.count(COALESCED) + outcomes.count(HIT) == n - 1
            # Exactly one query paid; the rest were credited savings.
            payers = [r for r in results if r.cost_usd > 0]
            savers = [r for r in results if r.saved_usd > 0]
            assert len(payers) == 1
            assert len(savers) == n - 1

    def test_version_bump_invalidates_result_cache_keeps_plan_cache(
        self, served_ctx
    ):
        registry = MetricsRegistry()
        question = "How many incidents happened in 2023?"
        with QueryService(served_ctx, registry=registry) as service:
            first = service.query(question, "ntsb", timeout=60)
            assert first.result_cache == MISS
            again = service.query(question, "ntsb", timeout=60)
            assert again.result_cache == HIT
            # Ingest one more document: the corpus version moves on.
            index = served_ctx.catalog.get("ntsb")
            index.add_document(index.all_documents()[0])
            after_bump = service.query(question, "ntsb", timeout=60)
            assert after_bump.result_cache == MISS
            assert after_bump.plan_cache == HIT  # schema unchanged
            assert registry.counter("serving.plans_computed").value() == 1
            assert registry.counter("serving.executions").value() == 2

    def test_served_answer_matches_plain_luna(self, served_ctx, service):
        question = "How many incidents were caused by wind?"
        expected = Luna(served_ctx, error_policy="dead_letter").query(
            question, "ntsb"
        )
        served = service.query(question, "ntsb", timeout=60)
        assert served.answer == expected.answer


# ----------------------------------------------------------------------
# QueryService: tenants, accounting, sessions
# ----------------------------------------------------------------------


class TestServiceAccounting:
    def test_cache_hits_credited_as_saved_usd(self, served_ctx):
        registry = MetricsRegistry()
        with QueryService(served_ctx, registry=registry) as service:
            question = "How many incidents had fatal injuries?"
            miss = service.query(question, "ntsb", timeout=60, tenant="alice")
            hit = service.query(question, "ntsb", timeout=60, tenant="bob")
            assert miss.cost_usd > 0 and miss.saved_usd == 0
            assert hit.cost_usd == 0 and hit.saved_usd > 0
            alice = service.tenant_account("alice")
            bob = service.tenant_account("bob")
            assert alice.cost_usd == pytest.approx(miss.cost_usd)
            assert alice.saved_usd == 0
            # Bob never spent a simulated dollar; his ledger shows what
            # the cache saved him.
            assert bob.cost_usd == 0
            assert bob.saved_usd == pytest.approx(hit.saved_usd)
            assert registry.counter("serving.saved_usd").value() == pytest.approx(
                hit.saved_usd
            )

    def test_session_records_conversation_and_follow_up(self, served_ctx, service):
        session = service.open_session(tenant="carol", index="ntsb")
        first = service.query(
            "How many incidents were caused by wind?", timeout=60, session=session
        )
        assert first.session_id == session.session_id
        follow = service.query(
            "Of those, how many were in Alaska?",
            timeout=60,
            session=session,
            follow_up=True,
        )
        assert follow.plan_cache == "bypass"
        assert follow.result_cache == "bypass"
        assert len(session) == 2
        transcript = session.render()
        assert "wind" in transcript and "Alaska" in transcript

    def test_follow_up_without_history_fails_typed(self, service):
        session = service.open_session(tenant="dave", index="ntsb")
        ticket = service.submit(
            "Of those, how many were fatal?", session=session, follow_up=True
        )
        with pytest.raises(Exception, match="provenance"):
            ticket.result(timeout=60)

    def test_progress_events_in_order(self, service):
        ticket = service.submit(
            "How many incidents were caused by icing?", "ntsb", tenant="eve"
        )
        stages = [event.stage for event in ticket.stream(timeout=60)]
        assert stages[0] == "admitted"
        assert stages[-1] == "completed"
        assert "executing" in stages or "result_cache_hit" in stages
        assert ticket.done()


# ----------------------------------------------------------------------
# QueryService: admission control, overload, shutdown
# ----------------------------------------------------------------------


def _gate_planner(monkeypatch):
    """Patch the planner so questions containing BLOCK park on an event,
    making 'worker is busy' a deterministic state instead of a race."""
    gate = threading.Event()
    entered = threading.Event()
    original = LunaPlanner.plan

    def gated_plan(self, question, index, secondary=()):
        if "BLOCK" in question:
            entered.set()
            assert gate.wait(timeout=30), "test gate never released"
        return original(self, question, index, secondary=secondary)

    monkeypatch.setattr(LunaPlanner, "plan", gated_plan)
    return gate, entered


class TestAdmissionControl:
    def test_queue_full_sheds_typed(self, served_ctx, monkeypatch):
        gate, entered = _gate_planner(monkeypatch)
        service = QueryService(
            served_ctx,
            ServiceConfig(max_workers=1, max_queue_depth=2),
            registry=MetricsRegistry(),
        )
        try:
            blocked = service.submit("BLOCK how many incidents?", "ntsb")
            assert entered.wait(timeout=30)  # the one worker is now busy
            queued = [
                service.submit(f"queued question {i}?", "ntsb") for i in range(2)
            ]
            with pytest.raises(Overloaded) as excinfo:
                service.submit("one too many?", "ntsb")
            assert excinfo.value.reason == "queue_full"
            gate.set()
            # No deadlock: everything admitted completes.
            assert blocked.result(timeout=60).answer is not None
            for ticket in queued:
                ticket.result(timeout=60)
            stats = service.stats()
            assert stats["rejected"] == 1
            assert stats["completed"] == 3
        finally:
            gate.set()
            service.close()

    def test_tenant_quota_sheds_only_that_tenant(self, served_ctx, monkeypatch):
        gate, entered = _gate_planner(monkeypatch)
        service = QueryService(
            served_ctx,
            ServiceConfig(max_workers=1, max_queue_depth=8),
            registry=MetricsRegistry(),
        )
        try:
            service.set_quota("greedy", TenantQuota(max_inflight=1))
            blocked = service.submit("BLOCK count incidents?", "ntsb", tenant="greedy")
            assert entered.wait(timeout=30)
            with pytest.raises(Overloaded) as excinfo:
                service.submit("another?", "ntsb", tenant="greedy")
            assert excinfo.value.reason == "tenant_quota"
            # Another tenant is unaffected by greedy's quota.
            other = service.submit("unrelated question?", "ntsb", tenant="modest")
            gate.set()
            blocked.result(timeout=60)
            other.result(timeout=60)
            assert service.tenant("greedy").rejected == 1
            assert service.tenant("modest").rejected == 0
        finally:
            gate.set()
            service.close()

    def test_drain_completes_all_admitted(self, served_ctx):
        service = QueryService(
            served_ctx, ServiceConfig(max_workers=2), registry=MetricsRegistry()
        )
        tickets = [
            service.submit(f"How many incidents in state {i}?", "ntsb")
            for i in range(5)
        ]
        assert service.drain(timeout=120)
        assert all(ticket.done() for ticket in tickets)
        service.close()
        assert service.stats()["completed"] == 5

    def test_submit_after_close_raises_service_closed(self, served_ctx):
        service = QueryService(served_ctx, registry=MetricsRegistry())
        service.close()
        with pytest.raises(ServiceClosed):
            service.submit("anything?", "ntsb")

    def test_close_without_drain_fails_queued_typed(self, served_ctx, monkeypatch):
        gate, entered = _gate_planner(monkeypatch)
        service = QueryService(
            served_ctx,
            ServiceConfig(max_workers=1, max_queue_depth=8),
            registry=MetricsRegistry(),
        )
        running = service.submit("BLOCK slow question?", "ntsb")
        assert entered.wait(timeout=30)
        queued = service.submit("never starts?", "ntsb")
        service.close(drain=False, timeout=0.2)
        with pytest.raises(ServiceClosed):
            queued.result(timeout=10)
        assert [e.stage for e in queued.events()][-1] == "cancelled"
        gate.set()
        # The already-running query still completes: close never strands
        # an admitted future.
        assert running.result(timeout=60) is not None
        service.close()


# ----------------------------------------------------------------------
# Satellite plumbing: fingerprints, sidecars, catalog versions
# ----------------------------------------------------------------------


class TestFingerprints:
    def test_stable_fingerprint_is_deterministic_and_sensitive(self):
        a = stable_fingerprint(["x", {"k": 1}])
        assert a == stable_fingerprint(["x", {"k": 1}])
        assert a != stable_fingerprint(["x", {"k": 2}])
        # Part boundaries matter: ["ab"] != ["a", "b"].
        assert stable_fingerprint(["ab"]) != stable_fingerprint(["a", "b"])

    def test_plan_fingerprint_ignores_auto_name_counters(self, tmp_path):
        ctx = SycamoreContext(seed=1)
        docs = [Document(doc_id=f"d{i}", text=f"text {i}") for i in range(3)]
        first = ctx.read.documents(docs).filter(lambda d: True).plan
        second = ctx.read.documents(docs).filter(lambda d: True).plan
        # Same pipeline built twice gets fresh auto-name counters but the
        # same fingerprint — that's what makes disk caches reusable
        # across processes.
        assert plan_fingerprint(first) == plan_fingerprint(second)
        mapped = ctx.read.documents(docs).map(lambda d: d).plan
        assert plan_fingerprint(first) != plan_fingerprint(mapped)


class TestDiskCacheFingerprint:
    def test_sidecar_written_and_checked(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = DiskCache(path, fingerprint="abc123")
        cache.write([{"v": 1}])
        assert cache.fingerprint_path.read_text().strip() == "abc123"
        assert cache.is_valid()
        # A different pipeline (different fingerprint) must not reuse it.
        other = DiskCache(path, fingerprint="def456")
        assert not other.is_valid()
        # Without a fingerprint the historical existence check applies.
        assert DiskCache(path).is_valid()

    def test_missing_sidecar_invalidates(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        DiskCache(path).write([{"v": 1}])  # legacy write, no sidecar
        assert not DiskCache(path, fingerprint="abc123").is_valid()

    def test_invalidate_removes_sidecar(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = DiskCache(path, fingerprint="abc123")
        cache.write([{"v": 1}])
        cache.invalidate()
        assert not path.exists()
        assert not cache.fingerprint_path.exists()

    def test_docset_materialize_recomputes_on_plan_change(self, tmp_path):
        ctx = SycamoreContext(seed=1)
        docs = [Document(doc_id=f"d{i}", text=f"text {i}") for i in range(4)]
        target = tmp_path / "mat.jsonl"
        ctx.read.documents(docs).materialize(target).take_all()
        assert target.exists() and target.with_suffix(".jsonl.fp").exists()
        # A different upstream pipeline writing to the same path must not
        # serve the stale records.
        kept = (
            ctx.read.documents(docs)
            .filter(lambda d: d.doc_id != "d0")
            .materialize(target)
            .take_all()
        )
        assert len(kept) == 3


class TestCatalogVersions:
    def test_versions_are_monotonic_across_mutations(self):
        catalog = IndexCatalog()
        assert catalog.version() == 0
        index = catalog.create("a")
        v1 = catalog.version()
        assert v1 > 0
        index.add_document(Document(doc_id="d1", text="hello"))
        v2 = catalog.version()
        assert v2 > v1
        catalog.drop("a")
        v3 = catalog.version()
        assert v3 > v2  # dropping never rolls the clock back
        catalog.create("a")
        assert catalog.version() > v3
        assert catalog.versions() == {"a": 0}

    def test_version_survives_save_load_roundtrip(self, tmp_path):
        catalog = IndexCatalog()
        index = catalog.create("a")
        index.add_document(Document(doc_id="d1", text="hello"))
        assert index.version == 1
        catalog.save(tmp_path)
        fresh = IndexCatalog()
        fresh.load(tmp_path)
        assert fresh.get("a").version == 1
        assert fresh.version() > 0


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestServeCli:
    def test_serve_once_smoke(self, capsys):
        from repro.cli import main

        assert main(["serve", "--once", "--docs", "8", "--parallelism", "2"]) == 0
        out = capsys.readouterr().out
        assert "result cache" in out
        assert "saved $" in out
