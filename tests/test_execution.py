"""Tests for the execution substrate: plans, executor, caches, lineage."""

import threading

import pytest

from repro.docmodel import Document
from repro.execution import (
    DiskCache,
    Executor,
    Lineage,
    MemoryCache,
    Plan,
    TaskError,
)


class TestPlanBuilding:
    def test_chain_and_explain(self):
        plan = (
            Plan.from_items([1, 2, 3], name="src")
            .map(lambda x: x + 1, name="inc")
            .filter(lambda x: x > 2, name="big")
        )
        explained = plan.explain()
        assert "source[src]" in explained
        assert "map[inc]" in explained
        assert "filter[big]" in explained
        assert len(plan.nodes()) == 3

    def test_from_items_snapshots(self):
        items = [1, 2]
        plan = Plan.from_items(items)
        items.append(3)
        assert Executor().take_all(plan) == [1, 2]

    def test_source_called_per_execution(self):
        calls = []

        def items():
            calls.append(1)
            return iter([1])

        plan = Plan.source(items)
        executor = Executor()
        executor.take_all(plan)
        executor.take_all(plan)
        assert len(calls) == 2


class TestExecutionSemantics:
    def test_map_filter_flat_map(self):
        plan = (
            Plan.from_items(range(6))
            .map(lambda x: x * 2)
            .filter(lambda x: x % 3 == 0)
            .flat_map(lambda x: [x, x + 1])
        )
        assert Executor().take_all(plan) == [0, 1, 6, 7]

    def test_aggregate_is_barrier(self):
        plan = Plan.from_items([3, 1, 2]).aggregate(lambda xs: sorted(xs))
        assert Executor().take_all(plan) == [1, 2, 3]

    def test_count_and_lazy_execution(self):
        seen = []
        plan = Plan.from_items(range(10)).map(lambda x: seen.append(x) or x)
        executor = Executor()
        iterator = executor.execute(plan)
        assert seen == []  # nothing ran yet
        next(iterator)
        assert len(seen) >= 1

    def test_plan_fan_out_shares_prefix(self):
        base = Plan.from_items(range(4)).map(lambda x: x * 10)
        left = base.filter(lambda x: x < 20)
        right = base.filter(lambda x: x >= 20)
        executor = Executor()
        assert executor.take_all(left) == [0, 10]
        assert executor.take_all(right) == [20, 30]

    def test_parallel_preserves_order(self):
        plan = Plan.from_items(range(100)).map(lambda x: x * x)
        result = Executor(parallelism=8).take_all(plan)
        assert result == [x * x for x in range(100)]

    def test_parallel_filter(self):
        plan = Plan.from_items(range(50)).filter(lambda x: x % 2 == 0)
        assert Executor(parallelism=4).take_all(plan) == list(range(0, 50, 2))

    def test_parallel_actually_uses_threads(self):
        thread_names = set()

        def record(x):
            thread_names.add(threading.current_thread().name)
            return x

        Executor(parallelism=4).take_all(Plan.from_items(range(64)).map(record))
        assert len(thread_names) > 1

    def test_invalid_parallelism(self):
        with pytest.raises(ValueError):
            Executor(parallelism=0)


class TestRetries:
    def test_transient_failure_retried(self):
        failures = {"left": 2}

        def flaky(x):
            if x == 3 and failures["left"] > 0:
                failures["left"] -= 1
                raise RuntimeError("transient")
            return x

        executor = Executor(max_task_retries=3)
        assert executor.take_all(Plan.from_items(range(5)).map(flaky)) == list(range(5))
        assert executor.last_stats.node(
            [n for n in executor.last_stats.nodes if n.startswith("map")][0]
        ).retries == 2

    def test_permanent_failure_raises_task_error(self):
        def always_fails(x):
            raise ValueError("nope")

        executor = Executor(max_task_retries=1)
        with pytest.raises(TaskError) as excinfo:
            executor.take_all(Plan.from_items([1]).map(always_fails, name="boom"))
        assert excinfo.value.node_name == "boom"
        assert isinstance(excinfo.value.cause, ValueError)


class TestStats:
    def test_records_in_out(self):
        plan = Plan.from_items(range(10)).filter(lambda x: x < 3, name="f")
        executor = Executor()
        executor.take_all(plan)
        stats = executor.last_stats
        assert stats.node("f").records_in == 10
        assert stats.node("f").records_out == 3

    def test_flat_map_expansion_counted(self):
        plan = Plan.from_items(range(3)).flat_map(lambda x: [x, x], name="fm")
        executor = Executor()
        executor.take_all(plan)
        assert executor.last_stats.node("fm").records_out == 6


class TestMaterialize:
    def test_memory_cache_skips_upstream(self):
        calls = []
        cache = MemoryCache()
        plan = (
            Plan.from_items(range(3))
            .map(lambda x: calls.append(x) or x, name="work")
            .materialize(cache)
        )
        executor = Executor()
        assert executor.take_all(plan) == [0, 1, 2]
        assert executor.take_all(plan) == [0, 1, 2]
        assert len(calls) == 3  # upstream ran once

    def test_memory_cache_invalidate(self):
        cache = MemoryCache()
        cache.write([1])
        assert cache.is_valid()
        cache.invalidate()
        assert not cache.is_valid()
        with pytest.raises(RuntimeError):
            cache.read()

    def test_disk_cache_roundtrip_documents(self, tmp_path):
        cache = DiskCache(tmp_path / "stage.jsonl")
        docs = [Document.from_text(f"d{i}") for i in range(3)]
        plan = Plan.from_items(docs).materialize(cache)
        executor = Executor()
        first = executor.take_all(plan)
        assert (tmp_path / "stage.jsonl").exists()
        second = executor.take_all(plan)
        assert [d.doc_id for d in first] == [d.doc_id for d in second]
        assert all(isinstance(d, Document) for d in second)

    def test_disk_cache_plain_values(self, tmp_path):
        cache = DiskCache(tmp_path / "vals.jsonl")
        cache.write([1, "two", {"three": 3}])
        assert cache.read() == [1, "two", {"three": 3}]

    def test_disk_cache_missing_read(self, tmp_path):
        cache = DiskCache(tmp_path / "missing.jsonl")
        with pytest.raises(RuntimeError):
            cache.read()


class TestLineage:
    def test_edges_recorded_for_derived_documents(self):
        lineage = Lineage()
        parent = Document.from_text("parent")

        def derive(doc):
            return doc.derive(text="child")

        executor = Executor(lineage=lineage)
        children = executor.take_all(Plan.from_items([parent]).map(derive, name="t"))
        assert lineage.parents_of(children[0].doc_id) == [parent.doc_id]
        assert lineage.children_of(parent.doc_id) == [children[0].doc_id]

    def test_ancestors_transitive(self):
        lineage = Lineage()
        lineage.record("a", "d1", "d2")
        lineage.record("b", "d2", "d3")
        assert lineage.ancestors_of("d3") == ["d1", "d2"]
        assert lineage.root_sources_of("d3") == ["d1"]

    def test_root_of_underived_doc_is_itself(self):
        lineage = Lineage()
        assert lineage.root_sources_of("solo") == ["solo"]

    def test_trace_ordered(self):
        lineage = Lineage()
        lineage.record("t1", "a", "b")
        lineage.record("t2", "b", "c")
        lineage.record("t3", "x", "y")  # unrelated
        trace = lineage.trace("c")
        assert [(e.source_id, e.target_id) for e in trace] == [("a", "b"), ("b", "c")]

    def test_same_id_transform_not_recorded(self):
        lineage = Lineage()
        doc = Document.from_text("x")
        executor = Executor(lineage=lineage)
        executor.take_all(Plan.from_items([doc]).map(lambda d: d))
        assert lineage.edges() == []

    def test_clear(self):
        lineage = Lineage()
        lineage.record("t", "a", "b")
        lineage.clear()
        assert lineage.edges() == []
