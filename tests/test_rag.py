"""Tests for the RAG baseline — including its designed failure modes."""

import pytest

from repro.docmodel import Document
from repro.embedding import HashingEmbedder
from repro.indexes import IndexCatalog
from repro.llm import ReliableLLM, SimulatedLLM
from repro.rag import RagPipeline


@pytest.fixture()
def rag_setup():
    catalog = IndexCatalog(embedder=HashingEmbedder(dimensions=128))
    index = catalog.create("chunks")
    docs = [
        Document.from_text(
            "Incident report one. The airplane encountered a gusty crosswind "
            "during landing near Anchorage, AK and sustained substantial damage."
        ),
        Document.from_text(
            "Incident report two. A fatigue crack caused a total loss of engine "
            "power near Houston, TX shortly after takeoff."
        ),
        Document.from_text(
            "Incident report three. Severe icing conditions degraded lift "
            "during cruise over Denver, CO."
        ),
    ]
    RagPipeline.ingest(index, docs, chunk_tokens=40)
    llm = ReliableLLM(SimulatedLLM(seed=0))
    return index, llm, docs


class TestIngest:
    def test_chunks_written_with_provenance(self, rag_setup):
        index, _, docs = rag_setup
        assert len(index) >= len(docs)
        chunk = next(iter(index.docstore.scan()))
        assert chunk.properties["source_doc_id"] in {d.doc_id for d in docs}
        assert chunk.parent_id == chunk.properties["source_doc_id"]

    def test_long_document_splits(self):
        catalog = IndexCatalog()
        index = catalog.create("c")
        long_doc = Document.from_text("word " * 2000)
        n = RagPipeline.ingest(index, [long_doc], chunk_tokens=100)
        assert n > 10


class TestRetrieval:
    def test_vector_retrieval_relevant_first(self, rag_setup):
        index, llm, _ = rag_setup
        rag = RagPipeline(index, llm, retrieval="vector", top_k=2)
        chunks = rag.retrieve("crosswind during landing")
        assert "crosswind" in chunks[0].text

    def test_keyword_retrieval(self, rag_setup):
        index, llm, _ = rag_setup
        rag = RagPipeline(index, llm, retrieval="keyword", top_k=2)
        chunks = rag.retrieve("fatigue crack engine")
        assert "fatigue crack" in chunks[0].text

    def test_hybrid_retrieval(self, rag_setup):
        index, llm, _ = rag_setup
        rag = RagPipeline(index, llm, retrieval="hybrid", top_k=2)
        chunks = rag.retrieve("icing during cruise")
        assert any("icing" in c.text for c in chunks)


class TestAnswering:
    def test_point_lookup_succeeds(self, rag_setup):
        index, llm, _ = rag_setup
        rag = RagPipeline(index, llm, model="sim-oracle", top_k=3)
        answer = rag.answer("What caused the incident near Houston?")
        assert "fatigue crack" in answer.answer or "engine" in answer.answer

    def test_provenance_points_to_source(self, rag_setup):
        index, llm, docs = rag_setup
        rag = RagPipeline(index, llm, model="sim-oracle", top_k=2)
        answer = rag.answer("What happened near Anchorage?")
        sources = rag.provenance(answer)
        assert docs[0].doc_id in sources

    def test_counting_limited_by_top_k(self, rag_setup):
        """The keyhole problem: RAG can only count what it retrieved."""
        index, llm, _ = rag_setup
        # Add many more wind incidents than top_k can see.
        extra = [
            Document.from_text(
                f"Incident extra-{i}. Another strong crosswind event near "
                f"Fairbanks, AK damaged a parked airplane."
            )
            for i in range(20)
        ]
        RagPipeline.ingest(index, extra, chunk_tokens=40)
        rag = RagPipeline(index, llm, model="sim-oracle", top_k=5)
        answer = rag.answer("How many incidents were caused by wind?")
        count = int(answer.answer)
        assert count <= 5  # structurally cannot see all 21

    def test_empty_index_does_not_know(self):
        catalog = IndexCatalog()
        index = catalog.create("empty")
        rag = RagPipeline(index, ReliableLLM(SimulatedLLM(seed=0)), model="sim-oracle")
        answer = rag.answer("What happened?")
        assert "do not know" in answer.answer.lower()


class TestContextWindow:
    def test_packing_respects_window(self, rag_setup):
        index, llm, _ = rag_setup
        big = [Document.from_text("filler words " * 1500) for _ in range(8)]
        RagPipeline.ingest(index, big, chunk_tokens=2000)
        rag = RagPipeline(index, llm, model="sim-small", top_k=8)  # 8k window
        answer = rag.answer("filler words question")
        assert answer.truncated
        assert answer.context_tokens < 8000
        assert len(answer.retrieved_chunk_ids) < 8
