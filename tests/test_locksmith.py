"""Runtime lock-order sanitizer (``repro.analysis.locksmith``) tests."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.analysis import locksmith
from repro.cluster.envelope import NonPicklableTaskError, _check_value


@pytest.fixture()
def monitor():
    """Install the sanitizer for one test (tolerates a session-wide
    install from REPRO_LOCKSMITH/--locksmith)."""
    already = locksmith.installed()
    if not already:
        locksmith.install()
    before = len(locksmith.inversions())
    yield before
    if not already:
        locksmith.uninstall()


class TestMonitoredLocks:
    def test_install_is_idempotent_and_reversible(self):
        already = locksmith.installed()
        locksmith.install()
        locksmith.install()
        assert locksmith.installed()
        assert threading.Lock is not None
        lock = threading.Lock()
        with lock:
            pass
        if not already:
            locksmith.uninstall()
            assert not locksmith.installed()

    def test_consistent_order_records_edges_but_no_inversion(self, monitor):
        a = threading.Lock()
        b = threading.Lock()
        for _ in range(3):
            with a:
                with b:
                    pass
        assert locksmith.inversions()[monitor:] == []

    @pytest.mark.locksmith_intentional
    def test_reversed_order_is_an_observed_inversion(self, monitor):
        a = threading.Lock()
        b = threading.Lock()
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        new = locksmith.inversions()[monitor:]
        assert len(new) == 1
        inversion = new[0]
        assert inversion.stack and inversion.reverse_stack
        assert inversion.chain[0] == inversion.b
        assert inversion.chain[-1] == inversion.a
        rendered = inversion.render()
        assert "forward acquisition" in rendered
        assert "prior reverse acquisition" in rendered

    def test_rlock_reentrancy_records_single_acquisition(self, monitor):
        r = threading.RLock()
        other = threading.Lock()
        with r:
            with r:  # reentrant: no self-edge, no double record
                with other:
                    pass
        assert locksmith.inversions()[monitor:] == []
        # Only one edge r -> other despite the nested re-acquire.
        edges = [
            (a, b)
            for (a, b) in locksmith.edges()
            if "test_locksmith" in a and "test_locksmith" in b
        ]
        assert len(set(edges)) == len(edges)

    def test_sites_attribute_to_user_code(self, monitor):
        lock = threading.Lock()
        with lock:
            pass
        report = locksmith.report()
        user_sites = [k for k in report["sites"] if "test_locksmith.py" in k]
        assert user_sites, report["sites"]

    def test_condition_and_queue_work_under_monitoring(self, monitor):
        cond = threading.Condition()
        hits = []

        def waiter():
            with cond:
                while not hits:
                    cond.wait(timeout=1)

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.02)
        with cond:
            hits.append(1)
            cond.notify_all()
        thread.join(timeout=2)
        assert not thread.is_alive()

        import queue

        q = queue.Queue()
        q.put("x")
        assert q.get(timeout=1) == "x"

    def test_rlock_recursion_count_protocol(self, monitor):
        r = threading.RLock()
        assert r._recursion_count() == 0
        with r:
            with r:
                assert r._recursion_count() == 2
            assert r._recursion_count() == 1
        assert r._recursion_count() == 0


class TestReporting:
    @pytest.mark.locksmith_intentional
    def test_report_round_trips_through_json(self, monitor, tmp_path):
        a = threading.Lock()
        b = threading.Lock()
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        path = tmp_path / "locksmith.json"
        locksmith.write_report(str(path))
        loaded = locksmith.load_report(str(path))
        assert loaded["installed"] is True
        assert loaded["sites"]
        assert loaded["edges"]
        assert any(
            "test_locksmith" in inv["a"] for inv in loaded["inversions"]
        )
        # Valid JSON all the way down (CI uploads this as an artifact).
        json.dumps(loaded)

    def test_report_when_not_installed(self):
        if locksmith.installed():
            pytest.skip("session-wide locksmith active")
        report = locksmith.report()
        assert report == {
            "installed": False,
            "sites": {},
            "edges": [],
            "inversions": [],
        }


class TestEnvelopeHardening:
    def test_monitored_lock_rejected_by_envelope_check(self, monitor):
        lock = threading.Lock()
        with pytest.raises(NonPicklableTaskError):
            _check_value("op.param", lock)

    def test_monitored_lock_rejected_inside_containers(self, monitor):
        lock = threading.RLock()
        with pytest.raises(NonPicklableTaskError):
            _check_value("op.param", {"inner": [lock]})

    def test_plain_values_still_pass(self):
        _check_value("op.param", {"a": [1, "two", 3.0, None, True]})
