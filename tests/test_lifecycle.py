"""Tests for repro.lifecycle: deadlines, cancellation, crash recovery.

The invariants this PR documents:

* a query admitted with ``deadline_s`` never blocks past its budget:
  every queue wait, retry sleep and batch window derives its timeout
  from the *remaining* budget, and expiry surfaces as a typed
  :class:`DeadlineExceeded` (pre-start) or a typed-partial result
  (mid-execution, under a non-fatal error policy);
* cancellation is cooperative and always frees resources: a queued
  ticket's admission slot is released immediately, a running query
  observes its scope at the next operator/record/queue checkpoint, and
  single-flight followers of a cancelled leader re-elect instead of
  inheriting a cancellation that is not theirs;
* the write-ahead journal makes a resumed query byte-identical to an
  uninterrupted run while re-executing only the nodes past the last
  durable checkpoint.
"""

import json
import threading
import time

import pytest

from repro.lifecycle import (
    CancelScope,
    Deadline,
    DeadlineExceeded,
    JournalError,
    QueryCancelled,
    QueryJournal,
    attach_scope,
    check_scope,
    current_scope,
    decode_value,
    encode_value,
    wait_future,
)
from repro.docmodel.document import Document
from repro.llm import ReliableLLM, SimulatedLLM
from repro.llm.errors import LLMTimeoutError, TransientLLMError
from repro.luna import Luna
from repro.luna.planner import LunaPlanner
from repro.observability import MetricsRegistry
from repro.runtime import Priority, RequestScheduler
from repro.serving import Overloaded, QueryService, ServiceConfig
from tests.test_llm_client import FlakyBackend
from tests.test_serving import build_served_context


class SimulatedCrash(BaseException):
    """Stands in for a hard process kill inside one test process."""


# ----------------------------------------------------------------------
# Deadline / CancelScope units
# ----------------------------------------------------------------------


class TestDeadline:
    def test_remaining_counts_down(self):
        clock = [0.0]
        deadline = Deadline(10.0, clock=lambda: clock[0])
        assert deadline.remaining() == 10.0
        clock[0] = 4.0
        assert deadline.remaining() == 6.0
        assert not deadline.expired
        clock[0] = 11.0
        assert deadline.expired
        assert deadline.remaining() == 0.0

    def test_check_raises_typed_with_budget_math(self):
        clock = [0.0]
        deadline = Deadline(2.0, clock=lambda: clock[0])
        deadline.check()  # inside budget: no raise
        clock[0] = 3.5
        with pytest.raises(DeadlineExceeded) as excinfo:
            deadline.check()
        assert excinfo.value.budget_s == 2.0
        assert excinfo.value.elapsed_s == pytest.approx(3.5)

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            Deadline(0.0)


class TestCancelScope:
    def test_cancel_is_idempotent_and_first_wins(self):
        scope = CancelScope(query_id="q1")
        assert scope.cancel("user asked") is True
        assert scope.cancel("too late") is False
        assert scope.cancel_reason == "user asked"

    def test_check_raises_cancellation_before_deadline(self):
        clock = [100.0]
        scope = CancelScope(deadline=Deadline(1.0, clock=lambda: clock[0]))
        clock[0] = 200.0  # deadline long gone
        scope.cancel("explicit")
        with pytest.raises(QueryCancelled):
            scope.check()

    def test_ambient_scope_attach_detach(self):
        assert current_scope() is None
        scope = CancelScope(query_id="q2")
        with attach_scope(scope):
            assert current_scope() is scope
            check_scope()  # live scope: no raise
            scope.cancel()
            with pytest.raises(QueryCancelled):
                check_scope()
        assert current_scope() is None

    def test_wait_future_observes_ambient_cancellation(self):
        from concurrent.futures import Future

        future = Future()  # never resolved
        scope = CancelScope(query_id="q3")
        timer = threading.Timer(0.15, scope.cancel)
        timer.daemon = True
        timer.start()
        with attach_scope(scope):
            with pytest.raises(QueryCancelled):
                wait_future(future, timeout=30)
        timer.join()


# ----------------------------------------------------------------------
# Journal units
# ----------------------------------------------------------------------


class TestQueryJournal:
    def test_roundtrip_with_document_values(self, tmp_path):
        journal = QueryJournal(tmp_path)
        journal.begin(
            "q1", question="how many?", index="ntsb", plan_json='{"nodes": []}'
        )
        docs = [Document(doc_id="d1", text="wind"), Document(doc_id="d2", text="ice")]
        journal.node_complete("q1", 0, "QueryIndex", docs)
        journal.node_complete("q1", 1, "Count", 2)
        state = journal.load("q1")
        assert state.question == "how many?"
        assert state.last_checkpoint == 1
        assert state.operations == {0: "QueryIndex", 1: "Count"}
        restored = state.completed[0]
        assert [d.doc_id for d in restored] == ["d1", "d2"]
        assert isinstance(restored[0], Document)
        assert state.completed[1] == 2
        assert not state.committed

    def test_commit_records_answer(self, tmp_path):
        journal = QueryJournal(tmp_path)
        journal.begin("q1", question="?", index="i", plan_json="{}")
        journal.commit("q1", {"count": 3})
        state = journal.load("q1")
        assert state.committed
        assert state.answer == {"count": 3}

    def test_torn_tail_is_tolerated(self, tmp_path):
        journal = QueryJournal(tmp_path)
        journal.begin("q1", question="?", index="i", plan_json="{}")
        journal.node_complete("q1", 0, "QueryIndex", [1, 2])
        path = journal.path("q1")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "node", "index": 1, "val')  # crashed mid-write
        state = journal.load("q1")
        assert state.last_checkpoint == 0  # torn record dropped, prefix stands

    def test_load_unknown_query_raises(self, tmp_path):
        with pytest.raises(JournalError):
            QueryJournal(tmp_path).load("never-ran")

    def test_begin_truncates_stale_journal(self, tmp_path):
        journal = QueryJournal(tmp_path)
        journal.begin("q1", question="old", index="i", plan_json="{}")
        journal.node_complete("q1", 0, "QueryIndex", [1])
        journal.begin("q1", question="new", index="i", plan_json="{}")
        state = journal.load("q1")
        assert state.question == "new"
        assert state.completed == {}

    def test_codec_preserves_tuples_and_nested_dicts(self):
        value = [("a", 1), {"k": ("b", 2)}, Document(doc_id="d", text="t")]
        decoded = decode_value(json.loads(json.dumps(encode_value(value))))
        assert decoded[0] == ("a", 1)
        assert decoded[1]["k"] == ("b", 2)
        assert decoded[2].doc_id == "d"


# ----------------------------------------------------------------------
# Crash recovery: kill mid-query, resume, byte-identity
# ----------------------------------------------------------------------


def _canonical(result):
    return json.dumps(
        {
            "answer": result.answer,
            "docs": sorted(result.trace.supporting_documents()),
        },
        sort_keys=True,
        default=repr,
    )


class TestCrashRecovery:
    @pytest.fixture(scope="class")
    def recovery_ctx(self):
        return build_served_context(n_docs=8, seed=7)

    def test_resume_is_byte_identical_and_replays_checkpoints(
        self, recovery_ctx, tmp_path
    ):
        question = "How many incidents were caused by wind?"
        reference = Luna(recovery_ctx, error_policy="dead_letter").query(
            question, index="ntsb"
        )
        total_nodes = reference.trace.nodes_executed
        assert total_nodes >= 2

        journal = QueryJournal(tmp_path, registry=recovery_ctx.registry)
        kill_after = 0
        original = journal.node_complete

        def crashing_node_complete(query_id, index, operation, value):
            original(query_id, index, operation, value)
            if index >= kill_after:
                raise SimulatedCrash(f"killed after node {index}")

        journal.node_complete = crashing_node_complete
        luna = Luna(recovery_ctx, error_policy="dead_letter", journal=journal)
        with pytest.raises(SimulatedCrash):
            luna.query(question, index="ntsb", query_id="crash-test")

        # The checkpoint reached disk before the "crash".
        state = journal.load("crash-test")
        assert state.last_checkpoint == kill_after
        assert not state.committed

        # A fresh facade (new process stand-in) resumes from the journal.
        journal.node_complete = original
        resumed = Luna(
            recovery_ctx, error_policy="dead_letter", journal=journal
        ).resume("crash-test")
        assert _canonical(resumed) == _canonical(reference)
        assert resumed.trace.nodes_replayed == kill_after + 1
        assert resumed.trace.nodes_executed == total_nodes - (kill_after + 1)
        assert journal.load("crash-test").committed
        registry = recovery_ctx.registry
        assert registry.counter("lifecycle.resumes").value() >= 1
        assert registry.counter("lifecycle.nodes_replayed").value() >= 1

    def test_resume_rejects_fingerprint_drift(self, recovery_ctx, tmp_path):
        journal = QueryJournal(tmp_path)
        luna = Luna(recovery_ctx, error_policy="dead_letter", journal=journal)
        luna.query(
            "How many incidents were caused by wind?",
            index="ntsb",
            query_id="drift-test",
        )
        # Corrupt the begin record's fingerprint in place.
        path = journal.path("drift-test")
        lines = path.read_text(encoding="utf-8").splitlines()
        begin = json.loads(lines[0])
        begin["fingerprint"] = "not-the-real-fingerprint"
        lines[0] = json.dumps(begin, sort_keys=True)
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(JournalError, match="fingerprint"):
            luna.resume("drift-test")


# ----------------------------------------------------------------------
# Deadlines through the serving layer
# ----------------------------------------------------------------------


def _gate_planner(monkeypatch):
    """Same trick as test_serving: questions containing BLOCK park on an
    event inside the planner, making worker-busy deterministic."""
    gate = threading.Event()
    entered = threading.Event()
    original = LunaPlanner.plan

    def gated_plan(self, question, index, secondary=()):
        if "BLOCK" in question:
            entered.set()
            assert gate.wait(timeout=30), "test gate never released"
        return original(self, question, index, secondary=secondary)

    monkeypatch.setattr(LunaPlanner, "plan", gated_plan)
    return gate, entered


class TestServiceDeadlines:
    def test_queued_past_deadline_fails_typed_with_retry_hint(
        self, monkeypatch
    ):
        ctx = build_served_context(n_docs=6, seed=11)
        gate, entered = _gate_planner(monkeypatch)
        registry = MetricsRegistry()
        service = QueryService(
            ctx,
            ServiceConfig(max_workers=1, max_queue_depth=8),
            registry=registry,
        )
        try:
            blocker = service.submit("BLOCK the only worker?", "ntsb")
            assert entered.wait(timeout=30)
            doomed = service.submit(
                "never gets a worker in time?", "ntsb", deadline_s=0.05
            )
            assert doomed.deadline is not None
            time.sleep(0.1)  # budget expires while queued
            gate.set()
            with pytest.raises(DeadlineExceeded) as excinfo:
                doomed.result(timeout=60)
            assert excinfo.value.retry_after_s > 0
            assert [e.stage for e in doomed.events()][-1] == "failed"
            assert registry.counter("serving.deadline_exceeded").value() == 1
            assert service.stats()["deadline_exceeded"] == 1
            blocker.result(timeout=60)
        finally:
            gate.set()
            service.close()

    def test_mid_execution_expiry_degrades_to_typed_partial(self):
        ctx = build_served_context(n_docs=6, seed=12)
        question = "How many incidents were caused by wind?"
        registry = MetricsRegistry()
        service = QueryService(
            ctx, ServiceConfig(max_workers=2), registry=registry
        )
        release = threading.Event()
        backend_entered = threading.Event()
        backend = ctx.llm.backend
        original_complete = backend.complete

        def gated_complete(prompt, **kwargs):
            backend_entered.set()
            assert release.wait(timeout=30), "backend gate never released"
            return original_complete(prompt, **kwargs)

        try:
            # Warm the plan cache, then invalidate the answer so the next
            # submission re-executes with a live deadline.
            service.submit(question, "ntsb").result(timeout=60)
            service.result_cache.clear()
            backend.complete = gated_complete
            ticket = service.submit(question, "ntsb", deadline_s=0.4)
            assert backend_entered.wait(timeout=30)
            deadline = ticket.deadline
            assert deadline is not None
            while not deadline.expired:
                time.sleep(0.02)
            release.set()
            served = ticket.result(timeout=60)
            # Typed partial: the answer came back degraded, flagged, and
            # within roughly one operator of the budget.
            assert served.deadline_exceeded
            assert served.result.partial
            assert any(
                "DeadlineExceeded" in err for err in served.result.trace.errors
            )
            assert served.latency_s < 10.0
            assert registry.counter("serving.deadline_exceeded").value() == 1
            stages = [e.stage for e in ticket.events()]
            assert "deadline_degraded" in stages
            assert stages[-1] == "completed"
        finally:
            release.set()
            backend.complete = original_complete
            service.close()

    def test_overloaded_carries_retry_after(self, monkeypatch):
        ctx = build_served_context(n_docs=6, seed=13)
        gate, entered = _gate_planner(monkeypatch)
        service = QueryService(
            ctx,
            ServiceConfig(max_workers=1, max_queue_depth=1),
            registry=MetricsRegistry(),
        )
        try:
            blocked = service.submit("BLOCK worker?", "ntsb")
            assert entered.wait(timeout=30)
            service.submit("queued?", "ntsb")
            with pytest.raises(Overloaded) as excinfo:
                service.submit("shed me?", "ntsb")
            assert excinfo.value.reason == "queue_full"
            assert excinfo.value.retry_after_s > 0
            gate.set()
            blocked.result(timeout=60)
        finally:
            gate.set()
            service.close()


# ----------------------------------------------------------------------
# Cancellation through the serving layer
# ----------------------------------------------------------------------


class TestServiceCancellation:
    def test_cancel_queued_frees_slot_immediately(self, monkeypatch):
        ctx = build_served_context(n_docs=6, seed=14)
        gate, entered = _gate_planner(monkeypatch)
        registry = MetricsRegistry()
        service = QueryService(
            ctx,
            ServiceConfig(max_workers=1, max_queue_depth=8),
            registry=registry,
        )
        try:
            service.set_quota("alice", __import__(
                "repro.serving.session", fromlist=["TenantQuota"]
            ).TenantQuota(max_inflight=2))
            blocker = service.submit("BLOCK worker?", "ntsb", tenant="alice")
            assert entered.wait(timeout=30)
            queued = service.submit("queued question?", "ntsb", tenant="alice")
            # Tenant is now at its quota of 2...
            with pytest.raises(Overloaded):
                service.submit("third?", "ntsb", tenant="alice")
            assert queued.cancel("changed my mind") is True
            with pytest.raises(QueryCancelled) as excinfo:
                queued.result(timeout=10)
            assert excinfo.value.reason == "changed my mind"
            assert [e.stage for e in queued.events()][-1] == "cancelled"
            # ...and cancelling the queued ticket freed the slot.
            third = service.submit("third now fits?", "ntsb", tenant="alice")
            gate.set()
            blocker.result(timeout=60)
            third.result(timeout=60)
            assert registry.counter("serving.cancelled").value() == 1
            assert service.stats()["cancelled"] == 1
        finally:
            gate.set()
            service.close()

    def test_cancel_running_query_observed_at_next_checkpoint(
        self, monkeypatch
    ):
        ctx = build_served_context(n_docs=6, seed=15)
        gate, entered = _gate_planner(monkeypatch)
        registry = MetricsRegistry()
        service = QueryService(
            ctx, ServiceConfig(max_workers=1), registry=registry
        )
        try:
            ticket = service.submit("BLOCK then cancel me?", "ntsb")
            assert entered.wait(timeout=30)  # running, parked in the planner
            assert ticket.cancel("operator abort") is True
            gate.set()  # planner resumes; the LLM layer checks the scope
            with pytest.raises(QueryCancelled):
                ticket.result(timeout=60)
            assert registry.counter("serving.cancelled").value() == 1
            # The worker slot is free again: a new query completes.
            service.submit("still serving?", "ntsb").result(timeout=60)
        finally:
            gate.set()
            service.close()

    def test_cancelled_leader_triggers_follower_reelection(self, monkeypatch):
        """S4: N identical queries coalesce; the leader is cancelled;
        followers re-elect a new leader and finish — nobody hangs."""
        ctx = build_served_context(n_docs=6, seed=16)
        gate, entered = _gate_planner(monkeypatch)
        registry = MetricsRegistry()
        service = QueryService(
            ctx, ServiceConfig(max_workers=3), registry=registry
        )
        question = "BLOCK how many wind incidents, coalesced?"
        try:
            tickets = [service.submit(question, "ntsb") for _ in range(3)]
            assert entered.wait(timeout=30)
            # Wait until both followers are parked on the leader's future.
            deadline = time.monotonic() + 30
            while service.result_cache.stats()["coalesced"] < 2:
                assert time.monotonic() < deadline, "followers never coalesced"
                time.sleep(0.01)
            leader = next(
                t
                for t in tickets
                if any(e.stage == "planning" for e in t.events())
            )
            followers = [t for t in tickets if t is not leader]
            assert leader.cancel("leader aborted") is True
            gate.set()
            with pytest.raises(QueryCancelled):
                leader.result(timeout=60)
            # Followers never hang and never inherit the cancellation.
            answers = [f.result(timeout=60) for f in followers]
            assert all(a.answer is not None for a in answers)
            assert service.result_cache.stats()["reelections"] >= 1
        finally:
            gate.set()
            service.close()


# ----------------------------------------------------------------------
# S1: ReliableLLM overall budget (no timeout compounding)
# ----------------------------------------------------------------------


class TestOverallTimeout:
    def test_overall_budget_caps_retry_storm(self):
        clock = [0.0]
        sleeps = []

        def fake_sleep(seconds):
            sleeps.append(seconds)
            clock[0] += seconds

        def flaky_with_time(*args, **kwargs):
            clock[0] += 3.0  # each backend attempt burns 3 "seconds"
            raise TransientLLMError("boom")

        backend = FlakyBackend(failures=100)
        backend.complete = flaky_with_time
        llm = ReliableLLM(
            backend,
            max_retries=10,
            backoff_base_s=2.0,
            total_timeout_s=5.0,
            sleeper=fake_sleep,
            clock=lambda: clock[0],
        )
        with pytest.raises(LLMTimeoutError, match="overall budget"):
            llm.complete("hi")
        # One attempt (3s) + clamped backoff reach the 5s budget; without
        # the overall cap this would have been 11 attempts * (3s + backoff).
        assert clock[0] <= 5.0 + 0.01
        assert llm.metrics()["overall_timeouts"] == 1

    def test_backoff_clamped_to_remaining_budget(self):
        clock = [0.0]
        sleeps = []

        def fake_sleep(seconds):
            sleeps.append(seconds)
            clock[0] += seconds

        llm = ReliableLLM(
            FlakyBackend(failures=1),
            max_retries=3,
            backoff_base_s=60.0,
            total_timeout_s=2.0,
            sleeper=fake_sleep,
            clock=lambda: clock[0],
        )
        with pytest.raises(LLMTimeoutError):
            llm.complete("hi")
        assert all(s <= 2.0 for s in sleeps)


# ----------------------------------------------------------------------
# Scheduler: cancelled/expired entries purged from the queue
# ----------------------------------------------------------------------


class TestSchedulerPurge:
    def test_cancelled_scope_purges_queued_request(self):
        scheduler = RequestScheduler(
            ReliableLLM(SimulatedLLM(seed=0)), registry=MetricsRegistry()
        )
        try:
            scope = CancelScope(query_id="qx")
            scope.cancel("gone before dispatch")
            with attach_scope(scope):
                future = scheduler.submit(
                    "a prompt that never dispatches", priority=Priority.BULK
                )
            exc = future.exception(timeout=10)
            assert isinstance(exc, QueryCancelled)
            assert scheduler.metrics()["cancelled"] >= 1
        finally:
            scheduler.close()

    def test_live_scope_requests_still_complete(self):
        scheduler = RequestScheduler(
            ReliableLLM(SimulatedLLM(seed=0)), registry=MetricsRegistry()
        )
        try:
            scope = CancelScope(deadline=Deadline(30.0), query_id="qy")
            with attach_scope(scope):
                response = scheduler.complete("fine prompt", timeout=30)
            assert response.text
        finally:
            scheduler.close()
