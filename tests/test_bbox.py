"""Unit tests for bounding-box geometry."""

import math

import pytest

from repro.docmodel import BoundingBox, reading_order, union_all


class TestConstruction:
    def test_valid_box(self):
        box = BoundingBox(1, 2, 3, 4)
        assert box.width == 2
        assert box.height == 2
        assert box.area == 4
        assert box.center == (2.0, 3.0)

    def test_inverted_box_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox(3, 2, 1, 4)
        with pytest.raises(ValueError):
            BoundingBox(1, 4, 3, 2)

    def test_degenerate_box_allowed(self):
        box = BoundingBox(1, 1, 1, 5)
        assert box.area == 0.0

    def test_from_xywh(self):
        box = BoundingBox.from_xywh(10, 20, 5, 8)
        assert box.to_tuple() == (10, 20, 15, 28)

    def test_from_xywh_negative_extent(self):
        with pytest.raises(ValueError):
            BoundingBox.from_xywh(0, 0, -1, 5)

    def test_from_tuple_wrong_length(self):
        with pytest.raises(ValueError):
            BoundingBox.from_tuple([1, 2, 3])

    def test_dict_roundtrip(self):
        box = BoundingBox(1.5, 2.5, 3.5, 4.5)
        assert BoundingBox.from_dict(box.to_dict()) == box


class TestIntersection:
    def test_overlapping(self):
        a = BoundingBox(0, 0, 10, 10)
        b = BoundingBox(5, 5, 15, 15)
        inter = a.intersection(b)
        assert inter == BoundingBox(5, 5, 10, 10)

    def test_disjoint_returns_none(self):
        a = BoundingBox(0, 0, 1, 1)
        b = BoundingBox(2, 2, 3, 3)
        assert a.intersection(b) is None
        assert not a.intersects(b)

    def test_touching_edges_intersect(self):
        a = BoundingBox(0, 0, 1, 1)
        b = BoundingBox(1, 0, 2, 1)
        assert a.intersects(b)
        assert a.intersection(b).area == 0.0

    def test_contained(self):
        outer = BoundingBox(0, 0, 10, 10)
        inner = BoundingBox(2, 2, 4, 4)
        assert outer.contains_box(inner)
        assert not inner.contains_box(outer)
        assert outer.intersection(inner) == inner


class TestIoU:
    def test_identical_boxes(self):
        box = BoundingBox(0, 0, 4, 4)
        assert box.iou(box) == 1.0

    def test_disjoint_iou_zero(self):
        assert BoundingBox(0, 0, 1, 1).iou(BoundingBox(5, 5, 6, 6)) == 0.0

    def test_half_overlap(self):
        a = BoundingBox(0, 0, 2, 1)
        b = BoundingBox(1, 0, 3, 1)
        # intersection 1, union 3
        assert a.iou(b) == pytest.approx(1 / 3)

    def test_iou_symmetric(self):
        a = BoundingBox(0, 0, 3, 3)
        b = BoundingBox(1, 1, 5, 4)
        assert a.iou(b) == pytest.approx(b.iou(a))

    def test_degenerate_identical(self):
        a = BoundingBox(1, 1, 1, 1)
        assert a.iou(a) == 1.0


class TestTransforms:
    def test_union(self):
        a = BoundingBox(0, 0, 1, 1)
        b = BoundingBox(5, 5, 6, 6)
        assert a.union(b) == BoundingBox(0, 0, 6, 6)

    def test_union_all(self):
        boxes = [BoundingBox(i, i, i + 1, i + 1) for i in range(4)]
        assert union_all(boxes) == BoundingBox(0, 0, 4, 4)

    def test_union_all_empty_raises(self):
        with pytest.raises(ValueError):
            union_all([])

    def test_expand(self):
        box = BoundingBox(2, 2, 4, 4).expand(1)
        assert box == BoundingBox(1, 1, 5, 5)

    def test_shrink_collapses_to_center(self):
        box = BoundingBox(0, 0, 2, 2).expand(-5)
        assert box == BoundingBox(1, 1, 1, 1)

    def test_translate(self):
        assert BoundingBox(0, 0, 1, 1).translate(2, 3) == BoundingBox(2, 3, 3, 4)

    def test_scale(self):
        assert BoundingBox(1, 1, 2, 2).scale(2, 3) == BoundingBox(2, 3, 4, 6)

    def test_scale_negative_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox(0, 0, 1, 1).scale(-1, 1)


class TestQueries:
    def test_contains_point(self):
        box = BoundingBox(0, 0, 2, 2)
        assert box.contains_point(1, 1)
        assert box.contains_point(0, 0)  # boundary inclusive
        assert not box.contains_point(3, 1)

    def test_overlap_fraction(self):
        a = BoundingBox(0, 0, 2, 2)
        b = BoundingBox(1, 0, 3, 2)
        assert a.overlap_fraction(b) == pytest.approx(0.5)

    def test_overlap_fraction_degenerate(self):
        degenerate = BoundingBox(0, 0, 0, 2)
        assert degenerate.overlap_fraction(BoundingBox(0, 0, 5, 5)) == 0.0

    def test_distance_overlapping_is_zero(self):
        a = BoundingBox(0, 0, 2, 2)
        assert a.distance_to(BoundingBox(1, 1, 3, 3)) == 0.0

    def test_distance_diagonal(self):
        a = BoundingBox(0, 0, 1, 1)
        b = BoundingBox(4, 5, 6, 7)
        assert a.distance_to(b) == pytest.approx(math.hypot(3, 4))


class TestReadingOrder:
    def test_rows_then_columns(self):
        boxes = [
            BoundingBox(100, 0, 150, 10),  # row 1 right
            BoundingBox(0, 0, 50, 10),  # row 1 left
            BoundingBox(0, 50, 50, 60),  # row 2
        ]
        assert reading_order(boxes) == [1, 0, 2]

    def test_row_tolerance_groups_jittered_rows(self):
        boxes = [
            BoundingBox(100, 0.004, 150, 10),
            BoundingBox(0, 0.0, 50, 10),
        ]
        assert reading_order(boxes, row_tolerance=0.01) == [1, 0]

    def test_empty(self):
        assert reading_order([]) == []
