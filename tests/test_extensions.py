"""Tests for the extension features: data lake, knowledge-graph
extraction, superlative list plans, and the multi-index join pattern."""

import pytest

from repro.datagen import generate_earnings_corpus, generate_ntsb_corpus
from repro.datagen.earnings import build_market_database
from repro.docmodel import Document
from repro.indexes import DataLake, GraphStore
from repro.luna import Luna
from repro.partitioner import ArynPartitioner
from repro.sycamore import SycamoreContext


class TestDataLake:
    def test_write_read_roundtrip(self, tmp_path, ntsb_corpus):
        _, raws = ntsb_corpus
        lake = DataLake(tmp_path / "lake")
        assert lake.write_many(raws[:3]) == 3
        assert len(lake) == 3
        assert raws[0].doc_id in lake
        restored = lake.read(raws[0].doc_id)
        assert restored.to_bytes() == raws[0].to_bytes()

    def test_scan_sorted(self, tmp_path, ntsb_corpus):
        _, raws = ntsb_corpus
        lake = DataLake(tmp_path / "lake")
        lake.write_many(reversed(raws[:4]))
        assert [d.doc_id for d in lake.scan()] == sorted(r.doc_id for r in raws[:4])

    def test_delete(self, tmp_path, ntsb_corpus):
        _, raws = ntsb_corpus
        lake = DataLake(tmp_path / "lake")
        lake.write(raws[0])
        assert lake.delete(raws[0].doc_id)
        assert not lake.delete(raws[0].doc_id)
        with pytest.raises(KeyError):
            lake.read(raws[0].doc_id)

    def test_invalid_doc_id_rejected(self, tmp_path):
        lake = DataLake(tmp_path / "lake")
        with pytest.raises(ValueError):
            lake.read("../escape")

    def test_context_reads_lake_lazily(self, tmp_path, ntsb_corpus):
        _, raws = ntsb_corpus
        lake = DataLake(tmp_path / "lake")
        lake.write_many(raws[:4])
        ctx = SycamoreContext(parallelism=1)
        ds = ctx.read.lake(lake).partition(ArynPartitioner(seed=0))
        docs = ds.take(2)  # laziness: only pulls what it needs
        assert len(docs) == 2
        assert docs[0].elements

    def test_context_accepts_path(self, tmp_path, ntsb_corpus):
        _, raws = ntsb_corpus
        DataLake(tmp_path / "lake").write(raws[0])
        ctx = SycamoreContext(parallelism=1)
        assert ctx.read.lake(tmp_path / "lake").count() == 1


class TestKnowledgeGraph:
    @pytest.fixture(scope="class")
    def graph_setup(self, earnings_corpus):
        records, raws = earnings_corpus
        ctx = SycamoreContext(parallelism=4)
        ds = ctx.read.raw(raws[:10]).partition(ArynPartitioner(seed=0))
        store = GraphStore()
        written = ds.write.knowledge_graph(store, model="sim-oracle")
        return records[:10], store, written

    def test_triples_written_with_provenance(self, graph_setup):
        records, store, written = graph_setup
        assert written > 0
        assert store.num_triples() == written
        record = records[0]
        sector_of = store.neighbors(record.company, "in_sector")
        assert sector_of == [record.sector]
        provenance = store.provenance(record.company, "in_sector", record.sector)
        assert provenance == [record.report_id]

    def test_ceo_change_events_extracted(self, graph_setup):
        records, store, _ = graph_setup
        changed = {r.company for r in records if r.ceo_changed}
        flagged = set(store.incoming("ceo_change", "had_event"))
        # oracle extraction: events match ground truth on these documents
        assert flagged == changed

    def test_extract_entities_transform(self, earnings_corpus):
        _, raws = earnings_corpus
        ctx = SycamoreContext(parallelism=1)
        doc = (
            ctx.read.raw(raws[:1])
            .partition(ArynPartitioner(seed=0))
            .extract_entities(model="sim-oracle")
            .first()
        )
        triples = doc.properties["entities"]
        assert triples
        assert all({"subject", "predicate", "object"} <= set(t) for t in triples)

    def test_ntsb_entities(self, ntsb_corpus):
        records, raws = ntsb_corpus
        ctx = SycamoreContext(parallelism=1)
        store = GraphStore()
        ctx.read.raw(raws[:5]).partition(ArynPartitioner(seed=0)).write.knowledge_graph(
            store, model="sim-oracle"
        )
        record = records[0]
        assert store.neighbors(record.report_id, "occurred_in") == [record.state]


@pytest.fixture(scope="module")
def market_context():
    records, raws = generate_earnings_corpus(30, seed=13)
    ctx = SycamoreContext(parallelism=4)
    (
        ctx.read.raw(raws)
        .partition(ArynPartitioner(seed=0))
        .extract_properties(
            {"company": "string", "sector": "string", "revenue_growth_pct": "float"},
            model="sim-oracle",
        )
        .write.index("earnings")
    )
    market_docs = [Document(properties=row) for row in build_market_database(records, seed=1)]
    ctx.read.documents(market_docs).write.index("market_db")
    return records, ctx


class TestMarketDatabase:
    def test_competitors_are_sector_peers(self):
        records, _ = generate_earnings_corpus(20, seed=5)
        rows = build_market_database(records, seed=0)
        by_company = {r.company: r for r in records}
        for row in rows:
            for competitor in row["competitors"]:
                assert by_company[competitor].sector == row["sector"]
                assert competitor != row["company"]

    def test_deterministic(self):
        records, _ = generate_earnings_corpus(10, seed=5)
        assert build_market_database(records, seed=2) == build_market_database(
            records, seed=2
        )


class TestDataIntegrationQueries:
    def test_superlative_list_plan(self, market_context):
        records, ctx = market_context
        luna = Luna(ctx, planner_model="sim-oracle", policy="quality")
        result = luna.query(
            "List the fastest growing companies in the BNPL market.", index="earnings"
        )
        truth = [
            r.company
            for r in sorted(
                (x for x in records if x.sector == "BNPL"),
                key=lambda x: -x.revenue_growth_pct,
            )[:5]
        ]
        assert list(result.answer) == truth[: len(result.answer)]
        operations = [n.operation for n in result.optimized_plan.nodes]
        assert "Sort" in operations and "Limit" in operations

    def test_join_against_market_database(self, market_context):
        records, ctx = market_context
        luna = Luna(ctx, planner_model="sim-oracle", policy="quality")
        result = luna.query(
            "List the fastest growing companies in the BNPL market and their competitors.",
            index="earnings",
            secondary_indexes=["market_db"],
        )
        operations = [n.operation for n in result.optimized_plan.nodes]
        assert "Join" in operations
        assert result.answer, "join produced no rows"
        by_company = {r["company"]: r for r in build_market_database(records, seed=1)}
        for company, competitors in result.answer:
            assert competitors == by_company[company]["competitors"]

    def test_join_ignored_without_secondary(self, market_context):
        _, ctx = market_context
        luna = Luna(ctx, planner_model="sim-oracle", policy="quality")
        result = luna.query(
            "List the fastest growing companies in the BNPL market and their competitors.",
            index="earnings",
        )
        operations = [n.operation for n in result.optimized_plan.nodes]
        assert "Join" not in operations  # no database offered, no join

    def test_docset_project_parity(self, market_context):
        _, ctx = market_context
        names = ctx.read.index("earnings").limit(3).project("company")
        assert len(names) == 3
        pairs = ctx.read.index("earnings").limit(2).project(["company", "sector"])
        assert all(len(p) == 2 for p in pairs)
