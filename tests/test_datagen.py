"""Tests for the synthetic corpus generators and the page layouter."""

import random

import pytest

from repro.datagen import (
    PageLayouter,
    SECTORS,
    build_full_suite,
    generate_earnings_corpus,
    generate_layout_benchmark,
    generate_ntsb_corpus,
    wrap_text,
)
from repro.datagen.ntsb import CAUSE_TAXONOMY
from repro.docmodel import PAGE_HEIGHT, PAGE_WIDTH


class TestWrapText:
    def test_respects_width(self):
        lines = wrap_text("word " * 100, width_chars=20)
        assert all(len(line) <= 20 for line in lines)

    def test_keeps_paragraph_breaks(self):
        lines = wrap_text("para one\npara two")
        assert lines == ["para one", "para two"]

    def test_skips_blank_paragraphs(self):
        assert wrap_text("a\n\n\nb") == ["a", "b"]


class TestPageLayouter:
    def test_every_page_has_furniture(self):
        layout = PageLayouter(header_text="HDR")
        layout.add_paragraphs(["text " * 400] * 3)  # force multiple pages
        doc = layout.build("d1")
        assert doc.num_pages() >= 2
        for page in doc.pages:
            labels = [b.label for b in page.boxes]
            assert "Page-header" in labels
            assert "Page-footer" in labels

    def test_boxes_stay_on_canvas(self):
        layout = PageLayouter(header_text="H")
        layout.add_title("A Title")
        layout.add_paragraphs(["body " * 200] * 4)
        layout.add_table([["A", "B"]] + [[str(i), str(i)] for i in range(40)])
        doc = layout.build("d2")
        for page in doc.pages:
            for box in page.boxes:
                assert 0 <= box.bbox.x1 <= box.bbox.x2 <= PAGE_WIDTH
                assert 0 <= box.bbox.y1 <= box.bbox.y2 <= PAGE_HEIGHT

    def test_long_table_splits_with_continuation_flag(self):
        layout = PageLayouter()
        layout.add_paragraphs(["filler " * 300])  # eat most of page one
        rows = [["Col1", "Col2"]] + [[f"r{i}", str(i)] for i in range(60)]
        layout.add_table(rows)
        doc = layout.build("d3")
        fragments = [
            b for page in doc.pages for b in page.boxes if b.label == "Table"
        ]
        assert len(fragments) >= 2
        assert not fragments[0].continues_previous
        assert all(f.continues_previous for f in fragments[1:])
        # header row lives only on the first fragment
        assert fragments[0].table.header_rows() == [0]
        assert all(f.table.header_rows() == [] for f in fragments[1:])

    def test_table_cells_have_positioned_runs(self):
        layout = PageLayouter()
        layout.add_table([["H1", "H2"], ["a", "b"]])
        doc = layout.build("d4")
        table_box = next(
            b for page in doc.pages for b in page.boxes if b.label == "Table"
        )
        assert len(table_box.runs) == 4
        for run in table_box.runs:
            assert table_box.bbox.contains_box(run.bbox)

    def test_scanned_image_text_not_in_plain_runs(self):
        layout = PageLayouter()
        layout.add_image("scan", contains_text="hidden words")
        doc = layout.build("d5")
        assert "hidden" not in " ".join(
            r.text for r in doc.pages[0].text_runs()
        )


class TestNtsbCorpus:
    def test_deterministic(self):
        a_records, a_docs = generate_ntsb_corpus(5, seed=7)
        b_records, b_docs = generate_ntsb_corpus(5, seed=7)
        assert [r.to_dict() for r in a_records] == [r.to_dict() for r in b_records]
        assert [d.to_bytes() for d in a_docs] == [d.to_bytes() for d in b_docs]

    def test_seed_changes_corpus(self):
        a, _ = generate_ntsb_corpus(5, seed=1)
        b, _ = generate_ntsb_corpus(5, seed=2)
        assert [r.to_dict() for r in a] != [r.to_dict() for r in b]

    def test_ground_truth_attached(self, ntsb_corpus):
        records, docs = ntsb_corpus
        for record, doc in zip(records, docs):
            assert doc.ground_truth == record.to_dict()
            assert doc.doc_id == record.report_id

    def test_records_internally_consistent(self, ntsb_corpus):
        records, _ = ntsb_corpus
        for r in records:
            assert r.cause_detail in dict(CAUSE_TAXONOMY[r.cause_category])
            assert r.weather_related == (r.cause_category == "environmental")
            assert r.date.startswith(str(r.year))

    def test_rendered_text_supports_extraction(self, ntsb_corpus):
        records, docs = ntsb_corpus
        for r, d in zip(records, docs):
            text = " ".join(d.all_text().split())
            assert f"{r.city}, {r.state}" in text
            assert r.probable_cause.split(",")[0] in text

    def test_cause_mix_roughly_matches_weights(self):
        records, _ = generate_ntsb_corpus(400, seed=3)
        environmental = sum(1 for r in records if r.cause_category == "environmental")
        assert 0.3 < environmental / 400 < 0.5


class TestEarningsCorpus:
    def test_deterministic(self):
        a, _ = generate_earnings_corpus(5, seed=9)
        b, _ = generate_earnings_corpus(5, seed=9)
        assert [r.to_dict() for r in a] == [r.to_dict() for r in b]

    def test_sentiment_consistent_with_guidance(self, earnings_corpus):
        records, _ = earnings_corpus
        for r in records:
            expected = {"raised": "positive", "lowered": "negative", "maintained": "neutral"}
            assert r.sentiment == expected[r.guidance]
            assert r.sector in SECTORS

    def test_narrative_mentions_ceo_transition_only_when_changed(self, earnings_corpus):
        records, docs = earnings_corpus
        for r, d in zip(records, docs):
            text = d.all_text()
            if r.ceo_changed:
                assert "CEO transition" in text
            else:
                assert "CEO transition" not in text

    def test_financial_table_present(self, earnings_corpus):
        _, docs = earnings_corpus
        for d in docs:
            tables = [b for p in d.pages for b in p.boxes if b.label == "Table"]
            assert tables
            grid = tables[0].table.to_grid()
            assert any("Revenue" in cell for row in grid for cell in row)


class TestLayoutBenchmark:
    def test_covers_all_eleven_categories(self):
        docs = generate_layout_benchmark(40, seed=1)
        labels = {b.label for d in docs for p in d.pages for b in p.boxes}
        from repro.docmodel import ELEMENT_TYPES

        assert labels == set(ELEMENT_TYPES)

    def test_deterministic(self):
        a = generate_layout_benchmark(10, seed=5)
        b = generate_layout_benchmark(10, seed=5)
        assert [d.to_bytes() for d in a] == [d.to_bytes() for d in b]


class TestQuestionSuite:
    def test_eighteen_questions(self, ntsb_corpus, earnings_corpus):
        suite = build_full_suite(ntsb_corpus[0], earnings_corpus[0])
        assert len(suite) == 18
        assert sum(1 for q in suite if q.index == "ntsb") == 10
        assert sum(1 for q in suite if q.index == "earnings") == 8

    def test_expected_answers_computed_from_records(self, ntsb_corpus, earnings_corpus):
        records = ntsb_corpus[0]
        suite = build_full_suite(records, earnings_corpus[0])
        icing = next(q for q in suite if q.qid == "ntsb-01")
        assert icing.expected == sum(1 for r in records if r.cause_detail == "icing")
        percent = next(q for q in suite if q.qid == "ntsb-02")
        env = [r for r in records if r.cause_category == "environmental"]
        wind = [r for r in records if r.cause_detail == "wind"]
        assert percent.expected == pytest.approx(100 * len(wind) / len(env))

    def test_has_deliberately_ambiguous_questions(self, ntsb_corpus, earnings_corpus):
        suite = build_full_suite(ntsb_corpus[0], earnings_corpus[0])
        assert sum(1 for q in suite if q.ambiguous) == 2


class TestOrphanControl:
    def test_no_tiny_leading_table_fragment(self):
        """Orphan control: a table never starts as a sub-4-row stub when it
        could start cleanly on the next page."""
        from repro.datagen.render import PageLayouter

        for filler in (290, 300, 310, 320, 330):
            layout = PageLayouter()
            layout.add_paragraphs(["filler " * filler])
            rows = [["A", "B"]] + [[str(i), str(i)] for i in range(30)]
            layout.add_table(rows)
            doc = layout.build(f"orphan-{filler}")
            fragments = [
                b for p in doc.pages for b in p.boxes if b.label == "Table"
            ]
            first = fragments[0]
            assert first.table.num_rows >= min(4, 31)
            # All rows survive the pagination.
            total_rows = sum(f.table.num_rows for f in fragments)
            assert total_rows == 31


class TestRenderHashSeedIndependence:
    """The render functions' rng *fallbacks* must route through
    ``stable_seed``, never builtin ``hash()`` — a document rendered
    without an explicit rng has to produce identical bytes under any
    ``PYTHONHASHSEED`` (the cluster layer replays renders in spawned
    worker processes, which do not inherit the parent's hash salt)."""

    _CHILD = """
import hashlib
import random

from repro.datagen.earnings import generate_company, render_report
from repro.datagen.manuals import generate_manual, render_manual
from repro.datagen.ntsb import generate_incident, render_incident

digest = hashlib.sha256()
rng = random.Random(7)
for i in range(3):
    digest.update(render_incident(generate_incident(rng, i)).all_text().encode())
    digest.update(render_report(generate_company(rng, i)).all_text().encode())
    digest.update(render_manual(generate_manual(rng, i)).all_text().encode())
print(digest.hexdigest())
"""

    def _render_digest(self, hash_seed: str) -> str:
        import os
        import subprocess
        import sys

        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        proc = subprocess.run(
            [sys.executable, "-c", self._CHILD],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        return proc.stdout.strip()

    def test_render_bytes_identical_across_hash_seeds(self):
        assert self._render_digest("0") == self._render_digest("271828")
