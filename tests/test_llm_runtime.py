"""Unit tests for the LLM runtime: tokens, prompts, specs, cost ledger."""

import pytest

from repro.llm import (
    CostTracker,
    DEFAULT_MODELS,
    MalformedOutputError,
    PromptTemplate,
    UnknownModelError,
    Usage,
    count_tokens,
    get_model_spec,
    parse_task_prompt,
    render_task_prompt,
    split_into_chunks,
    truncate_to_tokens,
)


class TestTokens:
    def test_empty(self):
        assert count_tokens("") == 0

    def test_words_floor(self):
        # short words: at least one token per word
        assert count_tokens("a b c d") >= 4

    def test_long_prose_scales_with_chars(self):
        text = "abcdefgh " * 100
        assert count_tokens(text) >= len(text) / 5

    def test_monotone_in_length(self):
        assert count_tokens("hello world again") >= count_tokens("hello world")

    def test_truncate_respects_budget(self):
        text = "word " * 100
        truncated = truncate_to_tokens(text, 10)
        assert count_tokens(truncated) <= 10
        assert truncated.startswith("word")

    def test_truncate_zero(self):
        assert truncate_to_tokens("anything", 0) == ""

    def test_truncate_noop_when_fits(self):
        assert truncate_to_tokens("short", 100) == "short"


class TestTaskPrompts:
    def test_roundtrip(self):
        prompt = render_task_prompt(
            "filter", {"condition": "is it windy", "document": "line1\nline2"}
        )
        task, sections = parse_task_prompt(prompt)
        assert task == "filter"
        assert sections["condition"] == "is it windy"
        assert sections["document"] == "line1\nline2"

    def test_invalid_task_name(self):
        with pytest.raises(ValueError):
            render_task_prompt("Bad Name!", {})

    def test_invalid_section_name(self):
        with pytest.raises(ValueError):
            render_task_prompt("ok", {"bad name": "x"})

    def test_parse_without_marker_raises(self):
        with pytest.raises(MalformedOutputError):
            parse_task_prompt("just some text")

    def test_template_missing_field(self):
        template = PromptTemplate(task="t", instructions="i", required_fields=("a",))
        with pytest.raises(ValueError, match="missing"):
            template.render(b="x")

    def test_template_renders_instructions_section(self):
        template = PromptTemplate(task="t", instructions="do the thing")
        task, sections = parse_task_prompt(template.render(extra="1"))
        assert task == "t"
        assert sections["instructions"] == "do the thing"
        assert sections["extra"] == "1"


class TestChunking:
    def test_chunks_cover_all_words(self):
        text = " ".join(f"w{i}" for i in range(50))
        chunks = split_into_chunks(text, chunk_tokens=10)
        rejoined = " ".join(chunks).split()
        assert set(rejoined) == {f"w{i}" for i in range(50)}

    def test_overlap(self):
        text = " ".join(f"w{i}" for i in range(20))
        chunks = split_into_chunks(text, chunk_tokens=10, overlap_tokens=2)
        first_tail = chunks[0].split()[-2:]
        second_head = chunks[1].split()[:2]
        assert first_tail == second_head

    def test_empty_text(self):
        assert split_into_chunks("", 10) == []

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            split_into_chunks("x", 0)
        with pytest.raises(ValueError):
            split_into_chunks("x", 10, overlap_tokens=10)


class TestModelSpecs:
    def test_tiers_ordered_by_quality_and_price(self):
        large = get_model_spec("sim-large")
        small = get_model_spec("sim-small")
        assert large.quality > small.quality
        assert large.input_price_per_mtok > small.input_price_per_mtok
        assert large.context_window > small.context_window

    def test_unknown_model(self):
        with pytest.raises(UnknownModelError):
            get_model_spec("gpt-99")

    def test_cost_formula(self):
        spec = get_model_spec("sim-large")
        cost = spec.cost_usd(1_000_000, 0)
        assert cost == pytest.approx(spec.input_price_per_mtok)

    def test_latency_increases_with_tokens(self):
        spec = get_model_spec("sim-large")
        assert spec.latency_s(10_000, 100) > spec.latency_s(100, 100)

    def test_all_default_models_valid(self):
        for name, spec in DEFAULT_MODELS.items():
            assert spec.name == name
            assert 0 < spec.quality <= 1.0


class TestCostTracker:
    def test_records_and_summary(self):
        tracker = CostTracker()
        tracker.record("sim-large", Usage(1000, 100, 1), latency_s=2.0, tag="op1")
        tracker.record("sim-small", Usage(500, 50, 1), latency_s=1.0, tag="op2")
        summary = tracker.summary()
        assert summary.calls == 2
        assert summary.input_tokens == 1500
        assert summary.cost_usd > 0

    def test_cached_calls_are_free(self):
        tracker = CostTracker()
        tracker.record("sim-large", Usage(1000, 100, 1), latency_s=2.0, cached=True)
        summary = tracker.summary()
        assert summary.cost_usd == 0.0
        assert summary.latency_s == 0.0
        assert summary.cached_calls == 1

    def test_filter_by_tag_and_model(self):
        tracker = CostTracker()
        tracker.record("sim-large", Usage(10, 1, 1), 0.1, tag="a")
        tracker.record("sim-large", Usage(20, 2, 1), 0.1, tag="b")
        assert tracker.summary(tag="a").input_tokens == 10
        assert tracker.summary(model="sim-large").calls == 2
        assert tracker.summary(model="sim-small").calls == 0

    def test_by_model_and_reset(self):
        tracker = CostTracker()
        tracker.record("sim-large", Usage(10, 1, 1), 0.1)
        tracker.record("sim-small", Usage(10, 1, 1), 0.1)
        assert set(tracker.by_model()) == {"sim-large", "sim-small"}
        tracker.reset()
        assert tracker.summary().calls == 0

    def test_larger_model_costs_more(self):
        tracker = CostTracker()
        usage = Usage(10_000, 1_000, 1)
        large = tracker.record("sim-large", usage, 1.0)
        small = tracker.record("sim-small", usage, 1.0)
        assert large.cost_usd > small.cost_usd * 10
