"""Shared fixtures.

Expensive artefacts (generated corpora, partitioned and indexed contexts)
are session-scoped: the corpus generators and the simulated models are
deterministic, so sharing them across tests is safe.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis import leakcheck, locksmith

# The lock-order sanitizer must patch threading.Lock/RLock BEFORE the
# modules under test create their locks, i.e. before `import repro.*`
# below pulls everything in. Opt in with REPRO_LOCKSMITH=1 or
# `pytest --locksmith`; the env var is honoured here (import time), the
# CLI flag in pytest_configure (early enough for test-created locks,
# which is what the sanitizer is for).
locksmith.install_from_env()

from repro.datagen import generate_earnings_corpus, generate_ntsb_corpus
from repro.docmodel import BoundingBox, Document, Element, Node, Table, TableCell
from repro.llm import CostTracker, ReliableLLM, SimulatedLLM
from repro.partitioner import ArynPartitioner
from repro.sycamore import SycamoreContext


def pytest_addoption(parser):
    parser.addoption(
        "--locksmith",
        action="store_true",
        default=False,
        help="enable the runtime lock-order sanitizer (repro.analysis.locksmith)",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "locksmith_intentional: test provokes lock-order inversions on "
        "purpose; the per-test sanitizer check is skipped",
    )
    if config.getoption("--locksmith", default=False):
        locksmith.install()


def pytest_unconfigure(config):
    if locksmith.installed():
        report_path = os.environ.get("REPRO_LOCKSMITH_REPORT")
        if report_path:
            locksmith.write_report(report_path)
        locksmith.uninstall()


@pytest.fixture(autouse=True)
def _lock_order_sanitizer(request):
    """Under ``--locksmith``/``REPRO_LOCKSMITH``, fail any test whose
    execution records a new lock-order inversion. The order graph itself
    is process-wide (edges accumulate across tests on purpose — that is
    how cross-test inversions are caught), so only the *inversion list*
    is diffed per test."""
    if not locksmith.installed():
        yield
        return
    if request.node.get_closest_marker("locksmith_intentional") is not None:
        yield
        return
    before = len(locksmith.inversions())
    yield
    new = locksmith.inversions()[before:]
    if new:
        pytest.fail(
            "lock-order inversion(s) observed during this test:\n\n"
            + "\n\n".join(inv.render() for inv in new),
            pytrace=False,
        )


@pytest.fixture(autouse=True)
def _leak_sanitizer():
    """Fail any test that leaves new non-daemon threads behind.

    Un-shutdown ``ThreadPoolExecutor`` instances are caught too: their
    workers are non-daemon threads. Intentional long-lived helpers must
    be daemonized or joined before the test returns.
    """
    before = leakcheck.thread_snapshot()
    yield
    leaked = leakcheck.find_leaked_threads(before)
    if leaked:
        pytest.fail(
            "test leaked non-daemon thread(s)/executor worker(s): "
            + ", ".join(leaked),
            pytrace=False,
        )


@pytest.fixture(scope="session")
def ntsb_corpus():
    """(records, raw_documents) — 30 synthetic NTSB reports."""
    return generate_ntsb_corpus(30, seed=101)


@pytest.fixture(scope="session")
def earnings_corpus():
    """(records, raw_documents) — 24 synthetic earnings reports."""
    return generate_earnings_corpus(24, seed=202)


@pytest.fixture()
def oracle_llm():
    """Reliability-wrapped zero-noise simulated LLM with a fresh tracker."""
    tracker = CostTracker()
    llm = ReliableLLM(SimulatedLLM(seed=0, tracker=tracker))
    yield llm
    llm.close()


@pytest.fixture()
def context():
    """A fresh single-threaded Sycamore context."""
    with SycamoreContext(parallelism=1, seed=0) as ctx:
        yield ctx


@pytest.fixture(scope="session")
def indexed_context(ntsb_corpus, earnings_corpus):
    """A context with both corpora partitioned, extracted, and indexed.

    Uses the oracle model for extraction so index properties match ground
    truth exactly; tests that need noisy models build their own context.
    """
    records, raws = ntsb_corpus
    e_records, e_raws = earnings_corpus
    ctx = SycamoreContext(parallelism=4, seed=0)
    (
        ctx.read.raw(raws)
        .partition(ArynPartitioner(seed=0))
        .extract_properties(
            {
                "state": "string",
                "incident_year": "int",
                "weather_related": "bool",
                "injuries_fatal": "int",
            },
            model="sim-oracle",
        )
        .write.index("ntsb")
    )
    (
        ctx.read.raw(e_raws)
        .partition(ArynPartitioner(seed=0))
        .extract_properties(
            {
                "company": "string",
                "sector": "string",
                "revenue_musd": "float",
                "revenue_growth_pct": "float",
                "ceo_changed": "bool",
            },
            model="sim-oracle",
        )
        .write.index("earnings")
    )
    yield ctx
    ctx.close()


def make_doc(text: str = "", **properties) -> Document:
    """Tiny helper used across tests."""
    return Document(text=text, properties=dict(properties))


@pytest.fixture()
def simple_table() -> Table:
    return Table.from_rows(
        [["Name", "Value"], ["alpha", "1"], ["beta", "2"]],
        caption="test table",
    )
