"""Shared fixtures.

Expensive artefacts (generated corpora, partitioned and indexed contexts)
are session-scoped: the corpus generators and the simulated models are
deterministic, so sharing them across tests is safe.
"""

from __future__ import annotations

import pytest

from repro.analysis import leakcheck
from repro.datagen import generate_earnings_corpus, generate_ntsb_corpus
from repro.docmodel import BoundingBox, Document, Element, Node, Table, TableCell
from repro.llm import CostTracker, ReliableLLM, SimulatedLLM
from repro.partitioner import ArynPartitioner
from repro.sycamore import SycamoreContext


@pytest.fixture(autouse=True)
def _leak_sanitizer():
    """Fail any test that leaves new non-daemon threads behind.

    Un-shutdown ``ThreadPoolExecutor`` instances are caught too: their
    workers are non-daemon threads. Intentional long-lived helpers must
    be daemonized or joined before the test returns.
    """
    before = leakcheck.thread_snapshot()
    yield
    leaked = leakcheck.find_leaked_threads(before)
    if leaked:
        pytest.fail(
            "test leaked non-daemon thread(s)/executor worker(s): "
            + ", ".join(leaked),
            pytrace=False,
        )


@pytest.fixture(scope="session")
def ntsb_corpus():
    """(records, raw_documents) — 30 synthetic NTSB reports."""
    return generate_ntsb_corpus(30, seed=101)


@pytest.fixture(scope="session")
def earnings_corpus():
    """(records, raw_documents) — 24 synthetic earnings reports."""
    return generate_earnings_corpus(24, seed=202)


@pytest.fixture()
def oracle_llm():
    """Reliability-wrapped zero-noise simulated LLM with a fresh tracker."""
    tracker = CostTracker()
    llm = ReliableLLM(SimulatedLLM(seed=0, tracker=tracker))
    yield llm
    llm.close()


@pytest.fixture()
def context():
    """A fresh single-threaded Sycamore context."""
    with SycamoreContext(parallelism=1, seed=0) as ctx:
        yield ctx


@pytest.fixture(scope="session")
def indexed_context(ntsb_corpus, earnings_corpus):
    """A context with both corpora partitioned, extracted, and indexed.

    Uses the oracle model for extraction so index properties match ground
    truth exactly; tests that need noisy models build their own context.
    """
    records, raws = ntsb_corpus
    e_records, e_raws = earnings_corpus
    ctx = SycamoreContext(parallelism=4, seed=0)
    (
        ctx.read.raw(raws)
        .partition(ArynPartitioner(seed=0))
        .extract_properties(
            {
                "state": "string",
                "incident_year": "int",
                "weather_related": "bool",
                "injuries_fatal": "int",
            },
            model="sim-oracle",
        )
        .write.index("ntsb")
    )
    (
        ctx.read.raw(e_raws)
        .partition(ArynPartitioner(seed=0))
        .extract_properties(
            {
                "company": "string",
                "sector": "string",
                "revenue_musd": "float",
                "revenue_growth_pct": "float",
                "ceo_changed": "bool",
            },
            model="sim-oracle",
        )
        .write.index("earnings")
    )
    yield ctx
    ctx.close()


def make_doc(text: str = "", **properties) -> Document:
    """Tiny helper used across tests."""
    return Document(text=text, properties=dict(properties))


@pytest.fixture()
def simple_table() -> Table:
    return Table.from_rows(
        [["Name", "Value"], ["alpha", "1"], ["beta", "2"]],
        caption="test table",
    )
