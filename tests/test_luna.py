"""Tests for Luna: operators, math, planner, optimizer, codegen, executor,
and the human-in-the-loop session API."""

import pytest

from repro.docmodel import Document
from repro.luna import (
    BALANCED_POLICY,
    COST_POLICY,
    LogicalPlan,
    Luna,
    LunaExecutor,
    LunaOptimizer,
    LunaPlanner,
    MathEvaluationError,
    PlanExecutionError,
    PlanNode,
    PlanValidationError,
    QUALITY_POLICY,
    evaluate,
    generate_code,
    referenced_nodes,
)
from repro.sycamore import SycamoreContext


def plan_from(nodes):
    return LogicalPlan.from_json(nodes)


SIMPLE_PLAN = [
    {"operation": "QueryIndex", "inputs": [], "index": "ntsb"},
    {"operation": "LlmFilter", "inputs": [0], "condition": "caused by wind"},
    {"operation": "Count", "inputs": [1]},
]


class TestPlanValidation:
    def test_valid_plan(self):
        plan = plan_from(SIMPLE_PLAN)
        plan.validate()
        assert plan.result_node() == 2

    def test_empty_plan(self):
        with pytest.raises(PlanValidationError, match="empty"):
            plan_from([]).validate()

    def test_unknown_operation(self):
        with pytest.raises(PlanValidationError, match="unknown operation"):
            plan_from([{"operation": "Teleport", "inputs": []}]).validate()

    def test_missing_required_field(self):
        with pytest.raises(PlanValidationError, match="missing field"):
            plan_from([{"operation": "QueryIndex", "inputs": []}]).validate()

    def test_forward_reference_rejected(self):
        bad = [
            {"operation": "QueryIndex", "inputs": [], "index": "x"},
            {"operation": "Count", "inputs": [2]},
            {"operation": "Identity", "inputs": [0]},
        ]
        with pytest.raises(PlanValidationError, match="earlier node"):
            plan_from(bad).validate()

    def test_wrong_arity(self):
        bad = [
            {"operation": "QueryIndex", "inputs": [], "index": "x"},
            {"operation": "Count", "inputs": [0, 0]},
        ]
        with pytest.raises(PlanValidationError, match="expected 1 inputs"):
            plan_from(bad).validate()

    def test_from_json_accepts_nodes_wrapper(self):
        plan = LogicalPlan.from_json({"nodes": SIMPLE_PLAN})
        assert len(plan.nodes) == 3

    def test_json_roundtrip(self):
        plan = plan_from(SIMPLE_PLAN)
        restored = LogicalPlan.from_json(plan.to_json())
        assert restored.to_json() == plan.to_json()

    def test_natural_language_rendering(self):
        text = plan_from(SIMPLE_PLAN).to_natural_language()
        assert "Step 1" in text and "Step 3" in text
        assert "caused by wind" in text

    def test_consumers_includes_math_references(self):
        plan = plan_from(
            [
                {"operation": "QueryIndex", "inputs": [], "index": "x"},
                {"operation": "Count", "inputs": [0]},
                {"operation": "Math", "inputs": [1], "expression": "2 * #1"},
            ]
        )
        assert plan.consumers_of(1) == [2]


class TestMathOps:
    def test_basic_arithmetic(self):
        assert evaluate("100 * #4 / #2", {4: 5, 2: 10}) == 50.0

    def test_referenced_nodes(self):
        assert referenced_nodes("#1 + #12 - 3") == [1, 12]

    def test_unknown_reference(self):
        with pytest.raises(MathEvaluationError, match="unknown node"):
            evaluate("#9 + 1", {})

    def test_division_by_zero(self):
        with pytest.raises(MathEvaluationError, match="division by zero"):
            evaluate("#1 / #2", {1: 1, 2: 0})

    def test_code_injection_blocked(self):
        with pytest.raises(MathEvaluationError):
            evaluate("__import__('os').system('true')", {})
        with pytest.raises(MathEvaluationError):
            evaluate("(lambda: 1)()", {})

    def test_unary_and_power(self):
        assert evaluate("-#1 ** 2", {1: 3}) == -9.0

    def test_malformed(self):
        with pytest.raises(MathEvaluationError):
            evaluate("#1 +", {1: 1})


@pytest.fixture()
def small_ctx():
    ctx = SycamoreContext(parallelism=1, seed=0)
    docs = [
        Document.from_text(
            "gusty crosswind during the landing",
            properties={"state": "AK", "year": 2023, "fatal": 1},
        ),
        Document.from_text(
            "engine failure after takeoff",
            properties={"state": "TX", "year": 2023, "fatal": 0},
        ),
        Document.from_text(
            "severe icing in cruise",
            properties={"state": "AK", "year": 2022, "fatal": 2},
        ),
    ]
    idx = ctx.catalog.create("ntsb")
    idx.add_documents(docs)
    return ctx


class TestLunaExecutor:
    def _run(self, ctx, nodes):
        answer, trace = LunaExecutor(ctx).execute(plan_from(nodes))
        return answer, trace

    def test_scan_filter_count(self, small_ctx):
        answer, trace = self._run(
            small_ctx,
            [
                {"operation": "QueryIndex", "inputs": [], "index": "ntsb"},
                {"operation": "LlmFilter", "inputs": [0],
                 "condition": "caused by wind", "model": "sim-oracle"},
                {"operation": "Count", "inputs": [1]},
            ],
        )
        assert answer == 1
        assert [e.operation for e in trace.entries] == ["QueryIndex", "LlmFilter", "Count"]
        assert trace.entries[1].records_in == 3
        assert trace.entries[1].records_out == 1

    def test_basic_filter_and_aggregate(self, small_ctx):
        answer, _ = self._run(
            small_ctx,
            [
                {"operation": "QueryIndex", "inputs": [], "index": "ntsb"},
                {"operation": "BasicFilter", "inputs": [0], "field": "state",
                 "op": "eq", "value": "AK"},
                {"operation": "Aggregate", "inputs": [1], "func": "sum", "field": "fatal"},
            ],
        )
        assert answer == 3.0

    def test_aggregate_group_by(self, small_ctx):
        answer, _ = self._run(
            small_ctx,
            [
                {"operation": "QueryIndex", "inputs": [], "index": "ntsb"},
                {"operation": "Aggregate", "inputs": [0], "func": "count",
                 "field": "fatal", "group_by": "state"},
            ],
        )
        assert answer == {"AK": 2.0, "TX": 1.0}

    def test_topk_and_sort_and_limit(self, small_ctx):
        answer, _ = self._run(
            small_ctx,
            [
                {"operation": "QueryIndex", "inputs": [], "index": "ntsb"},
                {"operation": "TopK", "inputs": [0], "field": "state", "k": 1},
            ],
        )
        assert answer == [("AK", 2)]
        answer, _ = self._run(
            small_ctx,
            [
                {"operation": "QueryIndex", "inputs": [], "index": "ntsb"},
                {"operation": "Sort", "inputs": [0], "field": "fatal",
                 "descending": True},
                {"operation": "Limit", "inputs": [1], "k": 1},
                {"operation": "Project", "inputs": [2], "fields": ["state"]},
            ],
        )
        assert answer == ["AK"]

    def test_math_over_counts(self, small_ctx):
        answer, _ = self._run(
            small_ctx,
            [
                {"operation": "QueryIndex", "inputs": [], "index": "ntsb"},
                {"operation": "Count", "inputs": [0]},
                {"operation": "BasicFilter", "inputs": [0], "field": "year",
                 "op": "eq", "value": 2023},
                {"operation": "Count", "inputs": [2]},
                {"operation": "Math", "inputs": [1, 3], "expression": "100 * #3 / #1"},
            ],
        )
        assert answer == pytest.approx(100 * 2 / 3)

    def test_llm_extract_at_query_time(self, small_ctx):
        answer, _ = self._run(
            small_ctx,
            [
                {"operation": "QueryIndex", "inputs": [], "index": "ntsb"},
                {"operation": "LlmExtract", "inputs": [0], "field": "weather_related",
                 "type": "bool", "model": "sim-oracle"},
                {"operation": "BasicFilter", "inputs": [1],
                 "field": "weather_related", "op": "eq", "value": True},
                {"operation": "Count", "inputs": [2]},
            ],
        )
        assert answer == 2  # wind + icing

    def test_join_two_indexes(self, small_ctx):
        extra = small_ctx.catalog.create("aircraft_db")
        extra.add_documents(
            [Document(properties={"state": "AK", "region": "north"})]
        )
        answer, _ = self._run(
            small_ctx,
            [
                {"operation": "QueryIndex", "inputs": [], "index": "ntsb"},
                {"operation": "QueryIndex", "inputs": [], "index": "aircraft_db"},
                {"operation": "Join", "inputs": [0, 1], "left_on": "state",
                 "right_on": "state"},
                {"operation": "Count", "inputs": [2]},
            ],
        )
        assert answer == 2

    def test_summarize_node(self, small_ctx):
        answer, _ = self._run(
            small_ctx,
            [
                {"operation": "QueryIndex", "inputs": [], "index": "ntsb"},
                {"operation": "Summarize", "inputs": [0], "model": "sim-oracle"},
            ],
        )
        assert "Synthesis of 3 documents" in answer

    def test_summarize_empty_set(self, small_ctx):
        answer, _ = self._run(
            small_ctx,
            [
                {"operation": "QueryIndex", "inputs": [], "index": "ntsb"},
                {"operation": "BasicFilter", "inputs": [0], "field": "state",
                 "op": "eq", "value": "ZZ"},
                {"operation": "Summarize", "inputs": [1]},
            ],
        )
        assert answer == "No matching records."

    def test_type_error_surfaces_as_execution_error(self, small_ctx):
        with pytest.raises(PlanExecutionError):
            self._run(
                small_ctx,
                [
                    {"operation": "QueryIndex", "inputs": [], "index": "ntsb"},
                    {"operation": "Count", "inputs": [0]},
                    {"operation": "Count", "inputs": [1]},  # count of a scalar
                ],
            )

    def test_trace_records_llm_cost(self, small_ctx):
        _, trace = self._run(
            small_ctx,
            [
                {"operation": "QueryIndex", "inputs": [], "index": "ntsb"},
                {"operation": "LlmFilter", "inputs": [0], "condition": "wind",
                 "model": "sim-large"},
            ],
        )
        llm_entry = trace.entries[1]
        assert llm_entry.llm_calls == 3
        assert llm_entry.llm_cost_usd > 0
        assert trace.total_llm_calls() == 3


class TestOptimizer:
    def _schema(self):
        return {"state": "string", "year": "int", "weather_related": "bool",
                "ceo_changed": "bool"}

    def test_pushdown_moves_basic_before_llm(self):
        plan = plan_from(
            [
                {"operation": "QueryIndex", "inputs": [], "index": "i"},
                {"operation": "LlmFilter", "inputs": [0], "condition": "windy"},
                {"operation": "BasicFilter", "inputs": [1], "field": "year",
                 "op": "eq", "value": 2023},
                {"operation": "Count", "inputs": [2]},
            ]
        )
        optimized, log = LunaOptimizer(BALANCED_POLICY).optimize(plan, self._schema())
        assert optimized.nodes[1].operation == "BasicFilter"
        assert optimized.nodes[2].operation == "LlmFilter"
        # The chain wiring must be preserved: each stage reads the previous.
        assert optimized.nodes[1].inputs == [0]
        assert optimized.nodes[2].inputs == [1]
        assert optimized.nodes[3].inputs == [2]
        assert any("pushdown" in line for line in log)
        optimized.validate()

    def test_pushdown_preserves_count_result(self, small_ctx):
        nodes = [
            {"operation": "QueryIndex", "inputs": [], "index": "ntsb"},
            {"operation": "LlmFilter", "inputs": [0], "condition": "caused by wind",
             "model": "sim-oracle"},
            {"operation": "BasicFilter", "inputs": [1], "field": "year",
             "op": "eq", "value": 2023},
            {"operation": "Count", "inputs": [2]},
        ]
        raw_answer, _ = LunaExecutor(small_ctx).execute(plan_from(nodes))
        optimized, _ = LunaOptimizer(QUALITY_POLICY).optimize(
            plan_from(nodes), {"year": "int"}
        )
        # quality policy re-models the filter; force oracle for equality
        for node in optimized.nodes:
            if node.operation == "LlmFilter":
                node.params["model"] = "sim-oracle"
        opt_answer, _ = LunaExecutor(small_ctx).execute(optimized)
        assert raw_answer == opt_answer == 1

    def test_string_match_substitution(self):
        plan = plan_from(
            [
                {"operation": "QueryIndex", "inputs": [], "index": "i"},
                {"operation": "LlmFilter", "inputs": [0],
                 "condition": "weather related incidents"},
                {"operation": "Count", "inputs": [1]},
            ]
        )
        optimized, log = LunaOptimizer(BALANCED_POLICY).optimize(plan, self._schema())
        assert optimized.nodes[1].operation == "BasicFilter"
        assert optimized.nodes[1].params == {"field": "weather_related", "op": "eq", "value": True}
        assert any("string-match" in line for line in log)

    def test_no_substitution_without_matching_field(self):
        plan = plan_from(
            [
                {"operation": "QueryIndex", "inputs": [], "index": "i"},
                {"operation": "LlmFilter", "inputs": [0], "condition": "caused by wind"},
            ]
        )
        optimized, _ = LunaOptimizer(BALANCED_POLICY).optimize(plan, self._schema())
        assert optimized.nodes[1].operation == "LlmFilter"

    def test_fusion_merges_adjacent_llm_filters(self):
        plan = plan_from(
            [
                {"operation": "QueryIndex", "inputs": [], "index": "i"},
                {"operation": "LlmFilter", "inputs": [0], "condition": "about wind"},
                {"operation": "LlmFilter", "inputs": [1], "condition": "during landing"},
                {"operation": "Count", "inputs": [2]},
            ]
        )
        optimized, log = LunaOptimizer(COST_POLICY).optimize(plan, {})
        assert optimized.nodes[1].params["condition"] == "about wind and during landing"
        assert optimized.nodes[2].operation == "Identity"
        assert any("fusion" in line for line in log)
        optimized.validate()

    def test_fusion_not_across_fan_out(self):
        # node 1 feeds both a second filter and a count: must not fuse.
        plan = plan_from(
            [
                {"operation": "QueryIndex", "inputs": [], "index": "i"},
                {"operation": "LlmFilter", "inputs": [0], "condition": "a"},
                {"operation": "LlmFilter", "inputs": [1], "condition": "b"},
                {"operation": "Count", "inputs": [1]},
                {"operation": "Count", "inputs": [2]},
            ]
        )
        optimized, _ = LunaOptimizer(COST_POLICY).optimize(plan, {})
        assert optimized.nodes[2].operation == "LlmFilter"

    def test_model_selection_per_policy(self):
        plan = plan_from(SIMPLE_PLAN)
        for policy, expected in ((QUALITY_POLICY, "sim-large"), (COST_POLICY, "sim-small")):
            optimized, _ = LunaOptimizer(policy).optimize(plan, {})
            assert optimized.nodes[1].params["model"] == expected

    def test_original_plan_not_mutated(self):
        plan = plan_from(SIMPLE_PLAN)
        LunaOptimizer(BALANCED_POLICY).optimize(plan, {})
        assert "model" not in plan.nodes[1].params


class TestCodegen:
    def test_paper_figure5_shape(self):
        plan = plan_from(
            [
                {"operation": "QueryIndex", "inputs": [], "index": "ntsb"},
                {"operation": "LlmFilter", "inputs": [0],
                 "condition": "caused by environmental factors"},
                {"operation": "Count", "inputs": [1]},
                {"operation": "LlmFilter", "inputs": [1], "condition": "caused by wind"},
                {"operation": "Count", "inputs": [3]},
                {"operation": "Math", "inputs": [2, 4], "expression": "100 * #4 / #2"},
            ]
        )
        code = generate_code(plan)
        lines = code.splitlines()
        assert lines[0] == "out_0 = context.read.index('ntsb')"
        assert "out_1 = out_0.llm_filter('caused by environmental factors')" in code
        assert "out_2 = out_1.count()" in code
        assert lines[-1] == "result = math_operation(expr='100 * {out_4} / {out_2}')"

    def test_all_operators_render(self):
        plan = plan_from(
            [
                {"operation": "QueryIndex", "inputs": [], "index": "i", "query": "q"},
                {"operation": "BasicFilter", "inputs": [0], "field": "f", "op": "eq", "value": 1},
                {"operation": "LlmExtract", "inputs": [1], "field": "x", "model": "sim-small"},
                {"operation": "Sort", "inputs": [2], "field": "f"},
                {"operation": "Limit", "inputs": [3], "k": 5},
                {"operation": "TopK", "inputs": [4], "field": "f", "k": 2},
            ]
        )
        code = generate_code(plan)
        assert "query='q'" in code
        assert "filter_by_property('f', 'eq', 1)" in code
        assert "extract_properties({'x': 'string'}, model='sim-small')" in code
        assert ".sort('f', descending=False)" in code
        assert ".limit(5)" in code
        assert "top_k('f', k=2, descending=True)" in code


class TestLunaEndToEnd:
    def test_query_produces_full_result(self, indexed_context):
        luna = Luna(indexed_context, policy="quality")
        result = luna.query("How many incidents were caused by icing?", index="ntsb")
        records = [
            d.properties for d in indexed_context.catalog.get("ntsb").all_documents()
        ]
        assert isinstance(result.answer, int)
        assert result.code.startswith("out_0 = context.read.index('ntsb')")
        assert result.trace.entries
        explained = result.explain()
        assert "Plan:" in explained and "Execution trace:" in explained

    def test_unknown_policy_rejected(self, indexed_context):
        with pytest.raises(ValueError, match="unknown policy"):
            Luna(indexed_context, policy="turbo")

    def test_unknown_index_rejected(self, indexed_context):
        luna = Luna(indexed_context)
        with pytest.raises(KeyError):
            luna.query("How many?", index="nope")

    def test_session_inspect_and_edit(self, indexed_context):
        luna = Luna(indexed_context, policy="quality")
        session = luna.session(
            "How many incidents were caused by weather?", index="ntsb"
        )
        assert "Step 1" in session.show_plan()
        # The user tightens the planner's condition before running.
        llm_nodes = [
            i for i, n in enumerate(session.plan.nodes) if n.operation == "LlmFilter"
        ]
        if llm_nodes:
            session.set_param(llm_nodes[0], "condition", "caused by icing")
        result = session.run()
        assert isinstance(result.answer, int)

    def test_session_remove_filter(self, indexed_context):
        luna = Luna(indexed_context, policy="quality")
        session = luna.session(
            "How many incidents were caused by icing?", index="ntsb"
        )
        filters = [
            i
            for i, n in enumerate(session.plan.nodes)
            if n.operation in ("LlmFilter", "BasicFilter")
        ]
        for i in filters:
            session.remove_filter(i)
        result = session.run()
        assert result.answer == len(indexed_context.catalog.get("ntsb").all_documents())

    def test_session_replace_node(self, indexed_context):
        luna = Luna(indexed_context, policy="quality")
        session = luna.session("How many incidents were caused by icing?", index="ntsb")
        last = len(session.plan.nodes) - 1
        session.replace_node(
            last, {"operation": "Summarize", "inputs": [last - 1], "model": "sim-oracle"}
        )
        result = session.run()
        assert isinstance(result.answer, str)

    def test_session_bad_index_errors(self, indexed_context):
        luna = Luna(indexed_context, policy="quality")
        session = luna.session("How many incidents were caused by icing?", index="ntsb")
        with pytest.raises(IndexError):
            session.set_param(99, "condition", "x")

    def test_execute_explicit_plan(self, indexed_context):
        luna = Luna(indexed_context, policy="quality")
        plan = plan_from(
            [
                {"operation": "QueryIndex", "inputs": [], "index": "ntsb"},
                {"operation": "Count", "inputs": [0]},
            ]
        )
        result = luna.execute_plan("count all", "ntsb", plan)
        assert result.answer == len(indexed_context.catalog.get("ntsb").all_documents())

    def test_paper_percentage_query(self, indexed_context, ntsb_corpus):
        records, _ = ntsb_corpus
        # Oracle planner: this test isolates execution fidelity from the
        # planner's (intentional) misinterpretation noise.
        luna = Luna(indexed_context, planner_model="sim-oracle", policy="quality")
        result = luna.query(
            "What percent of environmentally caused incidents were due to wind?",
            index="ntsb",
        )
        env = sum(1 for r in records if r.cause_category == "environmental")
        wind = sum(1 for r in records if r.cause_detail == "wind")
        expected = 100.0 * wind / env
        assert result.answer == pytest.approx(expected, rel=0.35)
