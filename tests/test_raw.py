"""Unit tests for the raw document format (the PDF stand-in)."""

from repro.docmodel import (
    BoundingBox,
    RawBox,
    RawDocument,
    RawPage,
    RawTextRun,
    Table,
)


def _page_with_text_and_scan() -> RawPage:
    visible = RawBox(
        label="Text",
        bbox=BoundingBox(0, 0, 100, 20),
        runs=[RawTextRun("hello world", BoundingBox(0, 0, 100, 10))],
    )
    scanned = RawBox(
        label="Picture",
        bbox=BoundingBox(0, 30, 100, 60),
        runs=[RawTextRun("hidden text", BoundingBox(0, 30, 100, 40))],
        scanned=True,
    )
    return RawPage(boxes=[visible, scanned])


class TestRawPage:
    def test_text_runs_exclude_scanned(self):
        page = _page_with_text_and_scan()
        texts = [run.text for run in page.text_runs()]
        assert texts == ["hello world"]

    def test_box_text_joins_runs(self):
        box = RawBox(
            label="Text",
            bbox=BoundingBox(0, 0, 10, 10),
            runs=[
                RawTextRun("line one", BoundingBox(0, 0, 10, 5)),
                RawTextRun("line two", BoundingBox(0, 5, 10, 10)),
            ],
        )
        assert box.text() == "line one\nline two"


class TestRawDocument:
    def test_all_text_skips_scanned(self):
        doc = RawDocument(doc_id="d1", pages=[_page_with_text_and_scan()])
        assert "hello world" in doc.all_text()
        assert "hidden text" not in doc.all_text()

    def test_bytes_roundtrip(self):
        table = Table.from_rows([["H"], ["v"]])
        box = RawBox(
            label="Table",
            bbox=BoundingBox(0, 0, 50, 50),
            table=table,
            continues_previous=True,
        )
        image = RawBox(
            label="Picture",
            bbox=BoundingBox(0, 60, 50, 90),
            image_format="png",
            image_width_px=64,
            image_height_px=32,
            image_description="a diagram",
        )
        doc = RawDocument(
            doc_id="d2",
            pages=[RawPage(boxes=[box, image])],
            source_path="/tmp/x.raw",
            ground_truth={"cause": "wind"},
        )
        restored = RawDocument.from_bytes(doc.to_bytes())
        assert restored.doc_id == "d2"
        assert restored.source_path == "/tmp/x.raw"
        assert restored.ground_truth == {"cause": "wind"}
        rbox = restored.pages[0].boxes[0]
        assert rbox.continues_previous
        assert rbox.table.to_grid() == table.to_grid()
        rimg = restored.pages[0].boxes[1]
        assert rimg.image_description == "a diagram"
        assert rimg.image_width_px == 64

    def test_num_pages(self):
        doc = RawDocument(doc_id="d", pages=[RawPage(), RawPage()])
        assert doc.num_pages() == 2
