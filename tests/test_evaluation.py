"""Tests for the evaluation machinery: detection metrics, grading, harness."""

import pytest

from repro.datagen import build_full_suite
from repro.docmodel import BoundingBox
from repro.evaluation import (
    Grade,
    GroundTruthBox,
    PredictedBox,
    boxes_from_pages,
    evaluate_detections,
    grade_answer,
    grade_categorical,
    grade_exact_count,
    grade_list,
    grade_numeric,
    grade_summary,
    run_luna_suite,
    run_rag_suite,
)
from repro.luna import Luna


def _gt(image, label, x1, y1, x2, y2):
    return GroundTruthBox(image, label, BoundingBox(x1, y1, x2, y2))


def _pred(image, label, x1, y1, x2, y2, score):
    return PredictedBox(image, label, BoundingBox(x1, y1, x2, y2), score)


class TestDetectionMetrics:
    def test_perfect_detections_score_one(self):
        gts = [_gt("p1", "Text", 0, 0, 10, 10), _gt("p1", "Table", 20, 20, 40, 40)]
        preds = [
            _pred("p1", "Text", 0, 0, 10, 10, 0.9),
            _pred("p1", "Table", 20, 20, 40, 40, 0.8),
        ]
        metrics = evaluate_detections(gts, preds)
        assert metrics.mean_ap == pytest.approx(1.0, abs=0.01)
        assert metrics.mean_ar == pytest.approx(1.0)

    def test_no_predictions_scores_zero(self):
        gts = [_gt("p1", "Text", 0, 0, 10, 10)]
        metrics = evaluate_detections(gts, [])
        assert metrics.mean_ap == 0.0
        assert metrics.mean_ar == 0.0

    def test_empty_ground_truth(self):
        metrics = evaluate_detections([], [_pred("p", "Text", 0, 0, 1, 1, 0.5)])
        assert metrics.mean_ap == 0.0
        assert metrics.ap_per_category == {}

    def test_wrong_label_does_not_match(self):
        gts = [_gt("p1", "Text", 0, 0, 10, 10)]
        preds = [_pred("p1", "Table", 0, 0, 10, 10, 0.9)]
        assert evaluate_detections(gts, preds).mean_ap == 0.0

    def test_false_positives_lower_precision_not_recall(self):
        gts = [_gt("p1", "Text", 0, 0, 10, 10)]
        clean = [_pred("p1", "Text", 0, 0, 10, 10, 0.9)]
        noisy = clean + [
            _pred("p1", "Text", 50 + i, 50, 60 + i, 60, 0.95) for i in range(3)
        ]
        clean_m = evaluate_detections(gts, clean)
        noisy_m = evaluate_detections(gts, noisy)
        assert noisy_m.mean_ap < clean_m.mean_ap
        assert noisy_m.mean_ar == clean_m.mean_ar

    def test_localization_quality_affects_high_iou_bands(self):
        gts = [_gt("p1", "Text", 0, 0, 100, 100)]
        tight = [_pred("p1", "Text", 0, 0, 100, 100, 0.9)]
        loose = [_pred("p1", "Text", 10, 10, 110, 110, 0.9)]  # IoU ~0.68
        assert (
            evaluate_detections(gts, loose).mean_ap
            < evaluate_detections(gts, tight).mean_ap
        )

    def test_duplicate_detections_counted_once(self):
        # Two GT boxes but both predictions pile onto the first one: the
        # duplicate must not be credited as a second true positive.
        gts = [_gt("p1", "Text", 0, 0, 10, 10), _gt("p1", "Text", 30, 30, 40, 40)]
        preds = [
            _pred("p1", "Text", 0, 0, 10, 10, 0.9),
            _pred("p1", "Text", 0, 0, 10, 10, 0.8),  # duplicate -> FP
        ]
        metrics = evaluate_detections(gts, preds)
        assert metrics.mean_ar == pytest.approx(0.5)
        assert metrics.mean_ap < 1.0

    def test_per_image_matching(self):
        # A detection on the wrong page must not match.
        gts = [_gt("p1", "Text", 0, 0, 10, 10)]
        preds = [_pred("p2", "Text", 0, 0, 10, 10, 0.9)]
        assert evaluate_detections(gts, preds).mean_ap == 0.0

    def test_boxes_from_pages(self, ntsb_corpus):
        _, docs = ntsb_corpus
        boxes = boxes_from_pages(docs[0].pages, docs[0].doc_id)
        assert boxes
        assert boxes[0].image_id == f"{docs[0].doc_id}:0"

    def test_render(self):
        gts = [_gt("p1", "Text", 0, 0, 10, 10)]
        preds = [_pred("p1", "Text", 0, 0, 10, 10, 0.9)]
        report = evaluate_detections(gts, preds).render()
        assert "mAP@[.5:.95]" in report and "Text" in report


class TestGraders:
    def test_numeric_tolerances(self):
        assert grade_numeric(50.4, 50.0).grade is Grade.CORRECT
        assert grade_numeric(55.0, 50.0).grade is Grade.PLAUSIBLE
        assert grade_numeric(80.0, 50.0).grade is Grade.INCORRECT
        assert grade_numeric("about 50.2 percent", 50.0).grade is Grade.CORRECT
        assert grade_numeric("no number", 50.0).grade is Grade.INCORRECT

    def test_exact_count(self):
        assert grade_exact_count(7, 7).grade is Grade.CORRECT
        assert grade_exact_count(8, 7).grade is Grade.PLAUSIBLE
        assert grade_exact_count(12, 7).grade is Grade.INCORRECT
        assert grade_exact_count("7", 7).grade is Grade.CORRECT

    def test_categorical(self):
        assert grade_categorical("AK", "AK").grade is Grade.CORRECT
        assert grade_categorical([("AK", 5)], ["AK", "TX"]).grade is Grade.CORRECT
        assert grade_categorical([("CA", 5), ("AK", 4)], "AK").grade is Grade.PLAUSIBLE
        assert grade_categorical("WY", "AK").grade is Grade.INCORRECT
        assert grade_categorical("the answer is AK overall", "AK").grade is Grade.CORRECT

    def test_list_jaccard(self):
        expected = ["a", "b", "c", "d"]
        assert grade_list(["a", "b", "c", "d"], expected).grade is Grade.CORRECT
        assert grade_list(["a", "b"], expected).grade is Grade.PLAUSIBLE
        assert grade_list(["x", "y"], expected).grade is Grade.INCORRECT
        assert grade_list([], expected).grade is Grade.INCORRECT

    def test_summary_coverage(self):
        text = "Incidents in TX and NY involved bird strikes."
        assert grade_summary(text, ["TX", "NY", "bird"]).grade is Grade.CORRECT
        assert (
            grade_summary(text, ["TX", "NY", "CA", "WA", "OR", "AZ"]).grade
            is Grade.PLAUSIBLE
        )
        assert grade_summary(text, ["CA", "WA", "OR"]).grade is Grade.INCORRECT

    def test_grade_answer_dispatch(self, ntsb_corpus, earnings_corpus):
        suite = build_full_suite(ntsb_corpus[0], earnings_corpus[0])
        count_q = next(q for q in suite if q.kind == "count")
        assert grade_answer(count_q, count_q.expected).grade is Grade.CORRECT
        with pytest.raises(ValueError):
            bad = count_q
            object.__setattr__ if False else setattr(bad, "kind", "weird")
            grade_answer(bad, 1)


class TestSuiteHarness:
    def test_luna_suite_runs_and_aggregates(self, indexed_context, ntsb_corpus, earnings_corpus):
        suite = build_full_suite(ntsb_corpus[0], earnings_corpus[0])[:4]
        luna = Luna(indexed_context, planner_model="sim-oracle", policy="quality")
        report = run_luna_suite(luna, suite)
        assert len(report.outcomes) == 4
        assert report.correct + report.plausible + report.incorrect == 4
        assert 0.0 <= report.accuracy <= 1.0
        rendered = report.render()
        assert "correct" in rendered

    def test_failures_graded_incorrect(self, indexed_context, ntsb_corpus, earnings_corpus):
        suite = build_full_suite(ntsb_corpus[0], earnings_corpus[0])[:1]
        suite[0].index = "nonexistent"
        luna = Luna(indexed_context, planner_model="sim-oracle")
        report = run_luna_suite(luna, suite)
        assert report.outcomes[0].grade is Grade.INCORRECT
        assert report.outcomes[0].error

    def test_rag_suite_missing_pipeline(self, ntsb_corpus, earnings_corpus):
        suite = build_full_suite(ntsb_corpus[0], earnings_corpus[0])[:2]
        report = run_rag_suite({}, suite)
        assert all(o.grade is Grade.INCORRECT for o in report.outcomes)
