"""Chaos suite: seeded fault injection against the resilience machinery.

Everything here is deterministic — fault schedules are pure functions of
(seed, call index) — so any failure can be replayed exactly.
"""

from __future__ import annotations

import threading

import pytest

from repro.datagen import generate_ntsb_corpus
from repro.execution import DeadLetter, Executor, Plan, TaskError
from repro.faults import (
    BrownoutWindow,
    FaultDecision,
    FaultInjector,
    FaultSchedule,
    FaultyLLM,
    InjectedFault,
)
from repro.llm import (
    CircuitBreaker,
    CircuitOpenError,
    LLMResponse,
    LLMTimeoutError,
    RateLimitError,
    ReliableLLM,
    SimulatedLLM,
    TransientLLMError,
    Usage,
)
from repro.llm.base import LLMClient
from repro.partitioner import ArynPartitioner
from repro.luna import Luna
from repro.sycamore import SycamoreContext


class EchoBackend(LLMClient):
    """Always succeeds; counts calls."""

    def __init__(self):
        self.calls = 0

    def complete(self, prompt, model="sim-large", max_output_tokens=None, temperature=0.0):
        self.calls += 1
        return LLMResponse(text=f"echo:{prompt}", model=model, usage=Usage(1, 1, 1))


class FailingBackend(LLMClient):
    """Always raises a transient error; counts calls."""

    def __init__(self):
        self.calls = 0

    def complete(self, prompt, model="sim-large", max_output_tokens=None, temperature=0.0):
        self.calls += 1
        raise TransientLLMError("down")


# ----------------------------------------------------------------------
# FaultSchedule: determinism and shape
# ----------------------------------------------------------------------


class TestFaultSchedule:
    def test_same_seed_identical_sequence(self):
        kwargs = dict(
            transient_rate=0.2,
            rate_limit_rate=0.1,
            latency_rate=0.1,
            malformed_rate=0.1,
            timeout_rate=0.05,
        )
        a = FaultSchedule(seed=42, **kwargs)
        b = FaultSchedule(seed=42, **kwargs)
        assert a.decisions(500) == b.decisions(500)

    def test_different_seeds_differ(self):
        a = FaultSchedule(seed=1, transient_rate=0.3)
        b = FaultSchedule(seed=2, transient_rate=0.3)
        assert a.decisions(200) != b.decisions(200)

    def test_zero_rates_are_clean(self):
        schedule = FaultSchedule(seed=0)
        assert all(not d.is_fault for d in schedule.decisions(100))

    def test_brownout_window_overrides_everything(self):
        schedule = FaultSchedule(seed=0, brownouts=(BrownoutWindow(5, 10),))
        decisions = schedule.decisions(15)
        for d in decisions[5:10]:
            assert d.kind == "brownout"
        for d in decisions[:5] + decisions[10:]:
            assert not d.is_fault

    def test_plain_tuple_windows_accepted(self):
        schedule = FaultSchedule(seed=0, brownouts=((2, 4),))
        assert schedule.decision(3).kind == "brownout"

    def test_rates_roughly_honoured(self):
        schedule = FaultSchedule(seed=9, transient_rate=0.5)
        faults = sum(1 for d in schedule.decisions(1000) if d.is_fault)
        assert 400 < faults < 600

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            FaultSchedule(transient_rate=1.5)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            BrownoutWindow(5, 2)


# ----------------------------------------------------------------------
# FaultInjector / FaultyLLM
# ----------------------------------------------------------------------


class TestFaultInjector:
    def test_injector_log_reproducible_across_runs(self):
        logs = []
        for _ in range(2):
            injector = FaultInjector(
                FaultSchedule(seed=7, transient_rate=0.3, malformed_rate=0.2)
            )
            flaky = injector.wrap_llm(EchoBackend())
            for i in range(50):
                try:
                    flaky.complete(f"p{i}")
                except TransientLLMError:
                    pass
            logs.append(list(injector.log))
        assert logs[0] == logs[1]
        assert logs[0]  # something was actually injected

    def test_transient_fault_raised_before_backend(self):
        backend = EchoBackend()
        injector = FaultInjector(FaultSchedule(seed=0, brownouts=((0, 1),)))
        flaky = injector.wrap_llm(backend)
        with pytest.raises(TransientLLMError):
            flaky.complete("p")
        assert backend.calls == 0
        assert injector.injected == {"brownout": 1}

    def test_rate_limit_fault_carries_retry_after(self):
        injector = FaultInjector(FaultSchedule(seed=0, rate_limit_rate=1.0))
        flaky = injector.wrap_llm(EchoBackend())
        with pytest.raises(RateLimitError) as excinfo:
            flaky.complete("p")
        assert excinfo.value.retry_after_s == pytest.approx(0.01)

    def test_timeout_fault_is_transient(self):
        injector = FaultInjector(FaultSchedule(seed=0, timeout_rate=1.0))
        flaky = injector.wrap_llm(EchoBackend())
        with pytest.raises(LLMTimeoutError):
            flaky.complete("p")

    def test_malformed_fault_corrupts_output(self):
        injector = FaultInjector(FaultSchedule(seed=0, malformed_rate=1.0))
        flaky = injector.wrap_llm(EchoBackend())
        response = flaky.complete("a-rather-long-prompt-for-cutting")
        assert response.text != "echo:a-rather-long-prompt-for-cutting"
        assert response.text.startswith("echo:")

    def test_latency_fault_sleeps_and_succeeds(self):
        sleeps = []
        injector = FaultInjector(
            FaultSchedule(seed=0, latency_rate=1.0, latency_spike_s=0.5),
            sleeper=sleeps.append,
        )
        flaky = injector.wrap_llm(EchoBackend())
        response = flaky.complete("p")
        assert response.text == "echo:p"
        assert sleeps == [0.5]
        assert response.latency_s >= 0.5

    def test_reliable_llm_heals_scattered_faults(self):
        injector = FaultInjector(FaultSchedule(seed=3, transient_rate=0.3))
        llm = ReliableLLM(injector.wrap_llm(EchoBackend()), sleeper=lambda s: None)
        for i in range(30):
            assert llm.complete(f"p{i}").text == f"echo:p{i}"
        assert injector.injected.get("transient", 0) > 0

    def test_wrap_fn_injects_task_faults(self):
        injector = FaultInjector(FaultSchedule(seed=0, brownouts=((0, 2),)))
        flaky = injector.wrap_fn(lambda x: x * 2)
        with pytest.raises(InjectedFault):
            flaky(1)
        with pytest.raises(InjectedFault):
            flaky(1)
        assert flaky(3) == 6

    def test_report_mentions_counts(self):
        injector = FaultInjector(FaultSchedule(seed=0, brownouts=((0, 3),)))
        flaky = injector.wrap_fn(lambda: None)
        for _ in range(3):
            with pytest.raises(InjectedFault):
                flaky()
        assert "brownout=3" in injector.report()


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------


class TestCircuitBreaker:
    def test_opens_after_threshold_and_recovers_via_half_open(self):
        clock = {"t": 0.0}
        breaker = CircuitBreaker(
            failure_threshold=3, recovery_time_s=10.0, clock=lambda: clock["t"]
        )
        for _ in range(3):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.times_opened == 1
        # Open: rejects fast.
        assert not breaker.allow()
        assert breaker.rejections == 1
        # After the recovery window: half-open, exactly one probe.
        clock["t"] = 10.0
        assert breaker.allow()
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert not breaker.allow()  # second concurrent probe rejected
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_half_open_failure_reopens(self):
        clock = {"t": 0.0}
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_time_s=5.0, clock=lambda: clock["t"]
        )
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        clock["t"] = 5.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.times_opened == 2
        assert not breaker.allow()

    def test_reliable_llm_fails_fast_when_open(self):
        backend = FailingBackend()
        breaker = CircuitBreaker(failure_threshold=2, recovery_time_s=1000.0)
        llm = ReliableLLM(
            backend, max_retries=1, circuit_breaker=breaker, sleeper=lambda s: None
        )
        # First request: 2 attempts, both fail, breaker trips mid-flight.
        with pytest.raises((TransientLLMError, CircuitOpenError)):
            llm.complete("a")
        calls_after_first = backend.calls
        assert breaker.state == CircuitBreaker.OPEN
        # Subsequent requests are rejected without touching the backend.
        with pytest.raises(CircuitOpenError):
            llm.complete("b")
        assert backend.calls == calls_after_first
        assert breaker.rejections >= 1

    def test_reliable_llm_recovers_through_probe(self):
        clock = {"t": 0.0}
        backend = EchoBackend()
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_time_s=5.0, clock=lambda: clock["t"]
        )
        llm = ReliableLLM(backend, circuit_breaker=breaker, sleeper=lambda s: None)
        breaker.record_failure()  # trip it externally
        with pytest.raises(CircuitOpenError):
            llm.complete("a")
        clock["t"] = 5.0
        assert llm.complete("b").text == "echo:b"
        assert breaker.state == CircuitBreaker.CLOSED


# ----------------------------------------------------------------------
# ReliableLLM hardening: budget, timeout, LRU cache
# ----------------------------------------------------------------------


class TestRetryBudget:
    def test_budget_exhaustion_fails_fast(self):
        backend = FailingBackend()
        llm = ReliableLLM(
            backend, max_retries=5, retry_budget=3, sleeper=lambda s: None
        )
        with pytest.raises(TransientLLMError, match="budget"):
            llm.complete("a")
        # 3 retries spent + the failing attempt that hit the empty budget.
        assert backend.calls == 4
        assert llm.retries_performed == 3
        assert llm.metrics()["budget_exhaustions"] == 1
        # Later requests cannot retry at all.
        with pytest.raises(TransientLLMError, match="budget"):
            llm.complete("b")
        assert backend.calls == 5


class TestRequestTimeout:
    def test_slow_call_times_out_and_is_retried(self):
        clock = {"t": 0.0}

        class SlowThenFast(LLMClient):
            def __init__(self):
                self.calls = 0

            def complete(self, prompt, model="sim-large", max_output_tokens=None, temperature=0.0):
                self.calls += 1
                clock["t"] += 10.0 if self.calls == 1 else 0.01
                return LLMResponse(text="ok", model=model, usage=Usage(1, 1, 1))

        backend = SlowThenFast()
        llm = ReliableLLM(
            backend,
            max_retries=2,
            request_timeout_s=1.0,
            clock=lambda: clock["t"],
            sleeper=lambda s: None,
        )
        assert llm.complete("p").text == "ok"
        assert backend.calls == 2
        assert llm.metrics()["timeouts"] == 1


class TestLruCache:
    def test_eviction_at_capacity(self):
        backend = EchoBackend()
        llm = ReliableLLM(backend, cache_max_entries=2)
        llm.complete("a")
        llm.complete("b")
        llm.complete("c")  # evicts "a"
        assert llm.cache_size() == 2
        assert llm.metrics()["cache_evictions"] == 1
        llm.complete("a")  # miss: re-queries the backend
        assert backend.calls == 4

    def test_lru_recency_updated_on_hit(self):
        backend = EchoBackend()
        llm = ReliableLLM(backend, cache_max_entries=2)
        llm.complete("a")
        llm.complete("b")
        llm.complete("a")  # refresh "a"
        llm.complete("c")  # evicts "b", not "a"
        assert llm.complete("a").cached
        assert backend.calls == 3

    def test_hit_miss_counters(self):
        llm = ReliableLLM(EchoBackend())
        llm.complete("a")
        llm.complete("a")
        llm.complete("b")
        metrics = llm.metrics()
        assert metrics["cache_hits"] == 1
        assert metrics["cache_misses"] == 2


# ----------------------------------------------------------------------
# Executor error policies
# ----------------------------------------------------------------------


def _sometimes_boom(bad):
    def fn(x):
        if x in bad:
            raise ValueError(f"bad record {x}")
        return x * 10

    return fn


class TestExecutorPolicies:
    def test_skip_drops_failing_records(self):
        executor = Executor(on_error="skip")
        plan = Plan.from_items(range(6)).map(_sometimes_boom({2, 4}), name="m")
        assert executor.take_all(plan) == [0, 10, 30, 50]
        stats = executor.last_stats
        assert stats.node("m").skipped == 2
        assert stats.total_skipped() == 2
        assert stats.dead_letters == []

    def test_dead_letter_captures_record_node_cause(self):
        executor = Executor(on_error="dead_letter")
        plan = Plan.from_items(range(4)).map(_sometimes_boom({1}), name="m")
        assert executor.take_all(plan) == [0, 20, 30]
        letters = executor.last_stats.dead_letters
        assert len(letters) == 1
        assert isinstance(letters[0], DeadLetter)
        assert letters[0].node_name == "m"
        assert letters[0].record == 1
        assert isinstance(letters[0].cause, ValueError)
        assert executor.last_stats.node("m").dead_lettered == 1

    def test_fail_policy_aborts_without_retrying(self):
        attempts = []

        def boom(x):
            attempts.append(x)
            raise ValueError("nope")

        executor = Executor(max_task_retries=3, on_error="fail")
        with pytest.raises(TaskError):
            executor.take_all(Plan.from_items([1]).map(boom, name="m"))
        assert len(attempts) == 1  # "fail" means no retries at all
        assert executor.last_stats.node("m").retries == 0

    def test_per_node_policy_overrides_executor_default(self):
        executor = Executor(on_error="retry")
        plan = (
            Plan.from_items(range(4))
            .map(_sometimes_boom({0}), name="tolerant", on_error="skip")
            .map(lambda x: x + 1, name="strict")
        )
        assert executor.take_all(plan) == [11, 21, 31]

    def test_per_node_retries_override(self):
        counts = {"n": 0}

        def flaky(x):
            counts["n"] += 1
            if counts["n"] < 3:
                raise RuntimeError("transient")
            return x

        executor = Executor(max_task_retries=0)
        plan = Plan.from_items([7]).map(flaky, name="m", retries=5)
        assert executor.take_all(plan) == [7]
        assert executor.last_stats.node("m").retries == 2

    def test_retries_not_overcounted_on_terminal_failure(self):
        executor = Executor(max_task_retries=2)  # 3 attempts
        with pytest.raises(TaskError):
            executor.take_all(
                Plan.from_items([1]).map(_sometimes_boom({1}), name="m")
            )
        # 2 actual retries, the terminal failure is not a retry.
        assert executor.last_stats.node("m").retries == 2

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            Executor(on_error="explode")

    def test_parallel_dead_letter_preserves_order(self):
        executor = Executor(parallelism=4, on_error="dead_letter")
        plan = Plan.from_items(range(20)).map(_sometimes_boom({3, 11, 17}), name="m")
        assert executor.take_all(plan) == [
            x * 10 for x in range(20) if x not in {3, 11, 17}
        ]
        assert executor.last_stats.node("m").dead_lettered == 3

    def test_parallel_abort_raises_promptly(self):
        executor = Executor(parallelism=4, on_error="fail")
        with pytest.raises(TaskError):
            executor.take_all(
                Plan.from_items(range(100)).map(_sometimes_boom({5}), name="m")
            )


# ----------------------------------------------------------------------
# Chaos: seeded faults against full pipelines
# ----------------------------------------------------------------------


def _chaos_context(n_docs: int = 8):
    """A context whose reliability layer never sleeps, over a real corpus."""
    backend = SimulatedLLM(seed=0)
    llm = ReliableLLM(backend, max_retries=1, sleeper=lambda s: None)
    # max_task_retries=0 keeps the call arithmetic simple: one executor
    # attempt per record, two backend calls inside ReliableLLM.
    ctx = SycamoreContext(llm=llm, parallelism=1, seed=0, max_task_retries=0)
    backend.tracker = ctx.cost_tracker
    _, raws = generate_ntsb_corpus(n_docs, seed=5)
    (
        ctx.read.raw(raws)
        .partition(ArynPartitioner(seed=0))
        .extract_properties({"state": "string", "weather_related": "bool"}, model="sim-oracle")
        .write.index("ntsb")
    )
    return ctx, llm, backend


class TestPipelineChaos:
    def test_etl_survives_brownout_with_dead_letters(self):
        ctx, llm, backend = _chaos_context(n_docs=6)
        injector = FaultInjector(FaultSchedule(seed=11, brownouts=((0, 8),)))
        llm.backend = injector.wrap_llm(backend)
        docs = ctx.catalog.get("ntsb").all_documents()
        out = (
            ctx.read.documents(docs)
            .summarize(on_error="dead_letter", model="sim-small")
            .take_all()
        )
        stats = ctx.last_stats
        # max_retries=1 → 2 attempts per record; the first 4 records burn
        # the 8-call brownout window and die, the rest summarize fine.
        assert stats.total_dead_lettered() == 4
        assert len(out) == 2
        assert all(letter.node_name == "summarize" for letter in stats.dead_letters)
        assert injector.injected["brownout"] == 8

    def test_skip_policy_reports_in_stats(self):
        ctx, llm, backend = _chaos_context(n_docs=6)
        injector = FaultInjector(FaultSchedule(seed=11, brownouts=((0, 4),)))
        llm.backend = injector.wrap_llm(backend)
        docs = ctx.catalog.get("ntsb").all_documents()
        out = (
            ctx.read.documents(docs)
            .summarize(on_error="skip", model="sim-small")
            .take_all()
        )
        assert ctx.last_stats.total_skipped() == 2
        assert len(out) == 4

    def test_chaos_run_is_reproducible(self):
        outputs = []
        for _ in range(2):
            ctx, llm, backend = _chaos_context(n_docs=6)
            injector = FaultInjector(
                FaultSchedule(seed=23, transient_rate=0.4)
            )
            llm.backend = injector.wrap_llm(backend)
            docs = ctx.catalog.get("ntsb").all_documents()
            out = (
                ctx.read.documents(docs)
                .summarize(on_error="dead_letter", model="sim-small")
                .take_all()
            )
            outputs.append(
                (
                    [d.doc_id for d in out],
                    [letter.record.doc_id for letter in ctx.last_stats.dead_letters],
                    list(injector.log),
                )
            )
        assert outputs[0] == outputs[1]


class TestLunaChaos:
    def test_luna_query_survives_midquery_brownout(self):
        ctx, llm, backend = _chaos_context(n_docs=8)
        luna = Luna(ctx, planner_model="sim-oracle", error_policy="dead_letter")
        # Plan against a healthy backend, then the brownout hits before
        # execution — the paper's "long-running query meets a flaky
        # hosted backend" scenario.
        session = luna.session(
            "How many incidents were caused by wind?", index="ntsb"
        )
        injector = FaultInjector(FaultSchedule(seed=17, brownouts=((0, 8),)))
        llm.backend = injector.wrap_llm(backend)
        result = session.run()  # must not raise
        assert result.partial
        assert result.trace.total_dead_lettered() > 0
        assert isinstance(result.answer, (int, float))
        assert "partial" in result.explain().lower()
        assert any(e.dead_lettered for e in result.trace.entries)

    def test_luna_total_outage_degrades_not_raises(self):
        ctx, llm, backend = _chaos_context(n_docs=6)
        luna = Luna(ctx, planner_model="sim-oracle", error_policy="dead_letter")
        session = luna.session(
            "How many incidents were caused by wind?", index="ntsb"
        )
        injector = FaultInjector(FaultSchedule(seed=3, brownouts=((0, 10_000),)))
        llm.backend = injector.wrap_llm(backend)
        result = session.run()  # every LLM call fails; still no exception
        assert result.partial
        assert result.trace.total_dead_lettered() > 0

    def test_fail_policy_still_raises(self):
        ctx, llm, backend = _chaos_context(n_docs=6)
        luna = Luna(ctx, planner_model="sim-oracle", error_policy="fail")
        session = luna.session(
            "How many incidents were caused by wind?", index="ntsb"
        )
        injector = FaultInjector(FaultSchedule(seed=3, brownouts=((0, 10_000),)))
        llm.backend = injector.wrap_llm(backend)
        with pytest.raises(Exception):
            session.run()

    def test_clean_run_is_not_partial(self):
        ctx, llm, backend = _chaos_context(n_docs=6)
        luna = Luna(ctx, planner_model="sim-oracle", error_policy="dead_letter")
        result = luna.query("How many incidents were caused by wind?", index="ntsb")
        assert not result.partial
        assert result.trace.total_dead_lettered() == 0
        assert "partial" not in result.explain().lower()
