"""Tests for the Sycamore DocSet API (core, structural, analytic, LLM, IO)."""

import pytest

from repro.docmodel import Document, Element
from repro.indexes import DocStore, GraphStore
from repro.partitioner import ArynPartitioner
from repro.sycamore import SycamoreContext


def docs_with(values):
    return [Document(text=f"doc {v}", properties={"n": v}) for v in values]


@pytest.fixture()
def ctx():
    return SycamoreContext(parallelism=1, seed=0)


class TestCoreTransforms:
    def test_map(self, ctx):
        def bump(doc):
            out = doc.copy()
            out.properties["n"] += 1
            return out

        result = ctx.read.documents(docs_with([1, 2])).map(bump).take_all()
        assert [d.properties["n"] for d in result] == [2, 3]

    def test_filter(self, ctx):
        ds = ctx.read.documents(docs_with(range(10)))
        assert ds.filter(lambda d: d.properties["n"] % 2 == 0).count() == 5

    def test_flat_map(self, ctx):
        ds = ctx.read.documents(docs_with([1]))
        out = ds.flat_map(lambda d: [d.derive(), d.derive()]).take_all()
        assert len(out) == 2
        assert all(o.parent_id is not None for o in out)

    def test_take_and_first(self, ctx):
        ds = ctx.read.documents(docs_with(range(10)))
        assert len(ds.take(3)) == 3
        assert ds.first().properties["n"] == 0
        empty = ctx.read.documents([])
        assert empty.first() is None

    def test_limit(self, ctx):
        ds = ctx.read.documents(docs_with(range(10)))
        assert ds.limit(4).count() == 4
        with pytest.raises(ValueError):
            ds.limit(-1)

    def test_lazy_until_terminal(self, ctx):
        calls = []
        ds = ctx.read.documents(docs_with([1])).map(lambda d: calls.append(1) or d)
        assert calls == []
        ds.count()
        assert calls == [1]

    def test_explain_shows_pipeline(self, ctx):
        ds = ctx.read.documents([]).filter(lambda d: True, name="keep")
        assert "filter[keep]" in ds.explain()


class TestAnalyticTransforms:
    def test_filter_by_property_ops(self, ctx):
        ds = ctx.read.documents(docs_with(range(10)))
        assert ds.filter_by_property("n", "eq", 3).count() == 1
        assert ds.filter_by_property("n", "ne", 3).count() == 9
        assert ds.filter_by_property("n", "lt", 3).count() == 3
        assert ds.filter_by_property("n", "ge", 8).count() == 2

    def test_filter_by_property_contains(self, ctx):
        docs = [Document(properties={"name": "Acme Cloud Inc."})]
        ds = ctx.read.documents(docs)
        assert ds.filter_by_property("name", "contains", "cloud").count() == 1

    def test_filter_missing_never_matches(self, ctx):
        docs = [Document(properties={}), Document(properties={"n": 1})]
        ds = ctx.read.documents(docs)
        assert ds.filter_by_property("n", "ge", 0).count() == 1

    def test_filter_type_mismatch_tolerated(self, ctx):
        docs = [Document(properties={"n": "not a number"})]
        assert ctx.read.documents(docs).filter_by_property("n", "lt", 5).count() == 0

    def test_unknown_operator(self, ctx):
        with pytest.raises(ValueError):
            ctx.read.documents([]).filter_by_property("n", "like", 1)

    def test_sort_missing_last(self, ctx):
        docs = docs_with([3, 1]) + [Document(properties={})]
        ordered = ctx.read.documents(docs).sort("n").take_all()
        assert [d.properties.get("n") for d in ordered] == [1, 3, None]

    def test_sort_descending(self, ctx):
        ordered = ctx.read.documents(docs_with([1, 3, 2])).sort("n", descending=True).take_all()
        assert [d.properties["n"] for d in ordered] == [3, 2, 1]

    def test_top_k(self, ctx):
        docs = [Document(properties={"state": s}) for s in ["AK", "TX", "AK", "CA", "AK", "TX"]]
        ds = ctx.read.documents(docs)
        assert ds.top_k("state", k=2) == [("AK", 3), ("TX", 2)]
        assert ds.top_k("state", k=1, descending=False) == [("CA", 1)]

    def test_aggregate_functions(self, ctx):
        ds = ctx.read.documents(docs_with([1, 2, 3, 4]))
        assert ds.aggregate("sum", "n") == 10
        assert ds.aggregate("avg", "n") == 2.5
        assert ds.aggregate("min", "n") == 1
        assert ds.aggregate("max", "n") == 4
        assert ds.aggregate("median", "n") == 2.5
        assert ds.aggregate("count", "n") == 4

    def test_aggregate_skips_missing_and_nonnumeric(self, ctx):
        docs = docs_with([2, 4]) + [Document(properties={"n": "x"}), Document()]
        ds = ctx.read.documents(docs)
        assert ds.aggregate("avg", "n") == 3.0
        assert ds.aggregate("count", "n") == 2

    def test_aggregate_empty_returns_none(self, ctx):
        assert ctx.read.documents([]).aggregate("sum", "n") is None
        assert ctx.read.documents([]).aggregate("count", "n") == 0

    def test_aggregate_group_by(self, ctx):
        docs = [
            Document(properties={"g": "a", "v": 1}),
            Document(properties={"g": "a", "v": 3}),
            Document(properties={"g": "b", "v": 10}),
        ]
        result = ctx.read.documents(docs).aggregate("avg", "v", group_by="g")
        assert result == {"a": 2.0, "b": 10.0}

    def test_unknown_aggregate(self, ctx):
        with pytest.raises(ValueError):
            ctx.read.documents([]).aggregate("mode", "n")

    def test_reduce_by_key(self, ctx):
        docs = [
            Document(properties={"state": "AK", "fatal": 1}),
            Document(properties={"state": "AK", "fatal": 2}),
            Document(properties={"state": "TX", "fatal": 0}),
        ]
        result = (
            ctx.read.documents(docs)
            .reduce_by_key("state", lambda group: sum(d.properties["fatal"] for d in group))
            .take_all()
        )
        assert {(d.properties["key"], d.properties["value"]) for d in result} == {
            ("AK", 3),
            ("TX", 0),
        }

    def test_join_inner_and_left(self, ctx):
        left = [
            Document(properties={"company": "Acme", "growth": 10}),
            Document(properties={"company": "Zeta", "growth": 5}),
        ]
        right = [Document(properties={"company": "Acme", "sector": "AI"})]
        ds_left = ctx.read.documents(left)
        ds_right = ctx.read.documents(right)
        inner = ds_left.join(ds_right, "company", "company").take_all()
        assert len(inner) == 1
        assert inner[0].properties["right.sector"] == "AI"
        left_join = ds_left.join(ds_right, "company", "company", how="left").take_all()
        assert len(left_join) == 2

    def test_dotted_property_path(self, ctx):
        docs = [Document(properties={"meta": {"year": 2023}})]
        assert ctx.read.documents(docs).filter_by_property("meta.year", "eq", 2023).count() == 1


class TestStructuralTransforms:
    def test_partition_transform(self, ctx, ntsb_corpus):
        _, raws = ntsb_corpus
        ds = ctx.read.raw(raws[:2]).partition(ArynPartitioner(seed=0))
        docs = ds.take_all()
        assert all(d.binary is None for d in docs)
        assert all(len(d.elements) > 3 for d in docs)

    def test_explode_inherits_properties(self, ctx):
        doc = Document.from_elements(
            [Element(text="chunk one", page=0), Element(text="chunk two", page=1)],
            properties={"source": "s1"},
        )
        chunks = ctx.read.documents([doc]).explode().take_all()
        assert len(chunks) == 2
        assert all(c.parent_id == doc.doc_id for c in chunks)
        assert all(c.properties["source"] == "s1" for c in chunks)
        assert [c.properties["element_index"] for c in chunks] == [0, 1]
        assert chunks[1].text == "chunk two"

    def test_explode_records_lineage(self, ctx):
        doc = Document.from_elements([Element(text="c")])
        chunks = ctx.read.documents([doc]).explode().take_all()
        assert ctx.lineage.parents_of(chunks[0].doc_id) == [doc.doc_id]

    def test_merge_elements(self, ctx):
        doc = Document.from_elements(
            [Element(text="a", page=0), Element(text="b", page=0), Element(text="c", page=1)]
        )
        merged = (
            ctx.read.documents([doc])
            .merge_elements(lambda prev, cur: prev.page == cur.page)
            .take_all()[0]
        )
        assert [e.text for e in merged.elements] == ["a\nb", "c"]


class TestLLMTransforms:
    def test_extract_properties(self, ctx):
        doc = Document.from_text(
            "Location: Fairbanks, AK\nDate: June 2, 2022\n"
            "The flight encountered severe icing conditions."
        )
        out = (
            ctx.read.documents([doc])
            .extract_properties(
                {"state": "string", "incident_year": "int", "weather_related": "bool"},
                model="sim-oracle",
            )
            .take_all()[0]
        )
        assert out.properties["state"] == "AK"
        assert out.properties["incident_year"] == 2022
        assert out.properties["weather_related"] is True
        # original document untouched (transforms are pure)
        assert "state" not in doc.properties

    def test_llm_filter(self, ctx):
        docs = [
            Document.from_text("a gusty crosswind pushed the airplane"),
            Document.from_text("a fatigue crack caused engine failure"),
        ]
        kept = ctx.read.documents(docs).llm_filter("caused by wind", model="sim-oracle").take_all()
        assert len(kept) == 1
        assert "crosswind" in kept[0].text

    def test_llm_query_with_template_string_and_placeholders(self, ctx):
        doc = Document.from_text("some body", properties={"topic": "winds"})
        out = (
            ctx.read.documents([doc])
            .llm_query("Describe {topic} briefly.", output_property="answer", model="sim-oracle")
            .take_all()[0]
        )
        assert isinstance(out.properties["answer"], str)

    def test_summarize(self, ctx):
        doc = Document.from_text(
            "The airplane encountered icing. It landed safely. The pilot was unhurt."
        )
        out = ctx.read.documents([doc]).summarize(model="sim-oracle", max_sentences=1).take_all()[0]
        assert out.properties["summary"]

    def test_classify(self, ctx):
        doc = Document.from_text("a strong gust during landing")
        out = (
            ctx.read.documents([doc])
            .classify(["environmental", "mechanical"], "cause_category", model="sim-oracle")
            .take_all()[0]
        )
        assert out.properties["cause_category"] == "environmental"

    def test_embed(self, ctx):
        doc = Document.from_text("hello world")
        out = ctx.read.documents([doc]).embed().take_all()[0]
        vector = out.properties["embedding"]
        assert isinstance(vector, list)
        assert len(vector) == ctx.embedder.dimensions

    def test_summarize_all(self, ctx):
        docs = [Document.from_text("The wind was strong."), Document.from_text("Ice formed fast.")]
        text = ctx.read.documents(docs).summarize_all(model="sim-oracle")
        assert text.startswith("Synthesis of 2 documents")

    def test_llm_costs_tracked(self, ctx):
        doc = Document.from_text("windy day near the runway")
        ctx.read.documents([doc]).llm_filter("wind", model="sim-large").count()
        assert ctx.cost_tracker.summary().calls >= 1


class TestMaterializeAndIO:
    def test_materialize_memory(self, ctx):
        calls = []
        ds = (
            ctx.read.documents(docs_with([1, 2]))
            .map(lambda d: calls.append(1) or d)
            .materialize()
        )
        ds.count()
        ds.count()
        assert len(calls) == 2

    def test_materialize_disk(self, ctx, tmp_path):
        ds = ctx.read.documents(docs_with([1])).materialize(tmp_path / "cache.jsonl")
        ds.count()
        assert (tmp_path / "cache.jsonl").exists()
        assert ds.count() == 1

    def test_write_and_read_index(self, ctx):
        docs = [
            Document.from_text("gusty crosswind landing", properties={"year": 2023}),
            Document.from_text("engine failure cruise", properties={"year": 2022}),
        ]
        n = ctx.read.documents(docs).write.index("test_idx")
        assert n == 2
        assert ctx.catalog.get("test_idx").schema.get("year") == "int"
        scanned = ctx.read.index("test_idx").take_all()
        assert len(scanned) == 2
        retrieved = ctx.read.index("test_idx", query="crosswind", k=1).take_all()
        assert retrieved[0].doc_id == docs[0].doc_id

    def test_write_docstore(self, ctx):
        store = DocStore()
        n = ctx.read.documents(docs_with([1, 2, 3])).write.docstore(store)
        assert n == 3 and len(store) == 3

    def test_write_jsonl_roundtrip(self, ctx, tmp_path):
        path = tmp_path / "out.jsonl"
        ctx.read.documents(docs_with([1, 2])).write.jsonl(path)
        reread = ctx.read.jsonl(path).take_all()
        assert [d.properties["n"] for d in reread] == [1, 2]

    def test_write_graph(self, ctx):
        docs = [
            Document(properties={"company": "Acme", "sector": "AI", "ceo": "Kai"}),
            Document(properties={"company": "Zeta", "sector": None}),
        ]
        store = GraphStore()
        written = ctx.read.documents(docs).write.graph(
            store, subject_property="company",
            edges=[("in_sector", "sector"), ("led_by", "ceo")],
        )
        assert written == 2  # Zeta contributes nothing (missing values)
        assert store.neighbors("Acme", "in_sector") == ["AI"]
        assert store.provenance("Acme", "led_by", "Kai") == [docs[0].doc_id]


class TestParallelContext:
    def test_parallel_matches_serial(self, ntsb_corpus):
        _, raws = ntsb_corpus
        serial = SycamoreContext(parallelism=1, seed=0)
        parallel = SycamoreContext(parallelism=4, seed=0)
        a = serial.read.raw(raws[:4]).partition(ArynPartitioner(seed=0)).take_all()
        b = parallel.read.raw(raws[:4]).partition(ArynPartitioner(seed=0)).take_all()
        assert [d.doc_id for d in a] == [d.doc_id for d in b]
        assert [len(d.elements) for d in a] == [len(d.elements) for d in b]
