"""Tests for the service-manual corpus and its QA workload (§2b)."""

import pytest

from repro.datagen import generate_manuals_corpus
from repro.docmodel import TableElement
from repro.partitioner import (
    ArynPartitioner,
    DetectorConfig,
    NaiveTextPartitioner,
    TableModelConfig,
)
from repro.sycamore import SycamoreContext

_PERFECT = dict(
    detector=DetectorConfig(
        name="perfect", detect_prob=1.0, jitter_frac=0.0, label_confusion=0.0,
        false_positives_per_page=0.0, confidence_noise=0.0,
    ),
    table_model=TableModelConfig(name="perfect-t", cell_miss_prob=0.0, row_merge_prob=0.0),
)


@pytest.fixture(scope="module")
def manuals_corpus():
    return generate_manuals_corpus(12, seed=7)


class TestManualGeneration:
    def test_deterministic(self):
        a, docs_a = generate_manuals_corpus(4, seed=1)
        b, docs_b = generate_manuals_corpus(4, seed=1)
        assert [m.to_dict() for m in a] == [m.to_dict() for m in b]
        assert [d.to_bytes() for d in docs_a] == [d.to_bytes() for d in docs_b]

    def test_ground_truth_attached(self, manuals_corpus):
        manuals, docs = manuals_corpus
        for manual, doc in zip(manuals, docs):
            assert doc.ground_truth == manual.to_dict()

    def test_parts_rendered_in_tables(self, manuals_corpus):
        manuals, docs = manuals_corpus
        manual, raw = manuals[0], docs[0]
        tables = [b for p in raw.pages for b in p.boxes if b.label == "Table"]
        flat = "\n".join(t.table.to_text() for t in tables if t.table)
        for part in manual.parts:
            assert part.part_number in flat
            assert part.name in flat

    def test_scanned_appendix_only_via_ocr(self, manuals_corpus):
        manuals, docs = manuals_corpus
        pairs = [(m, d) for m, d in zip(manuals, docs) if m.has_scanned_appendix]
        assert pairs, "corpus should include scanned appendices"
        manual, raw = pairs[0]
        assert "Legacy field note" not in raw.all_text()

    def test_part_by_name(self, manuals_corpus):
        manuals, _ = manuals_corpus
        manual = manuals[0]
        part = manual.parts[3]
        assert manual.part_by_name(part.name) is part
        assert manual.part_by_name("flux capacitor") is None


class TestManualQA:
    def _torque(self, document, part_name):
        for element in document.elements:
            if isinstance(element, TableElement):
                values = element.table.lookup("Name", part_name, "Torque (Nm)")
                if values:
                    return float(values[0])
        return None

    def test_torque_lookup_exact_with_clean_models(self, manuals_corpus):
        manuals, docs = manuals_corpus
        partitioner = ArynPartitioner(seed=0, **_PERFECT)
        for manual, raw in zip(manuals[:6], docs[:6]):
            doc = partitioner.partition(raw)
            for part in manual.parts[:4]:
                assert self._torque(doc, part.name) == part.torque_nm

    def test_torque_lookup_robust_under_default_noise(self, manuals_corpus):
        manuals, docs = manuals_corpus
        partitioner = ArynPartitioner(seed=0)
        correct = total = 0
        for manual, raw in zip(manuals, docs):
            doc = partitioner.partition(raw)
            for part in manual.parts[:3]:
                total += 1
                correct += self._torque(doc, part.name) == part.torque_nm
        assert correct / total >= 0.8

    def test_naive_partitioner_cannot_answer(self, manuals_corpus):
        manuals, docs = manuals_corpus
        naive = NaiveTextPartitioner()
        doc = naive.partition(docs[0])
        assert self._torque(doc, manuals[0].parts[0].name) is None

    def test_ocr_reads_appendix(self, manuals_corpus):
        manuals, docs = manuals_corpus
        pairs = [(m, d) for m, d in zip(manuals, docs) if m.has_scanned_appendix]
        manual, raw = pairs[0]
        doc = ArynPartitioner(seed=0, **_PERFECT).partition(raw)
        scanned_text = "\n".join(e.text for e in doc.images if e.text)
        # OCR noise allowed, but the note must be recognisably recovered.
        assert "egacy" in scanned_text or "field note" in scanned_text.lower()

    def test_fleet_analytics(self, manuals_corpus):
        manuals, docs = manuals_corpus
        ctx = SycamoreContext(parallelism=4)
        (
            ctx.read.raw(docs)
            .partition(ArynPartitioner(seed=0))
            .extract_properties(
                {"model_number": "string", "revision_year": "int"}, model="sim-oracle"
            )
            .write.index("manuals")
        )
        years = ctx.read.index("manuals").aggregate(
            "count", "revision_year", group_by="revision_year"
        )
        recovered = int(sum(v for k, v in years.items() if k))
        assert recovered >= len(manuals) - 2  # extraction is near-complete
