"""Tests for repro.observability: tracing, metrics, cost accounting.

Covers the invariants the subsystem documents: span parent/child
integrity across executor thread pools and scheduler batches, registry
snapshot consistency under concurrent writers, and cost-rollup
arithmetic checked against a hand-computed plan.
"""

import contextvars
import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.execution.executor import Executor
from repro.execution.plan import Plan
from repro.llm.client import ReliableLLM
from repro.llm.cost import CostTracker
from repro.llm.simulated import SimulatedLLM
from repro.observability import (
    CostAccount,
    MetricsRegistry,
    Tracer,
    get_registry,
    render_trace_tree,
    trace_to_dict,
    write_trace_json,
)
from repro.runtime.scheduler import Priority, RequestScheduler


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------


class TestTracer:
    def test_nested_spans_share_a_trace(self):
        tracer = Tracer()
        with tracer.span("query", kind="query") as root:
            with tracer.span("op", kind="operator") as child:
                with tracer.span("llm", kind="llm_request") as leaf:
                    pass
        assert child.parent_id == root.span_id
        assert leaf.parent_id == child.span_id
        assert root.trace_id == child.trace_id == leaf.trace_id
        assert root.parent_id is None

    def test_ids_are_stable_and_sequential(self):
        tracer = Tracer()
        first = tracer.start_span("a", parent=None)
        second = tracer.start_span("b", parent=None)
        assert first.span_id == "s000001"
        assert second.span_id == "s000002"
        assert first.trace_id == "t0001"
        assert second.trace_id == "t0002"

    def test_parent_none_forces_new_trace(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            root = tracer.start_span("batch", kind="batch", parent=None)
        assert root.trace_id != outer.trace_id
        assert root.parent_id is None

    def test_finish_is_idempotent(self):
        tracer = Tracer()
        span = tracer.start_span("x")
        tracer.finish(span, status="error", error="boom")
        end = span.end_s
        tracer.finish(span)  # second finish must not overwrite
        assert span.end_s == end
        assert span.status == "error"
        assert span.error == "boom"

    def test_exception_marks_span_error(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("fails"):
                raise ValueError("bad input")
        (span,) = tracer.spans()
        assert span.status == "error"
        assert "bad input" in span.error

    def test_propagation_across_thread_pool(self):
        """Workers see the submitter's span when given a copied context."""
        tracer = Tracer()

        def task(i):
            with tracer.span(f"child-{i}", kind="llm_request"):
                pass
            return tracer.current().span_id  # the ambient parent

        with tracer.span("parent", kind="operator") as parent:
            with ThreadPoolExecutor(max_workers=4) as pool:
                futures = [
                    pool.submit(contextvars.copy_context().run, task, i)
                    for i in range(20)
                ]
                ambient_ids = [f.result() for f in futures]
        assert set(ambient_ids) == {parent.span_id}
        children = [s for s in tracer.spans() if s.kind == "llm_request"]
        assert len(children) == 20
        assert {c.parent_id for c in children} == {parent.span_id}
        assert {c.trace_id for c in children} == {parent.trace_id}

    def test_max_spans_bound(self):
        tracer = Tracer(max_spans=3)
        for _ in range(5):
            tracer.finish(tracer.start_span("s", parent=None))
        assert len(tracer.spans()) == 3
        assert tracer.dropped_spans == 2

    def test_trace_spans_and_last_trace(self):
        tracer = Tracer()
        with tracer.span("q1", kind="query"):
            tracer.finish(tracer.start_span("inner"))
        with tracer.span("q2", kind="query") as q2:
            pass
        assert tracer.last_trace(kind="query") == q2.trace_id
        assert [s.name for s in tracer.trace_spans(q2.trace_id)] == ["q2"]


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)

    def test_histogram_percentiles_hand_computed(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        for value in range(1, 101):  # 1..100
            hist.observe(value)
        snap = hist.value()
        assert snap["count"] == 100
        assert snap["sum"] == 5050.0
        assert snap["min"] == 1.0
        assert snap["max"] == 100.0
        assert snap["mean"] == 50.5
        assert snap["p50"] == 50.0  # nearest-rank
        assert snap["p90"] == 90.0
        assert snap["p99"] == 99.0

    def test_snapshot_consistent_under_concurrent_writers(self):
        registry = MetricsRegistry()
        counter = registry.counter("writes")
        hist = registry.histogram("obs")
        stop = threading.Event()
        snapshots = []

        def writer():
            while not stop.is_set():
                counter.inc()
                hist.observe(1.0)

        def reader():
            while not stop.is_set():
                snapshots.append(registry.snapshot())

        threads = [threading.Thread(target=writer) for _ in range(4)]
        threads.append(threading.Thread(target=reader))
        for t in threads:
            t.start()
        import time

        time.sleep(0.15)
        stop.set()
        for t in threads:
            t.join()
        final = registry.snapshot()
        # Exact counts survive concurrency, and the two instruments agree.
        assert final["writes"] == final["obs"]["count"]
        # Snapshots taken mid-write are monotone non-decreasing.
        values = [snap["writes"] for snap in snapshots if "writes" in snap]
        assert values == sorted(values)

    def test_concurrent_increments_are_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("n")

        def bump():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value() == 8000

    def test_reset_zeroes_but_keeps_registrations(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(5)
        registry.reset()
        assert registry.names() == ["a"]
        assert registry.counter("a").value() == 0.0

    def test_global_registry_is_shared(self):
        assert get_registry() is get_registry()


# ----------------------------------------------------------------------
# Cost accounting
# ----------------------------------------------------------------------


def _llm_span(tracer, name="llm:sim-small", **attrs):
    span = tracer.start_span(name, kind="llm_request", **attrs)
    tracer.finish(span)
    return span


class TestCostAccount:
    def test_rollup_matches_hand_computed_plan(self):
        """Two operators, three requests — totals computed by hand."""
        tracer = Tracer()
        with tracer.span("query:test", kind="query"):
            with tracer.span("op[0]:LlmFilter", kind="operator"):
                _llm_span(
                    tracer, input_tokens=100, output_tokens=10, cost_usd=0.002
                )
                _llm_span(
                    tracer,
                    input_tokens=50,
                    output_tokens=5,
                    cost_usd=0.0,
                    saved_usd=0.001,
                    cached=True,
                )
            with tracer.span("op[1]:Summarize", kind="operator"):
                _llm_span(
                    tracer,
                    input_tokens=200,
                    output_tokens=40,
                    cost_usd=0.004,
                    retries=2,
                )
        account = CostAccount.from_spans(tracer.spans())
        assert account.llm_calls == 3
        assert account.input_tokens == 350
        assert account.output_tokens == 55
        assert account.total_tokens == 405
        assert account.cost_usd == pytest.approx(0.006)
        assert account.saved_usd == pytest.approx(0.001)
        assert account.cached_calls == 1
        assert account.retries == 2
        ops = account.operators
        assert set(ops) == {"op[0]:LlmFilter", "op[1]:Summarize"}
        assert ops["op[0]:LlmFilter"].llm_calls == 2
        assert ops["op[0]:LlmFilter"].cost_usd == pytest.approx(0.002)
        assert ops["op[1]:Summarize"].retries == 2

    def test_same_operation_twice_rolls_up_separately(self):
        tracer = Tracer()
        with tracer.span("query:q", kind="query"):
            with tracer.span("op[0]:LlmFilter", kind="operator"):
                _llm_span(tracer, input_tokens=10, output_tokens=1, cost_usd=0.001)
            with tracer.span("op[2]:LlmFilter", kind="operator"):
                _llm_span(tracer, input_tokens=20, output_tokens=2, cost_usd=0.002)
        account = CostAccount.from_spans(tracer.spans())
        assert set(account.operators) == {"op[0]:LlmFilter", "op[2]:LlmFilter"}

    def test_orphan_requests_attribute_to_query(self):
        tracer = Tracer()
        with tracer.span("query:q", kind="query"):
            _llm_span(tracer, input_tokens=10, output_tokens=1, cost_usd=0.001)
        account = CostAccount.from_spans(tracer.spans())
        assert set(account.operators) == {"(query)"}

    def test_requests_under_transform_attribute_to_transform(self):
        tracer = Tracer()
        with tracer.span("execute:p", kind="plan"):
            with tracer.span("transform:extract", kind="transform"):
                _llm_span(tracer, input_tokens=10, output_tokens=1, cost_usd=0.001)
        account = CostAccount.from_spans(tracer.spans())
        assert set(account.operators) == {"transform:extract"}

    def test_export_and_result_totals_agree(self):
        tracer = Tracer()
        with tracer.span("query:q", kind="query"):
            with tracer.span("op[0]:X", kind="operator"):
                _llm_span(tracer, input_tokens=7, output_tokens=3, cost_usd=0.005)
        spans = tracer.spans()
        account = CostAccount.from_spans(spans)
        doc = trace_to_dict(spans, account)
        assert doc["cost"] == account.as_dict()
        assert doc["cost"]["totals"]["cost_usd"] == round(account.cost_usd, 6)

    def test_json_export_roundtrip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("query:q", kind="query"):
            _llm_span(tracer, input_tokens=1, output_tokens=1, cost_usd=0.0)
        path = write_trace_json(tmp_path / "trace.json", tracer.spans())
        doc = json.loads(path.read_text())
        assert doc["version"] == 1
        assert len(doc["spans"]) == 2
        assert doc["trace_id"] == tracer.spans()[0].trace_id

    def test_render_tree_truncates(self):
        tracer = Tracer()
        with tracer.span("root", kind="query"):
            for _ in range(10):
                _llm_span(tracer, input_tokens=1, output_tokens=1)
        text = render_trace_tree(tracer.spans(), max_spans=4)
        assert "more spans truncated" in text
        assert len(text.splitlines()) == 5  # 4 spans + truncation line


# ----------------------------------------------------------------------
# ReliableLLM cost accounting (the cache-hit bugfix)
# ----------------------------------------------------------------------


class TestReliableLLMAccounting:
    def test_cache_hits_counted_at_zero_dollars(self):
        tracker = CostTracker()
        tracer = Tracer()
        registry = MetricsRegistry()
        backend = SimulatedLLM(seed=0, tracker=tracker)
        llm = ReliableLLM(backend, tracer=tracer, registry=registry)

        first = llm.complete("the same prompt", model="sim-small")
        second = llm.complete("the same prompt", model="sim-small")
        assert not first.cached
        assert second.cached

        summary = tracker.summary()
        # Before the fix the replayed call vanished from the ledger;
        # now it is recorded — tokens counted, dollars zero.
        assert summary.calls == 2
        assert summary.cached_calls == 1
        solo_cost = tracker.records()[0].cost_usd
        assert summary.cost_usd == pytest.approx(solo_cost)

        spans = [s for s in tracer.spans() if s.kind == "llm_request"]
        assert len(spans) == 2
        cached_span = spans[1]
        assert cached_span.attributes["cached"] is True
        assert cached_span.attributes["cost_usd"] == 0.0
        assert cached_span.attributes["saved_usd"] > 0.0
        assert cached_span.attributes["input_tokens"] > 0
        assert registry.counter("llm.cache_hits").value() == 1.0
        assert registry.counter("llm.saved_usd").value() > 0.0


# ----------------------------------------------------------------------
# Scheduler tracing
# ----------------------------------------------------------------------


class TestSchedulerTracing:
    def test_request_spans_link_to_batch_and_parent_to_submitter(self):
        tracer = Tracer()
        registry = MetricsRegistry()
        backend = SimulatedLLM(seed=1)
        llm = ReliableLLM(backend, tracer=tracer, registry=registry)
        scheduler = RequestScheduler(
            client=llm, max_wait_ms=5.0, tracer=tracer, registry=registry
        )
        try:
            with tracer.span("query:s", kind="query") as query:
                futures = [
                    scheduler.submit(
                        f"prompt {i}", model="sim-small", priority=Priority.BULK
                    )
                    for i in range(4)
                ]
                for f in futures:
                    f.result()
        finally:
            scheduler.close()

        request_spans = [
            s
            for s in tracer.trace_spans(query.trace_id)
            if s.kind == "llm_request"
        ]
        assert len(request_spans) == 4
        batch_spans = [s for s in tracer.spans() if s.kind == "batch"]
        assert batch_spans, "dispatch must create batch spans"
        batch_ids = {b.span_id for b in batch_spans}
        for span in request_spans:
            # Parented to the submitting query, linked (not parented) to
            # the batch, costed in tokens and dollars.
            assert span.parent_id == query.span_id
            assert span.attributes["batch_span"] in batch_ids
            assert span.attributes["input_tokens"] > 0
            assert "cost_usd" in span.attributes
            assert span.finished
        for batch in batch_spans:
            assert batch.trace_id != query.trace_id  # own trace by design
            assert batch.parent_id is None

    def test_dedup_waiter_gets_zero_dollar_span(self):
        tracer = Tracer()
        registry = MetricsRegistry()
        backend = SimulatedLLM(seed=2)
        llm = ReliableLLM(backend, tracer=tracer, registry=registry)
        scheduler = RequestScheduler(
            client=llm, max_wait_ms=20.0, tracer=tracer, registry=registry
        )
        try:
            with tracer.span("query:d", kind="query") as query:
                a = scheduler.submit("same prompt", model="sim-small")
                b = scheduler.submit("same prompt", model="sim-small")
                assert a is b  # one upstream call
                a.result()
        finally:
            scheduler.close()
        spans = [
            s
            for s in tracer.trace_spans(query.trace_id)
            if s.kind == "llm_request"
        ]
        assert len(spans) == 2  # both waiters visible in the trace
        dedup_spans = [s for s in spans if s.attributes.get("dedup")]
        assert len(dedup_spans) == 1
        waiter = dedup_spans[0]
        assert waiter.attributes["dedup"] == "inflight"
        assert waiter.attributes["cost_usd"] == 0.0
        assert waiter.attributes["saved_usd"] > 0.0
        assert waiter.attributes["input_tokens"] > 0
        account = CostAccount.from_spans(tracer.trace_spans(query.trace_id))
        assert account.dedup_hits == 1
        assert account.llm_calls == 2

    def test_cancelled_requests_finish_spans_with_error(self):
        tracer = Tracer()
        registry = MetricsRegistry()
        scheduler = RequestScheduler(
            client=None,
            max_wait_ms=10_000.0,
            max_batch_size=64,
            tracer=tracer,
            registry=registry,
        )
        # No client bound: queued work is failed on drainless close.
        future = scheduler.submit("never dispatched", model="sim-small")
        scheduler.close(drain=False)
        assert future.exception() is not None
        spans = [s for s in tracer.spans() if s.kind == "llm_request"]
        assert spans and all(s.finished for s in spans)
        assert spans[0].status == "error"


# ----------------------------------------------------------------------
# Executor tracing
# ----------------------------------------------------------------------


class TestExecutorTracing:
    def test_parallel_tasks_parent_to_transform_span(self):
        tracer = Tracer()
        registry = MetricsRegistry()

        def fake_llm_call(x):
            span = tracer.start_span("llm:sim", kind="llm_request")
            span.set_attributes(input_tokens=1, output_tokens=1, cost_usd=0.001)
            tracer.finish(span)
            return x * 2

        plan = Plan.source(lambda: iter(range(12)), name="src").map(
            fake_llm_call, name="call_llm"
        )
        executor = Executor(parallelism=4, tracer=tracer, registry=registry)
        out = executor.take_all(plan)
        assert out == [x * 2 for x in range(12)]

        transform = next(
            s for s in tracer.spans() if s.name == "transform:call_llm"
        )
        llm_spans = [s for s in tracer.spans() if s.kind == "llm_request"]
        assert len(llm_spans) == 12
        # Worker threads inherited the transform span through the copied
        # context — every request is its child, in the same trace.
        assert {s.parent_id for s in llm_spans} == {transform.span_id}
        assert transform.attributes["records_in"] == 12
        assert transform.attributes["records_out"] == 12

        cost = executor.last_stats.cost
        assert cost is not None
        assert cost.llm_calls == 12
        assert cost.cost_usd == pytest.approx(0.012)
        assert set(cost.operators) == {"transform:call_llm"}

    def test_serial_matches_parallel_attribution(self):
        def make(tracer):
            def fn(x):
                tracer.finish(
                    tracer.start_span(
                        "llm:s",
                        kind="llm_request",
                        input_tokens=2,
                        output_tokens=1,
                        cost_usd=0.001,
                    )
                )
                return x

            return fn

        accounts = []
        for parallelism in (1, 4):
            tracer = Tracer()
            registry = MetricsRegistry()
            plan = Plan.source(lambda: iter(range(8)), name="src").map(
                make(tracer), name="op"
            )
            executor = Executor(
                parallelism=parallelism, tracer=tracer, registry=registry
            )
            executor.take_all(plan)
            accounts.append(executor.last_stats.cost)
        serial, parallel = accounts
        serial_totals = serial.as_dict()["totals"]
        parallel_totals = parallel.as_dict()["totals"]
        # Wall clock legitimately differs; everything counted must not.
        serial_totals.pop("wall_clock_s")
        parallel_totals.pop("wall_clock_s")
        assert serial_totals == parallel_totals

    def test_untraced_executor_still_works(self):
        plan = Plan.source(lambda: iter(range(3)), name="src").map(
            lambda x: x + 1, name="inc"
        )
        executor = Executor(parallelism=2, registry=MetricsRegistry())
        assert executor.take_all(plan) == [1, 2, 3]
        assert executor.last_stats.cost is None


# ----------------------------------------------------------------------
# End to end: Luna query trace
# ----------------------------------------------------------------------


class TestEndToEndTrace:
    @pytest.fixture(scope="class")
    def traced_query(self):
        from repro.datagen import generate_ntsb_corpus
        from repro.luna.luna import Luna
        from repro.partitioner.partitioner import ArynPartitioner
        from repro.sycamore.context import SycamoreContext

        scheduler = RequestScheduler(max_wait_ms=2.0)
        ctx = SycamoreContext(
            parallelism=3,
            seed=5,
            scheduler=scheduler,
            registry=MetricsRegistry(),
        )
        _, raws = generate_ntsb_corpus(6, seed=5)
        (
            ctx.read.raw(raws)
            .partition(ArynPartitioner(seed=5))
            .extract_properties({"state": "string"}, model="sim-oracle")
            .write.index("ntsb")
        )
        luna = Luna(ctx, planner_model="sim-oracle")
        result = luna.query("How many incidents were there?", "ntsb")
        yield ctx, result
        scheduler.close()

    def test_result_carries_trace_id_and_cost(self, traced_query):
        ctx, result = traced_query
        assert result.trace.trace_id
        assert isinstance(result.trace.cost, CostAccount)
        assert result.trace.cost.trace_id == result.trace.trace_id

    def test_every_request_span_is_costed_and_batch_linked(self, traced_query):
        ctx, result = traced_query
        spans = ctx.tracer.trace_spans(result.trace.trace_id)
        assert spans[0].kind == "query"
        request_spans = [s for s in spans if s.kind == "llm_request"]
        assert request_spans, "a Luna query must issue LLM requests"
        for span in request_spans:
            assert "input_tokens" in span.attributes
            assert "cost_usd" in span.attributes
            assert span.attributes.get("batch_span") or span.attributes.get(
                "dedup"
            )

    def test_tree_renders_whole_hierarchy(self, traced_query):
        ctx, result = traced_query
        tree = render_trace_tree(ctx.tracer.trace_spans(result.trace.trace_id))
        assert "query:luna" in tree
        assert "op[" in tree
        assert "llm:" in tree

    def test_json_export_totals_match_result(self, traced_query, tmp_path):
        ctx, result = traced_query
        spans = ctx.tracer.trace_spans(result.trace.trace_id)
        path = write_trace_json(tmp_path / "luna.json", spans, result.trace.cost)
        doc = json.loads(path.read_text())
        assert doc["cost"]["totals"] == result.trace.cost.as_dict()["totals"]
        assert doc["cost"]["totals"]["llm_calls"] == len(
            [s for s in doc["spans"] if s["kind"] == "llm_request"]
        )
