"""Tests for the NL -> plan semantic parser (the simulated planner model)."""

import json

import pytest

from repro.llm import PLAN_QUERY, ReliableLLM, SimulatedLLM

NTSB_SCHEMA = json.dumps(
    {
        "index": "ntsb",
        "fields": {
            "state": "string",
            "incident_year": "int",
            "weather_related": "bool",
            "injuries_fatal": "int",
            "aircraft": "string",
        },
    }
)
EARNINGS_SCHEMA = json.dumps(
    {
        "index": "earnings",
        "fields": {
            "company": "string",
            "sector": "string",
            "revenue_musd": "float",
            "revenue_growth_pct": "float",
            "ceo_changed": "bool",
        },
    }
)
OPERATORS = (
    "QueryIndex, BasicFilter, LlmFilter, LlmExtract, Count, Aggregate, "
    "TopK, Sort, Limit, Project, Join, Math, Summarize, Identity"
)


@pytest.fixture()
def planner():
    llm = ReliableLLM(SimulatedLLM(seed=0))

    def plan(question, schema=NTSB_SCHEMA):
        prompt = PLAN_QUERY.render(question=question, schema=schema, operators=OPERATORS)
        return llm.complete_json(prompt, model="sim-oracle")

    return plan


def ops(plan):
    return [node["operation"] for node in plan]


class TestPercentagePlans:
    def test_paper_example_shape(self, planner):
        plan = planner(
            "What percent of environmentally caused incidents were due to wind?"
        )
        assert ops(plan) == [
            "QueryIndex",
            "LlmFilter",
            "Count",
            "LlmFilter",
            "Count",
            "Math",
        ]
        # numerator filter chains off the denominator's filtered set
        assert plan[3]["inputs"] == [1]
        assert "#4" in plan[5]["expression"] and "#2" in plan[5]["expression"]

    def test_percent_of_all_records(self, planner):
        plan = planner("What percent of incidents were caused by mechanical failure?")
        # denominator is the whole index: no filter before the first Count
        count_inputs = [n["inputs"] for n in plan if n["operation"] == "Count"]
        assert count_inputs[0] == [0]


class TestCountPlans:
    def test_count_with_year_and_semantic_filter(self, planner):
        plan = planner("How many incidents in 2022 were caused by icing?")
        assert ops(plan)[0] == "QueryIndex"
        assert "BasicFilter" in ops(plan)
        assert ops(plan)[-1] == "Count"
        basic = next(n for n in plan if n["operation"] == "BasicFilter")
        assert basic["field"] == "incident_year"
        assert basic["value"] == 2022

    def test_count_with_state_filter(self, planner):
        plan = planner("How many incidents in Texas were caused by engine failure?")
        basic = next(n for n in plan if n["operation"] == "BasicFilter")
        assert basic["field"] == "state"
        assert basic["value"] == "TX"
        assert any(n["operation"] == "LlmFilter" for n in plan)

    def test_plain_count_uses_semantic_filter(self, planner):
        plan = planner("How many incidents were caused by icing?")
        assert ops(plan) == ["QueryIndex", "LlmFilter", "Count"]
        assert "icing" in plan[1]["condition"]


class TestGroupPlans:
    def test_top_state(self, planner):
        plan = planner("Which state had the most incidents caused by wind?")
        top = plan[-1]
        assert top["operation"] == "TopK"
        assert top["field"] == "state"
        assert top["descending"] is True

    def test_sector_negative_sentiment(self, planner):
        plan = planner(
            "Which sector had the most companies with negative sentiment?",
            schema=EARNINGS_SCHEMA,
        )
        assert plan[-1]["operation"] == "TopK"
        assert plan[-1]["field"] == "sector"


class TestAggregatePlans:
    def test_average_growth_for_ceo_change(self, planner):
        plan = planner(
            "What was the average revenue growth of companies whose CEO recently changed?",
            schema=EARNINGS_SCHEMA,
        )
        agg = plan[-1]
        assert agg["operation"] == "Aggregate"
        assert agg["func"] == "avg"
        assert agg["field"] == "revenue_growth_pct"

    def test_total_revenue_resolves_to_revenue_field(self, planner):
        plan = planner(
            "What was the total revenue of companies in the Healthcare sector?",
            schema=EARNINGS_SCHEMA,
        )
        agg = plan[-1]
        assert agg["func"] == "sum"
        assert agg["field"] == "revenue_musd"
        basic = next(n for n in plan if n["operation"] == "BasicFilter")
        assert basic["value"] == "Healthcare"

    def test_sum_fatal_injuries(self, planner):
        plan = planner("What was the total fatal injuries across incidents in 2023?")
        agg = plan[-1]
        assert agg["field"] == "injuries_fatal"
        years = [n for n in plan if n["operation"] == "BasicFilter"]
        assert years and years[0]["value"] == 2023


class TestOtherPlans:
    def test_summarize(self, planner):
        plan = planner("Summarize the incidents involving bird strikes.")
        assert plan[-1]["operation"] == "Summarize"
        assert any(n["operation"] == "LlmFilter" for n in plan)

    def test_list_projection(self, planner):
        plan = planner(
            "List the companies whose CEO recently changed.", schema=EARNINGS_SCHEMA
        )
        assert plan[-1]["operation"] == "Project"
        assert plan[-1]["fields"] == ["company"]

    def test_fallback_rag_for_point_question(self, planner):
        plan = planner("What happened to the seaplane at Lake Hood?")
        assert ops(plan) == ["QueryIndex", "Limit", "Summarize"]
        assert plan[0]["query"]  # retrieval, not a scan

    def test_sector_filter_keeps_remaining_condition(self, planner):
        plan = planner(
            "How many companies in the Cloud sector lowered guidance?",
            schema=EARNINGS_SCHEMA,
        )
        basic = next(n for n in plan if n["operation"] == "BasicFilter")
        assert basic["value"] == "Cloud"
        semantic = next(n for n in plan if n["operation"] == "LlmFilter")
        assert "lowered guidance" in semantic["condition"]


class TestOperatorRestriction:
    def test_planner_respects_missing_operators(self):
        llm = ReliableLLM(SimulatedLLM(seed=0))
        prompt = PLAN_QUERY.render(
            question="How many incidents were caused by icing?",
            schema=NTSB_SCHEMA,
            operators="QueryIndex, Count",  # no filters available
        )
        plan = llm.complete_json(prompt, model="sim-oracle")
        assert [n["operation"] for n in plan] == ["QueryIndex", "Count"]


class TestExtendedPatterns:
    def test_top_n_with_number_word(self, planner):
        plan = planner("Which three states had the most incidents caused by wind?")
        top = plan[-1]
        assert top["operation"] == "TopK"
        assert top["k"] == 3

    def test_top_n_with_digit(self, planner):
        plan = planner("Which 2 states had the most incidents?")
        assert plan[-1]["k"] == 2

    def test_aggregate_group_by(self, planner):
        plan = planner(
            "What was the average revenue growth of companies per sector?",
            schema=EARNINGS_SCHEMA,
        )
        agg = plan[-1]
        assert agg["operation"] == "Aggregate"
        assert agg["func"] == "avg"
        assert agg["field"] == "revenue_growth_pct"
        assert agg["group_by"] == "sector"

    def test_aggregate_broken_down_by(self, planner):
        plan = planner(
            "What was the total revenue of companies broken down by sector?",
            schema=EARNINGS_SCHEMA,
        )
        assert plan[-1]["group_by"] == "sector"

    def test_year_range_filters(self, planner):
        plan = planner("How many incidents happened between 2021 and 2022?")
        basics = [n for n in plan if n["operation"] == "BasicFilter"]
        assert [(b["op"], b["value"]) for b in basics] == [("ge", 2021), ("le", 2022)]
        assert not any(n["operation"] == "LlmFilter" for n in plan)

    def test_year_range_composes_with_state(self, planner):
        plan = planner("How many incidents in Alaska happened between 2021 and 2022?")
        basics = [(n["field"], n["op"]) for n in plan if n["operation"] == "BasicFilter"]
        assert ("state", "eq") in basics
        assert ("incident_year", "ge") in basics
        assert ("incident_year", "le") in basics

    def test_from_2021_to_2022_phrasing(self, planner):
        plan = planner("How many incidents occurred from 2021 to 2022?")
        basics = [n for n in plan if n["operation"] == "BasicFilter"]
        assert len(basics) == 2
