"""Additional property-based tests: table merging, OCR, knowledge
primitives, the data lake, and the flatten transform."""

import random
import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen.render import PageLayouter
from repro.docmodel import Document, RawDocument, Table, merge_tables
from repro.indexes import DataLake
from repro.llm import knowledge
from repro.partitioner import ACCURATE_OCR, OcrConfig, SimulatedOCR
from repro.sycamore.docset import _flatten

cell_text = st.text(alphabet="abc123 ", max_size=6)


@st.composite
def simple_tables(draw, min_rows=1, max_rows=4, n_cols=None):
    cols = n_cols if n_cols is not None else draw(st.integers(1, 3))
    rows = [
        [draw(cell_text) for _ in range(cols)]
        for _ in range(draw(st.integers(min_rows, max_rows)))
    ]
    return Table.from_rows(rows, header=draw(st.booleans()))


class TestTableMergeProperties:
    @given(simple_tables(n_cols=2), simple_tables(n_cols=2))
    def test_merge_preserves_all_rows(self, first, second):
        merged = merge_tables(first, second)
        # Either all rows survive, or exactly one repeated-header row was
        # dropped (when the second fragment begins with the same header).
        total = first.num_rows + second.num_rows
        assert merged.num_rows in (total, total - 1)
        merged.validate()

    @given(simple_tables())
    def test_merge_with_empty_is_identity_on_rows(self, table):
        merged = merge_tables(table, Table())
        assert merged.to_grid() == table.to_grid()

    @given(simple_tables(n_cols=3))
    def test_merge_keeps_first_header(self, table):
        continuation = Table.from_rows([["x", "y", "z"]], header=False)
        merged = merge_tables(table, continuation)
        assert merged.header_rows() == table.header_rows()


class TestOcrProperties:
    @given(st.text(alphabet=string.ascii_letters + " ", max_size=120), st.integers(0, 5))
    def test_deterministic_per_seed(self, text, seed):
        a = SimulatedOCR(ACCURATE_OCR, seed=seed).corrupt(text, random.Random(seed))
        b = SimulatedOCR(ACCURATE_OCR, seed=seed).corrupt(text, random.Random(seed))
        assert a == b

    @given(st.text(alphabet=string.ascii_letters, max_size=120))
    def test_perfect_ocr_is_identity(self, text):
        perfect = OcrConfig(name="perfect", char_error_rate=0.0, drop_rate=0.0)
        assert SimulatedOCR(perfect).corrupt(text, random.Random(0)) == text

    @given(st.text(alphabet=string.ascii_letters + " .,", max_size=120))
    def test_output_never_longer(self, text):
        corrupted = SimulatedOCR(ACCURATE_OCR).corrupt(text, random.Random(1))
        assert len(corrupted) <= len(text)


class TestKnowledgeProperties:
    @given(st.text(max_size=60))
    def test_condition_holds_total(self, text):
        # No input text may crash the semantic primitive.
        assert knowledge.condition_holds("caused by wind", text) in (True, False)

    @given(st.text(max_size=60))
    def test_negation_inverts_on_concept_conditions(self, text):
        positive = knowledge.condition_holds("caused by wind", text)
        negative = knowledge.condition_holds("not caused by wind", text)
        assert positive != negative

    @given(st.sampled_from(sorted(knowledge.CONCEPT_KEYWORDS)))
    def test_every_concept_keyword_triggers_it(self, concept):
        keyword = sorted(knowledge.CONCEPT_KEYWORDS[concept])[0]
        assert knowledge.text_matches_concept(f"report mentions {keyword} here", concept)


class TestDataLakeProperties:
    @given(doc_ids=st.lists(st.uuids().map(lambda u: u.hex), min_size=1, max_size=6, unique=True))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_many(self, tmp_path_factory, doc_ids):
        lake = DataLake(tmp_path_factory.mktemp("lake"))
        docs = []
        for doc_id in doc_ids:
            layout = PageLayouter()
            layout.add_title(f"Doc {doc_id[:6]}")
            docs.append(layout.build(doc_id))
        lake.write_many(docs)
        assert lake.doc_ids() == sorted(doc_ids)
        for doc in docs:
            assert lake.read(doc.doc_id).to_bytes() == doc.to_bytes()


json_leaf = st.none() | st.booleans() | st.integers(-5, 5) | st.text(max_size=6)
nested_props = st.recursive(
    json_leaf,
    lambda children: st.dictionaries(
        st.text(alphabet="abcde", min_size=1, max_size=4), children, max_size=3
    ),
    max_leaves=10,
)


class TestFlattenProperties:
    @given(st.dictionaries(st.text(alphabet="xyz", min_size=1, max_size=4), nested_props, max_size=4))
    def test_flatten_preserves_leaves(self, properties):
        flat = _flatten(properties, ".")
        # No nested non-empty dict values remain.
        assert not any(isinstance(v, dict) and v for v in flat.values())

        def count_leaves(value):
            if isinstance(value, dict) and value:
                return sum(count_leaves(v) for v in value.values())
            return 1

        assert len(flat) == sum(count_leaves(v) for v in properties.values())
