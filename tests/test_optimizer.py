"""Tests for the cost-based optimizer (`repro.optimizer`).

Covers the stats store (persistence, learned-over-prior preference),
the cost model's equations, the three rewrite families (reorder,
scan-filter folding, cascade annotation), cascade escalation threshold
edges, the plancheck cascade codes, serving-cache fingerprints and the
epoch roll, and the `plan-explain` CLI verb. Byte-identity of optimized
answers is asserted end to end on the deterministic corpora.
"""

from __future__ import annotations

import dataclasses
import json
from types import SimpleNamespace

import pytest

from repro import Luna
from repro.analysis import check_plan
from repro.cli import main as cli_main
from repro.docmodel import Document
from repro.llm.base import DEFAULT_MODELS, get_model_spec
from repro.luna.executor import ExecutionTrace, TraceEntry
from repro.luna.operators import (
    CASCADE_ELIGIBLE_OPERATIONS,
    SHARDABLE_OPERATIONS,
    LogicalPlan,
    PlanNode,
)
from repro.luna.optimizer import (
    CASCADE_POLICY,
    POLICIES,
    QUALITY_POLICY,
    LunaOptimizer,
)
from repro.optimizer import (
    DEFAULT_SOURCE_ROWS,
    SELECTIVITY_PRIORS,
    TOKEN_PROFILES,
    CostBasedOptimizer,
    CostModel,
    StatsStore,
    node_model_key,
    node_signature,
)
from repro.serving.cache import plan_cache_key, result_cache_key
from repro.sycamore.llm_transforms import (
    make_cascade_extract_fn,
    make_cascade_filter_fn,
)

SCHEMA = {
    "state": "string",
    "incident_year": "int",
    "weather_related": "bool",
    "injuries_fatal": "int",
}


def plan(*nodes):
    return LogicalPlan(nodes=list(nodes))


def node(operation, inputs=(), **params):
    return PlanNode(operation=operation, inputs=list(inputs), params=params)


def trace_for(plan_, rows):
    """Synthetic ExecutionTrace: rows is [(records_in, records_out, cost,
    calls, seconds)] aligned with the plan's nodes."""
    trace = ExecutionTrace()
    for index, (n, (rin, rout, cost, calls, secs)) in enumerate(
        zip(plan_.nodes, rows)
    ):
        trace.entries.append(
            TraceEntry(
                index=index,
                operation=n.operation,
                description=n.description,
                records_in=rin,
                records_out=rout,
                duration_s=secs,
                llm_cost_usd=cost,
                llm_calls=calls,
                result_preview="",
            )
        )
    return trace


# ----------------------------------------------------------------------
# Signatures and keys
# ----------------------------------------------------------------------


class TestSignatures:
    def test_llmfilter_signature_normalizes_condition(self):
        a = node("LlmFilter", [0], condition="  About   WIND damage ")
        b = node("LlmFilter", [0], condition="about wind damage")
        assert node_signature(a) == node_signature(b) == "about wind damage"

    def test_basicfilter_signature_is_field_and_op(self):
        n = node("BasicFilter", [0], field="state", op="eq", value="AK")
        assert node_signature(n) == "state:eq"

    def test_cascade_folds_into_model_key(self):
        plain = node("LlmFilter", [0], condition="c", model="sim-large")
        cascaded = node(
            "LlmFilter",
            [0],
            condition="c",
            model="sim-large",
            cascade={
                "draft_model": "sim-small",
                "draft_votes": 2,
                "confidence_threshold": 0.75,
            },
        )
        assert node_model_key(plain) == "sim-large"
        assert node_model_key(cascaded) == "sim-large+cascade:sim-smallx2@0.75"
        assert node_model_key(plain) != node_model_key(cascaded)


# ----------------------------------------------------------------------
# StatsStore
# ----------------------------------------------------------------------


class TestStatsStore:
    def make_observed_store(self):
        store = StatsStore()
        p = plan(
            node("QueryIndex", index="ntsb"),
            node("LlmFilter", [0], condition="about wind", model="sim-large"),
            node("Count", [1]),
        )
        store.observe(p, trace_for(p, [
            (0, 100, 0.0, 0, 0.01),
            (100, 25, 0.406, 100, 2.0),
            (25, 1, 0.0, 0, 0.0),
        ]))
        return store, p

    def test_observe_learns_selectivity_and_cost(self):
        store, _ = self.make_observed_store()
        sel = store.selectivity("LlmFilter", "about wind", "sim-large")
        assert sel == pytest.approx(0.25)
        cost = store.cost_per_row("LlmFilter", "about wind", "sim-large")
        assert cost == pytest.approx(0.00406)

    def test_observe_skips_replayed_and_errored(self):
        store = StatsStore()
        p = plan(
            node("QueryIndex", index="ntsb"),
            node("LlmFilter", [0], condition="c", model="sim-large"),
        )
        t = trace_for(p, [(0, 10, 0.0, 0, 0.0), (10, 5, 0.1, 10, 1.0)])
        t.entries[1].replayed = True
        assert store.observe(p, t) == 1  # only the scan folded
        t2 = trace_for(p, [(0, 10, 0.0, 0, 0.0), (10, 5, 0.1, 10, 1.0)])
        t2.entries[1].error = "boom"
        store2 = StatsStore()
        assert store2.observe(p, t2) == 1
        assert store2.selectivity("LlmFilter", "c", "sim-large") is None

    def test_scalar_tail_operators_are_not_observed(self):
        store, _ = self.make_observed_store()
        assert store.lookup("Count") is None

    def test_persistence_roundtrip(self, tmp_path):
        store, _ = self.make_observed_store()
        path = tmp_path / "stats.json"
        store.save(path)
        reloaded = StatsStore(path=path)
        assert reloaded.as_dict() == store.as_dict()
        assert reloaded.fingerprint() == store.fingerprint()
        assert reloaded.selectivity(
            "LlmFilter", "about wind", "sim-large"
        ) == pytest.approx(0.25)

    def test_save_without_path_raises(self):
        with pytest.raises(ValueError):
            StatsStore().save()

    def test_snapshot_is_isolated_from_later_observations(self):
        store, p = self.make_observed_store()
        snap = store.snapshot()
        before = snap.fingerprint()
        store.observe(p, trace_for(p, [
            (0, 100, 0.0, 0, 0.01),
            (100, 99, 0.406, 100, 2.0),   # wildly different selectivity
            (99, 1, 0.0, 0, 0.0),
        ]))
        assert snap.fingerprint() == before
        assert store.fingerprint() != before

    def test_fingerprint_quantization_absorbs_small_drift(self):
        store, p = self.make_observed_store()
        before = store.fingerprint()
        # One more observation at the same ratios lands in the same
        # quantization buckets.
        store.observe(p, trace_for(p, [
            (0, 100, 0.0, 0, 0.01),
            (100, 25, 0.406, 100, 2.0),
            (25, 1, 0.0, 0, 0.0),
        ]))
        assert store.fingerprint() == before

    def test_signature_fallback_to_operation_aggregate(self):
        store, _ = self.make_observed_store()
        # A fresh condition has no exact entry but inherits the
        # operation-level aggregate selectivity.
        assert store.selectivity(
            "LlmFilter", "never seen before", "sim-large"
        ) == pytest.approx(0.25)


# ----------------------------------------------------------------------
# Cost model
# ----------------------------------------------------------------------


class TestCostModel:
    def test_priors_match_token_profiles(self):
        model = CostModel()
        n = node("LlmFilter", [0], condition="c", model="sim-large")
        spec = get_model_spec("sim-large")
        in_tok, out_tok = TOKEN_PROFILES["LlmFilter"]
        assert model.cost_per_row(n) == pytest.approx(
            spec.cost_usd(in_tok, out_tok)
        )
        assert model.selectivity(n) == SELECTIVITY_PRIORS["LlmFilter"]

    def test_structured_operators_are_free(self):
        model = CostModel()
        assert model.cost_per_row(
            node("BasicFilter", [0], field="f", op="eq", value=1)
        ) == 0.0

    def test_learned_beats_prior(self):
        store = StatsStore()
        p = plan(
            node("QueryIndex", index="ntsb"),
            node("LlmFilter", [0], condition="c", model="sim-large"),
        )
        store.observe(p, trace_for(p, [(0, 50, 0.0, 0, 0.0),
                                       (50, 45, 0.5, 50, 1.0)]))
        model = CostModel(store)
        n = node("LlmFilter", [0], condition="c", model="sim-large")
        assert model.selectivity(n) == pytest.approx(0.9)
        assert model.cost_per_row(n) == pytest.approx(0.01)

    def test_cascade_threshold_edges_in_costing(self):
        base = dict(condition="c", model="sim-large")
        plain = node("LlmFilter", [0], **base)
        never = node("LlmFilter", [0], **base, cascade={
            "draft_model": "sim-small", "draft_votes": 2,
            "confidence_threshold": 0.0,
        })
        always = node("LlmFilter", [0], **base, cascade={
            "draft_model": "sim-small", "draft_votes": 2,
            "confidence_threshold": 1.5,
        })
        model = CostModel()
        draft = get_model_spec("sim-small")
        verify = get_model_spec("sim-large")
        in_tok, out_tok = TOKEN_PROFILES["LlmFilter"]
        drafts = 2 * draft.cost_usd(in_tok, out_tok)
        # tau=0: only draft votes are paid, no verify term.
        assert model.cost_per_row(never) == pytest.approx(drafts)
        # tau>1: drafts plus the full verify cost on every row.
        assert model.cost_per_row(always) == pytest.approx(
            drafts + verify.cost_usd(in_tok, out_tok)
        )
        # Drafting on the cheap model undercuts the plain filter.
        assert model.cost_per_row(never) < model.cost_per_row(plain)

    def test_rank_orders_cheap_selective_first(self):
        model = CostModel()
        basic = node("BasicFilter", [0], field="f", op="eq", value=1)
        llm = node("LlmFilter", [0], condition="c", model="sim-large")
        assert model.rank(basic) == 0.0
        assert model.rank(llm) > model.rank(basic)

    def test_estimate_plan_propagates_cardinality(self):
        model = CostModel()
        p = plan(
            node("QueryIndex", index="ntsb"),
            node("LlmFilter", [0], condition="c", model="sim-large"),
            node("Count", [1]),
        )
        est = model.estimate_plan(p, source_rows=100.0)
        assert est.nodes[0].rows_out == 100.0
        assert est.nodes[1].rows_in == 100.0
        assert est.nodes[1].rows_out == pytest.approx(
            100.0 * SELECTIVITY_PRIORS["LlmFilter"]
        )
        assert est.nodes[2].rows_out == 1.0
        assert est.cost_usd == pytest.approx(100.0 * model.cost_per_row(p.nodes[1]))

    def test_retrieval_scan_caps_at_k(self):
        model = CostModel()
        p = plan(node("QueryIndex", index="ntsb", query="wind", k=7))
        est = model.estimate_plan(p, source_rows=500.0)
        assert est.nodes[0].rows_out == 7.0


# ----------------------------------------------------------------------
# Rewrites
# ----------------------------------------------------------------------


class TestRewrites:
    def test_scan_filter_folds_into_queryindex(self):
        opt = CostBasedOptimizer("balanced")
        p = plan(
            node("QueryIndex", index="ntsb"),
            node("BasicFilter", [0], field="state", op="eq", value="AK"),
            node("Count", [1]),
        )
        optimized, log, report = opt.optimize_with_report(p, schema=SCHEMA)
        scan = optimized.nodes[0]
        assert scan.params["filter_field"] == "state"
        assert scan.params["filter_op"] == "eq"
        assert scan.params["filter_value"] == "AK"
        assert optimized.nodes[1].operation == "Identity"
        assert len(optimized.nodes) == 3  # swap-in-place: no node removed
        assert any(r.startswith("scan-filter:") for r in log)
        assert report.estimated_after.cost_usd <= report.estimated_before.cost_usd

    def test_fold_skips_non_schema_fields_and_retrieval_scans(self):
        opt = CostBasedOptimizer("balanced")
        p = plan(
            node("QueryIndex", index="ntsb", query="wind"),
            node("BasicFilter", [0], field="state", op="eq", value="AK"),
        )
        optimized, _, _ = opt.optimize_with_report(p, schema=SCHEMA)
        assert "filter_field" not in optimized.nodes[0].params
        p2 = plan(
            node("QueryIndex", index="ntsb"),
            node("BasicFilter", [0], field="nonexistent", op="eq", value=1),
        )
        optimized2, _, _ = opt.optimize_with_report(p2, schema=SCHEMA)
        assert "filter_field" not in optimized2.nodes[0].params

    def test_reorder_runs_learned_selective_filter_first(self):
        store = StatsStore()
        observed = plan(
            node("QueryIndex", index="ntsb"),
            node("LlmFilter", [0], condition="barely filters", model="sim-large"),
            node("LlmFilter", [1], condition="keeps almost none", model="sim-large"),
        )
        store.observe(observed, trace_for(observed, [
            (0, 100, 0.0, 0, 0.0),
            (100, 95, 0.406, 100, 1.0),   # selectivity 0.95 - pass-through
            (95, 2, 0.386, 95, 1.0),      # selectivity ~0.02 - sharp
        ]))
        opt = CostBasedOptimizer("quality", stats=store)
        p = plan(
            node("QueryIndex", index="ntsb"),
            node("LlmFilter", [0], condition="barely filters"),
            node("LlmFilter", [1], condition="keeps almost none"),
            node("Count", [2]),
        )
        optimized, log, _ = opt.optimize_with_report(p, schema=SCHEMA)
        conditions = [
            n.params.get("condition")
            for n in optimized.nodes
            if n.operation == "LlmFilter"
        ]
        assert conditions == ["keeps almost none", "barely filters"]
        assert any(r.startswith("reorder:") for r in log)
        # Swap-in-place: wiring is still a linear chain.
        assert [n.inputs for n in optimized.nodes] == [[], [0], [1], [2]]

    def test_priors_only_reorder_is_a_noop(self):
        opt = CostBasedOptimizer("quality")
        p = plan(
            node("QueryIndex", index="ntsb"),
            node("LlmFilter", [0], condition="first"),
            node("LlmFilter", [1], condition="second"),
            node("Count", [2]),
        )
        optimized, log, _ = opt.optimize_with_report(p, schema=SCHEMA)
        conditions = [
            n.params.get("condition")
            for n in optimized.nodes
            if n.operation == "LlmFilter"
        ]
        assert conditions == ["first", "second"]
        assert not any(r.startswith("reorder:") for r in log)

    def test_cascade_policy_annotates_eligible_nodes(self):
        opt = CostBasedOptimizer("cascade")
        p = plan(
            node("QueryIndex", index="ntsb"),
            node("LlmFilter", [0], condition="about wind"),
            node("Count", [1]),
        )
        optimized, log, _ = opt.optimize_with_report(p, schema=SCHEMA)
        cascade = optimized.nodes[1].params.get("cascade")
        assert cascade == {
            "draft_model": CASCADE_POLICY.cascade_draft_model,
            "draft_votes": CASCADE_POLICY.cascade_votes,
            "confidence_threshold": CASCADE_POLICY.cascade_confidence_threshold,
        }
        assert optimized.nodes[1].params["model"] != cascade["draft_model"]
        assert optimized.nodes[2].params.get("cascade") is None
        assert any(r.startswith("cascade:") for r in log)

    def test_non_cascade_policies_never_annotate(self):
        for name in ("quality", "balanced", "cost"):
            opt = CostBasedOptimizer(name)
            p = plan(
                node("QueryIndex", index="ntsb"),
                node("LlmFilter", [0], condition="c"),
                node("Count", [1]),
            )
            optimized, _, _ = opt.optimize_with_report(p, schema=SCHEMA)
            assert all("cascade" not in n.params for n in optimized.nodes)

    def test_cascade_onto_same_model_is_skipped(self):
        policy = CASCADE_POLICY.__class__(
            name="selfdraft",
            filter_model=CASCADE_POLICY.cascade_draft_model,
            extract_model=CASCADE_POLICY.cascade_draft_model,
            summarize_model=CASCADE_POLICY.cascade_draft_model,
            enable_fusion=False,
            cascade=True,
        )
        opt = CostBasedOptimizer(policy)
        p = plan(
            node("QueryIndex", index="ntsb"),
            node("LlmFilter", [0], condition="c"),
            node("Count", [1]),
        )
        optimized, _, _ = opt.optimize_with_report(p, schema=SCHEMA)
        assert "cascade" not in optimized.nodes[1].params


# ----------------------------------------------------------------------
# Cascade execution semantics (scripted backend)
# ----------------------------------------------------------------------


class _ScriptedLLM:
    """Answers by rule; records (model, prompt) per call."""

    def __init__(self, rule, json_rule=None):
        self.rule = rule
        self.json_rule = json_rule
        self.calls = []

    def complete(self, prompt, model=None, **_):
        self.calls.append((model, prompt))
        return SimpleNamespace(text=self.rule(model, prompt))

    def complete_json(self, prompt, model=None, **_):
        self.calls.append((model, prompt))
        return self.json_rule(model, prompt)

    def by_model(self, name):
        return [c for c in self.calls if c[0] == name]


def scripted_context(llm):
    return SimpleNamespace(llm_for=lambda priority: llm, default_model="sim-large")


class TestCascadeSemantics:
    DOC = Document(text="wind damaged the aircraft")

    def split_vote_llm(self, verify_answer="yes"):
        """Draft votes disagree (vote 0 yes, re-check no); verify decides."""

        def rule(model, prompt):
            if model == "sim-large":
                return verify_answer
            return "no" if "recheck" in prompt else "yes"

        return _ScriptedLLM(rule)

    def test_split_votes_escalate_and_verify_decides(self):
        llm = self.split_vote_llm(verify_answer="yes")
        predicate = make_cascade_filter_fn(
            scripted_context(llm), "about wind", "sim-large", "sim-small",
            draft_votes=2, confidence_threshold=0.75,
        )
        assert predicate(self.DOC) is True
        assert len(llm.by_model("sim-small")) == 2
        assert len(llm.by_model("sim-large")) == 1
        # The escalated prompt is the base prompt - no recheck section.
        assert "recheck" not in llm.by_model("sim-large")[0][1]

        llm_no = self.split_vote_llm(verify_answer="no")
        predicate_no = make_cascade_filter_fn(
            scripted_context(llm_no), "about wind", "sim-large", "sim-small",
            draft_votes=2, confidence_threshold=0.75,
        )
        assert predicate_no(self.DOC) is False

    def test_threshold_zero_never_escalates(self):
        llm = self.split_vote_llm()
        predicate = make_cascade_filter_fn(
            scripted_context(llm), "about wind", "sim-large", "sim-small",
            draft_votes=2, confidence_threshold=0.0,
        )
        # Split 1-1 vote, tie broken by the first ballot (yes).
        assert predicate(self.DOC) is True
        assert len(llm.by_model("sim-large")) == 0

    def test_threshold_above_one_always_escalates(self):
        llm = _ScriptedLLM(lambda model, prompt: "yes")  # unanimous drafts
        predicate = make_cascade_filter_fn(
            scripted_context(llm), "about wind", "sim-large", "sim-small",
            draft_votes=2, confidence_threshold=1.5,
        )
        assert predicate(self.DOC) is True
        assert len(llm.by_model("sim-large")) == 1

    def test_unanimous_drafts_answer_without_verify(self):
        llm = _ScriptedLLM(lambda model, prompt: "no")
        predicate = make_cascade_filter_fn(
            scripted_context(llm), "about wind", "sim-large", "sim-small",
            draft_votes=3, confidence_threshold=0.75,
        )
        assert predicate(self.DOC) is False
        assert len(llm.by_model("sim-small")) == 3
        assert len(llm.by_model("sim-large")) == 0

    def test_extract_escalates_on_null_field(self):
        def json_rule(model, prompt):
            if model == "sim-small":
                return {"state": "AK", "incident_year": None}
            return {"state": "AK", "incident_year": 2020}

        llm = _ScriptedLLM(None, json_rule)
        extract = make_cascade_extract_fn(
            scripted_context(llm),
            {"state": "string", "incident_year": "int"},
            "sim-large", "sim-small", confidence_threshold=0.75,
        )
        out = extract(self.DOC)
        assert out.properties["incident_year"] == 2020
        assert len(llm.by_model("sim-large")) == 1

    def test_extract_confident_draft_skips_verify(self):
        llm = _ScriptedLLM(
            None, lambda model, prompt: {"state": "AK", "incident_year": 2020}
        )
        extract = make_cascade_extract_fn(
            scripted_context(llm),
            {"state": "string", "incident_year": "int"},
            "sim-large", "sim-small", confidence_threshold=0.75,
        )
        out = extract(self.DOC)
        assert out.properties["state"] == "AK"
        assert len(llm.by_model("sim-large")) == 0


# ----------------------------------------------------------------------
# Plancheck integration
# ----------------------------------------------------------------------


class TestPlancheckCascade:
    def cascaded(self, **overrides):
        cascade = {
            "draft_model": "sim-small",
            "draft_votes": 2,
            "confidence_threshold": 0.75,
        }
        cascade.update(overrides)
        return plan(
            node("QueryIndex", index="ntsb"),
            node(
                "LlmFilter", [0],
                condition="c", model="sim-large", cascade=cascade,
            ),
            node("Count", [1]),
        )

    def test_valid_cascade_is_clean(self):
        assert check_plan(self.cascaded()).ok

    def test_cascade_on_non_eligible_operator_is_error(self):
        report = check_plan(
            plan(
                node("QueryIndex", index="ntsb"),
                node("Count", [0], cascade={"draft_model": "sim-small"}),
            )
        )
        assert "bad-cascade" in report.codes()
        assert any(i.code == "bad-cascade" for i in report.errors())

    def test_malformed_cascade_payloads_are_errors(self):
        assert "bad-cascade" in check_plan(
            plan(
                node("QueryIndex", index="ntsb"),
                node("LlmFilter", [0], condition="c", cascade="yes please"),
            )
        ).codes()
        assert "bad-cascade" in check_plan(
            self.cascaded(draft_votes=0)
        ).codes()
        assert "bad-cascade" in check_plan(
            self.cascaded(confidence_threshold="high")
        ).codes()

    def test_unknown_draft_model_is_warning_not_error(self):
        report = check_plan(self.cascaded(draft_model="gpt-99"))
        assert "cascade-unknown-model" in report.codes()
        assert report.ok  # warning only - the plan still executes

    def test_unknown_verify_model_warns_too(self):
        p = self.cascaded()
        p.nodes[1].params["model"] = "gpt-99"
        assert "cascade-unknown-model" in check_plan(p).codes()

    def test_scan_filter_op_is_validated(self):
        report = check_plan(
            plan(
                node(
                    "QueryIndex", index="ntsb",
                    filter_field="state", filter_op="zz", filter_value="AK",
                ),
                node("Count", [0]),
            )
        )
        assert "bad-param" in report.codes()


# ----------------------------------------------------------------------
# Serving-cache keys and the epoch roll
# ----------------------------------------------------------------------


class TestCacheKeys:
    def test_fingerprint_changes_plan_and_result_keys(self, indexed_context):
        index = indexed_context.catalog.get("ntsb")
        a = plan_cache_key("How many?", index, optimizer_fingerprint="cascade:aaa")
        b = plan_cache_key("How many?", index, optimizer_fingerprint="cascade:bbb")
        assert a != b
        ra = result_cache_key("How many?", index, optimizer_fingerprint="cascade:aaa")
        rb = result_cache_key("How many?", index, optimizer_fingerprint="cascade:bbb")
        assert ra != rb

    def test_default_fingerprint_is_backward_compatible(self, indexed_context):
        index = indexed_context.catalog.get("ntsb")
        assert plan_cache_key("q", index) == plan_cache_key(
            "q", index, (), optimizer_fingerprint=""
        )


# ----------------------------------------------------------------------
# Luna integration: reports, byte-identity, learned feedback
# ----------------------------------------------------------------------

QUESTION = "How many incidents were caused by wind?"


def canonical(result):
    return json.dumps(
        {
            "answer": result.answer,
            "supporting_documents": sorted(result.trace.supporting_documents()),
        },
        sort_keys=True,
        default=repr,
    )


class TestLunaIntegration:
    def test_report_attached_and_actuals_recorded(self, indexed_context):
        luna = Luna(indexed_context, policy="balanced")
        result = luna.query(QUESTION, index="ntsb")
        report = result.trace.optimizer_report
        assert report is not None
        assert report.policy == "balanced"
        assert report.actual_cost_usd == pytest.approx(
            result.trace.total_cost_usd()
        )
        assert report.actual_llm_calls == result.trace.total_llm_calls()
        assert "Optimizer report" in result.explain()

    def test_reorder_is_byte_identical_and_cheaper(self, indexed_context):
        """Cold (no rewrites) vs cost-optimized execution of the same
        hand-built plan: the LLM predicate is written first, the free
        structured predicate second. Reordering must not change a byte of
        the answer and must shrink the rows the LLM sees."""
        cold_policy = dataclasses.replace(
            QUALITY_POLICY,
            name="cold",
            enable_pushdown=False,
            enable_string_substitution=False,
        )

        def build():
            return plan(
                node("QueryIndex", index="ntsb"),
                node("LlmFilter", [0], condition="incidents wind"),
                node(
                    "BasicFilter", [1],
                    field="incident_year", op="eq", value=2022,
                ),
                node("Count", [2]),
            )

        cold = Luna(
            indexed_context, optimizer=LunaOptimizer(cold_policy)
        ).execute_plan(QUESTION, "ntsb", build())
        optimized = Luna(indexed_context, policy="quality").execute_plan(
            QUESTION, "ntsb", build()
        )
        assert canonical(optimized) == canonical(cold)

        def llm_rows(result):
            return [
                e.records_in
                for e in result.trace.entries
                if e.operation == "LlmFilter"
            ][0]

        assert llm_rows(optimized) < llm_rows(cold)

    def test_cascade_matches_ground_truth(self, indexed_context):
        """The cascade's verdicts are checked against the concept lexicon
        (the simulation's ground truth), not against sim-large: drafts
        that unanimously disagree with a rare sim-large slip are *right*,
        so byte-identity with the quality policy is the wrong oracle."""
        from repro.llm.knowledge import condition_holds

        index = indexed_context.catalog.get("ntsb")
        expected = sum(
            1
            for d in index.all_documents()
            if condition_holds("incidents wind", d.text_representation())
        )
        cascaded = Luna(indexed_context, policy="cascade").query(
            QUESTION, index="ntsb"
        )
        assert cascaded.answer == expected
        report = cascaded.trace.optimizer_report
        assert any(r.startswith("cascade:") for r in report.rewrites)
        assert report.estimated_after.cost_usd < report.estimated_before.cost_usd

    def test_stats_store_learns_across_queries(self, indexed_context):
        store = StatsStore()
        empty_fingerprint = StatsStore().fingerprint()
        luna = Luna(indexed_context, policy="balanced", stats_store=store)
        first = luna.query(QUESTION, index="ntsb")
        assert first.trace.optimizer_report.stats_fingerprint == empty_fingerprint
        assert len(store) > 0
        second = luna.query(QUESTION, index="ntsb")
        # The second plan was optimized against the learned table.
        fp = second.trace.optimizer_report.stats_fingerprint
        assert fp != empty_fingerprint
        assert canonical(second) == canonical(first)

    def test_scan_fold_preserves_answers(self, indexed_context):
        # A question the planner answers with a structured filter; the
        # folded scan must not change the result.
        question = "How many incidents had fatal injuries?"
        reference = Luna(indexed_context, policy="quality").query(
            question, index="ntsb"
        )
        balanced = Luna(indexed_context, policy="balanced").query(
            question, index="ntsb"
        )
        assert balanced.answer == reference.answer


# ----------------------------------------------------------------------
# Registry constants and policy surface
# ----------------------------------------------------------------------


class TestSurface:
    def test_cascade_eligible_subset_of_shardable(self):
        assert set(CASCADE_ELIGIBLE_OPERATIONS) <= set(SHARDABLE_OPERATIONS)

    def test_cascade_policy_registered(self):
        assert POLICIES["cascade"] is CASCADE_POLICY
        assert CASCADE_POLICY.cascade
        assert CASCADE_POLICY.cascade_draft_model in DEFAULT_MODELS
        for name in ("quality", "balanced", "cost"):
            assert not POLICIES[name].cascade

    def test_default_source_rows_positive(self):
        assert DEFAULT_SOURCE_ROWS > 0


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestPlanExplainCli:
    def test_plan_explain_smoke(self, capsys, tmp_path):
        stats_path = tmp_path / "stats.json"
        code = cli_main([
            "plan-explain", QUESTION,
            "--docs", "8", "--policy", "cascade",
            "--stats", str(stats_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "Optimizer report (policy=cascade)" in out
        assert "cascade:" in out
        assert "answer:" in out
        assert stats_path.exists()
        assert StatsStore(path=stats_path).as_dict()["entries"]
