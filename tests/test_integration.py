"""Integration tests: whole-stack flows and failure injection.

These exercise the resilience story of §5.2 ("Sycamore handles retries
and model-specific details") end to end: pipelines running against flaky
backends, rate limits, malformed JSON, mixed with real partitioning and
indexing — plus index persistence across sessions and the new
element-level transforms.
"""

import pytest

from repro.datagen import generate_ntsb_corpus
from repro.docmodel import Document, Element
from repro.embedding import HashingEmbedder
from repro.indexes import IndexCatalog, NamedIndex
from repro.llm import CostTracker, ReliableLLM, SimulatedLLM, TransientLLMError
from repro.luna import Luna
from repro.partitioner import ArynPartitioner
from repro.sycamore import SycamoreContext


def _flaky_context(failure_rate=0.0, rate_limit_every=None, malformed_rate=0.0,
                   parallelism=4, seed=0):
    tracker = CostTracker()
    backend = SimulatedLLM(
        seed=seed,
        failure_rate=failure_rate,
        rate_limit_every=rate_limit_every,
        malformed_rate=malformed_rate,
        tracker=tracker,
    )
    llm = ReliableLLM(backend, max_retries=6, backoff_base_s=0.0, sleeper=lambda s: None)
    return SycamoreContext(llm=llm, parallelism=parallelism, seed=seed)


class TestFailureInjection:
    def test_pipeline_survives_transient_failures(self, ntsb_corpus):
        _, raws = ntsb_corpus
        ctx = _flaky_context(failure_rate=0.3)
        docs = (
            ctx.read.raw(raws[:8])
            .partition(ArynPartitioner(seed=0))
            .extract_properties({"state": "string"}, model="sim-oracle")
            .take_all()
        )
        assert len(docs) == 8
        assert all(d.properties.get("state") for d in docs)
        assert ctx.llm.retries_performed > 0

    def test_pipeline_survives_rate_limits(self, ntsb_corpus):
        _, raws = ntsb_corpus
        ctx = _flaky_context(rate_limit_every=4)
        count = (
            ctx.read.raw(raws[:8])
            .partition(ArynPartitioner(seed=0))
            .llm_filter("caused by wind", model="sim-oracle")
            .count()
        )
        assert 0 <= count <= 8
        assert ctx.llm.retries_performed > 0

    def test_extraction_survives_malformed_json(self, ntsb_corpus):
        _, raws = ntsb_corpus
        clean = _flaky_context(malformed_rate=0.0, seed=2)
        broken = _flaky_context(malformed_rate=0.6, seed=2)

        def states(ctx):
            return [
                d.properties.get("state")
                for d in ctx.read.raw(raws[:6])
                .partition(ArynPartitioner(seed=0))
                .extract_properties({"state": "string"}, model="sim-oracle")
                .take_all()
            ]

        # JSON repair + retry recovers: the noisy run still extracts most
        # states, matching the clean run on the ones it recovers.
        clean_states = states(clean)
        broken_states = states(broken)
        matches = sum(1 for a, b in zip(clean_states, broken_states) if a == b)
        assert matches >= 4

    def test_luna_query_through_flaky_backend(self, ntsb_corpus):
        _, raws = ntsb_corpus
        ctx = _flaky_context(failure_rate=0.2, seed=3)
        (
            ctx.read.raw(raws[:10])
            .partition(ArynPartitioner(seed=0))
            .extract_properties({"state": "string"}, model="sim-oracle")
            .write.index("ntsb")
        )
        luna = Luna(ctx, planner_model="sim-oracle", policy="quality")
        result = luna.query("How many incidents were caused by wind?", index="ntsb")
        assert isinstance(result.answer, int)

    def test_hopeless_backend_raises_cleanly(self):
        backend = SimulatedLLM(seed=0, failure_rate=1.0)
        llm = ReliableLLM(backend, max_retries=2, sleeper=lambda s: None)
        ctx = SycamoreContext(llm=llm, parallelism=1)
        ds = ctx.read.documents([Document.from_text("x")]).llm_filter("windy")
        from repro.execution import TaskError

        with pytest.raises(TaskError):
            ds.count()


class TestIndexPersistence:
    def test_named_index_roundtrip(self, tmp_path, ntsb_corpus):
        _, raws = ntsb_corpus
        ctx = SycamoreContext(parallelism=4)
        (
            ctx.read.raw(raws[:6])
            .partition(ArynPartitioner(seed=0))
            .extract_properties({"state": "string"}, model="sim-oracle")
            .write.index("ntsb")
        )
        original = ctx.catalog.get("ntsb")
        original.save(tmp_path / "ntsb")

        restored = NamedIndex.load(tmp_path / "ntsb", embedder=ctx.embedder)
        assert len(restored) == len(original)
        assert restored.schema == original.schema
        query = "gusty crosswind landing"
        assert [d.doc_id for d in restored.search_hybrid(query, k=3)] == [
            d.doc_id for d in original.search_hybrid(query, k=3)
        ]

    def test_catalog_roundtrip_and_query(self, tmp_path, ntsb_corpus):
        _, raws = ntsb_corpus
        ctx = SycamoreContext(parallelism=4)
        (
            ctx.read.raw(raws[:8])
            .partition(ArynPartitioner(seed=0))
            .extract_properties({"state": "string"}, model="sim-oracle")
            .write.index("ntsb")
        )
        ctx.catalog.save(tmp_path / "catalog")

        # A brand-new session restores the catalog and queries it.
        fresh = SycamoreContext(parallelism=1)
        loaded = fresh.catalog.load(tmp_path / "catalog")
        assert loaded == ["ntsb"]
        luna = Luna(fresh, planner_model="sim-oracle", policy="quality")
        result = luna.query("How many incidents were caused by wind?", index="ntsb")
        assert isinstance(result.answer, int)


class TestElementTransforms:
    def _doc(self):
        return Document.from_elements(
            [
                Element(type="Page-header", text="HDR"),
                Element(type="Text", text="body one"),
                Element(type="Page-footer", text="1"),
            ],
            properties={"meta": {"year": 2023, "tags": {"a": 1}}, "plain": "x"},
        )

    def test_map_elements(self, context):
        def shout(element):
            out = element.copy()
            out.text = out.text.upper()
            return out

        doc = context.read.documents([self._doc()]).map_elements(shout).first()
        assert [e.text for e in doc.elements] == ["HDR", "BODY ONE", "1"]

    def test_filter_elements_drops_furniture(self, context):
        doc = (
            context.read.documents([self._doc()])
            .filter_elements(lambda e: e.type not in ("Page-header", "Page-footer"))
            .first()
        )
        assert [e.type for e in doc.elements] == ["Text"]

    def test_flatten_properties(self, context):
        doc = context.read.documents([self._doc()]).flatten_properties().first()
        assert doc.properties == {
            "meta.year": 2023,
            "meta.tags.a": 1,
            "plain": "x",
        }

    def test_distinct(self, context):
        docs = [Document(properties={"g": v}) for v in ["a", "b", "a", "c", "b"]]
        kept = context.read.documents(docs).distinct("g").take_all()
        assert [d.properties["g"] for d in kept] == ["a", "b", "c"]

    def test_distinct_unhashable_values(self, context):
        docs = [Document(properties={"g": [1, 2]}), Document(properties={"g": [1, 2]})]
        assert context.read.documents(docs).distinct("g").count() == 1


class TestDistinctOperator:
    def test_luna_distinct_node(self, indexed_context):
        from repro.luna import LogicalPlan, LunaExecutor

        plan = LogicalPlan.from_json(
            [
                {"operation": "QueryIndex", "inputs": [], "index": "ntsb"},
                {"operation": "Distinct", "inputs": [0], "field": "state"},
                {"operation": "Project", "inputs": [1], "fields": ["state"]},
            ]
        )
        answer, _ = LunaExecutor(indexed_context).execute(plan)
        assert len(answer) == len(set(answer))
        assert len(answer) >= 2

    def test_distinct_codegen(self):
        from repro.luna import LogicalPlan, generate_code

        plan = LogicalPlan.from_json(
            [
                {"operation": "QueryIndex", "inputs": [], "index": "i"},
                {"operation": "Distinct", "inputs": [0], "field": "state"},
            ]
        )
        assert ".distinct('state')" in generate_code(plan)


class TestProvenanceAndDiff:
    def test_trace_supporting_documents(self, indexed_context, ntsb_corpus):
        from repro.luna import Luna, OptimizerPolicy

        records, _ = ntsb_corpus
        oracle_policy = OptimizerPolicy(
            name="oracle",
            filter_model="sim-oracle",
            extract_model="sim-oracle",
            summarize_model="sim-oracle",
        )
        luna = Luna(indexed_context, planner_model="sim-oracle", policy=oracle_policy)
        result = luna.query("How many incidents were caused by wind?", index="ntsb")
        supporting = result.trace.supporting_documents()
        wind_ids = {r.report_id for r in records if r.cause_detail == "wind"}
        assert supporting  # provenance exists
        assert set(supporting) == wind_ids  # oracle filter: exact provenance

    def test_diff_plans_reports_optimizer_changes(self):
        from repro.luna import (
            BALANCED_POLICY,
            LogicalPlan,
            LunaOptimizer,
            diff_plans,
        )

        plan = LogicalPlan.from_json(
            [
                {"operation": "QueryIndex", "inputs": [], "index": "i"},
                {"operation": "LlmFilter", "inputs": [0],
                 "condition": "weather related incidents"},
                {"operation": "Count", "inputs": [1]},
            ]
        )
        optimized, _ = LunaOptimizer(BALANCED_POLICY).optimize(
            plan, {"weather_related": "bool"}
        )
        changes = diff_plans(plan, optimized)
        assert any("operation LlmFilter -> BasicFilter" in c for c in changes)
        assert diff_plans(plan, plan.copy()) == []

    def test_diff_plans_structural_changes(self):
        from repro.luna import LogicalPlan, diff_plans

        a = LogicalPlan.from_json(
            [{"operation": "QueryIndex", "inputs": [], "index": "i"}]
        )
        b = LogicalPlan.from_json(
            [
                {"operation": "QueryIndex", "inputs": [], "index": "i"},
                {"operation": "Count", "inputs": [0]},
            ]
        )
        assert any("added Count" in c for c in diff_plans(a, b))
        assert any("removed Count" in c for c in diff_plans(b, a))
