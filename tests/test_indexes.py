"""Tests for the index substrate: BM25, vector, graph, docstore, catalog."""

import numpy as np
import pytest

from repro.docmodel import Document
from repro.embedding import HashingEmbedder
from repro.indexes import (
    DocStore,
    GraphStore,
    IndexCatalog,
    KeywordIndex,
    VectorIndex,
    infer_schema,
)


class TestKeywordIndex:
    def _index(self):
        index = KeywordIndex()
        index.add("wind", "gusty crosswind during the landing roll")
        index.add("engine", "total loss of engine power after takeoff")
        index.add("fuel", "fuel contamination from water in the tank")
        return index

    def test_ranking(self):
        index = self._index()
        hits = index.search("crosswind landing")
        assert hits[0].doc_id == "wind"

    def test_no_match(self):
        assert self._index().search("zebra") == []

    def test_k_limits_results(self):
        index = self._index()
        assert len(index.search("the", k=1)) <= 1

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            KeywordIndex(k1=-1)
        with pytest.raises(ValueError):
            KeywordIndex(b=2.0)

    def test_readd_replaces(self):
        index = self._index()
        index.add("wind", "completely different topic now")
        assert index.search("crosswind") == [] or index.search("crosswind")[0].doc_id != "wind"
        assert len(index) == 3

    def test_remove(self):
        index = self._index()
        assert index.remove("wind")
        assert not index.remove("wind")
        assert "wind" not in index
        assert index.search("crosswind") == []

    def test_term_frequency(self):
        index = self._index()
        assert index.term_frequency("engine") == 1
        assert index.term_frequency("THE") >= 1  # case folded

    def test_rare_terms_outscore_common(self):
        index = KeywordIndex()
        index.add("a", "the the the crosswind")
        index.add("b", "the the the the the")
        hits = index.search("crosswind the")
        assert hits[0].doc_id == "a"

    def test_persistence_roundtrip(self, tmp_path):
        index = self._index()
        path = tmp_path / "kw.json"
        index.save(path)
        restored = KeywordIndex.load(path)
        assert [h.doc_id for h in restored.search("crosswind")] == [
            h.doc_id for h in index.search("crosswind")
        ]
        assert len(restored) == len(index)


class TestVectorIndex:
    def _embedder(self):
        return HashingEmbedder(dimensions=64)

    def test_exact_search_finds_nearest(self):
        e = self._embedder()
        index = VectorIndex(dimensions=64)
        index.add("wind", e.embed("gusty crosswind landing"))
        index.add("engine", e.embed("engine failure oil"))
        hits = index.search(e.embed("strong wind gust"), k=1)
        assert hits[0].doc_id == "wind"

    def test_dimension_mismatch(self):
        index = VectorIndex(dimensions=8)
        with pytest.raises(ValueError):
            index.add("x", np.ones(4))
        with pytest.raises(ValueError):
            index.search(np.ones(4))

    def test_replace_vector(self):
        index = VectorIndex(dimensions=4)
        index.add("a", [1, 0, 0, 0])
        index.add("a", [0, 1, 0, 0])
        assert len(index) == 1
        assert index.get("a")[1] == pytest.approx(1.0)

    def test_remove(self):
        index = VectorIndex(dimensions=4)
        index.add("a", [1, 0, 0, 0])
        assert index.remove("a")
        assert not index.remove("a")
        assert index.search([1, 0, 0, 0]) == []

    def test_empty_search(self):
        assert VectorIndex(dimensions=4).search([1, 0, 0, 0]) == []

    def test_approximate_recall_reasonable(self):
        e = self._embedder()
        index = VectorIndex(dimensions=64)
        texts = [f"report about topic {i} with words w{i} v{i}" for i in range(200)]
        for i, text in enumerate(texts):
            index.add(f"d{i}", e.embed(text))
        query = e.embed("report about topic 7 with words w7 v7")
        exact = {h.doc_id for h in index.search(query, k=5)}
        approx = {h.doc_id for h in index.search(query, k=5, approximate=True, n_probe=6)}
        assert len(exact & approx) >= 2  # decent overlap
        assert "d7" in exact

    def test_persistence_roundtrip(self, tmp_path):
        index = VectorIndex(dimensions=4)
        index.add("a", [1, 0, 0, 0])
        index.add("b", [0, 1, 0, 0])
        path = tmp_path / "vec.json"
        index.save(path)
        restored = VectorIndex.load(path)
        assert len(restored) == 2
        assert restored.search([1, 0, 0, 0], k=1)[0].doc_id == "a"


class TestGraphStore:
    def _store(self):
        store = GraphStore()
        store.add_triple("Acme", "in_sector", "AI", source_doc_id="d1")
        store.add_triple("Acme", "ceo", "Kai Adler", source_doc_id="d1")
        store.add_triple("Borealis", "in_sector", "AI", source_doc_id="d2")
        return store

    def test_counts(self):
        store = self._store()
        assert store.num_triples() == 3
        assert store.num_entities() == 4

    def test_pattern_queries(self):
        store = self._store()
        assert len(store.triples(predicate="in_sector")) == 2
        assert len(store.triples(subject="Acme")) == 2
        assert store.triples(subject="Acme", predicate="ceo")[0].object == "Kai Adler"

    def test_neighbors_and_incoming(self):
        store = self._store()
        assert store.neighbors("Acme", "in_sector") == ["AI"]
        assert store.incoming("AI", "in_sector") == ["Acme", "Borealis"]
        assert store.neighbors("nobody") == []

    def test_provenance(self):
        store = self._store()
        assert store.provenance("Acme", "in_sector", "AI") == ["d1"]

    def test_path_exists(self):
        store = GraphStore()
        store.add_triple("a", "r", "b")
        store.add_triple("b", "r", "c")
        assert store.path_exists("a", "c", max_hops=2)
        assert not store.path_exists("a", "c", max_hops=1)
        assert not store.path_exists("a", "zzz")

    def test_entity_attributes(self):
        store = GraphStore()
        store.add_entity("Acme", kind="company")
        assert store.entity_attributes("Acme") == {"kind": "company"}
        with pytest.raises(KeyError):
            store.entity_attributes("missing")

    def test_persistence_roundtrip(self, tmp_path):
        store = self._store()
        path = tmp_path / "graph.json"
        store.save(path)
        restored = GraphStore.load(path)
        assert restored.num_triples() == 3
        assert restored.provenance("Acme", "ceo", "Kai Adler") == ["d1"]


class TestDocStore:
    def test_crud(self):
        store = DocStore()
        doc = Document.from_text("hello")
        store.put(doc)
        assert doc.doc_id in store
        assert store.get(doc.doc_id).text == "hello"
        assert store.delete(doc.doc_id)
        assert not store.delete(doc.doc_id)

    def test_get_many_skips_unknown(self):
        store = DocStore()
        doc = Document.from_text("x")
        store.put(doc)
        assert [d.doc_id for d in store.get_many([doc.doc_id, "nope"])] == [doc.doc_id]

    def test_scan_with_predicate(self):
        store = DocStore()
        store.put_many([Document(properties={"n": i}) for i in range(5)])
        evens = list(store.scan(lambda d: d.properties["n"] % 2 == 0))
        assert len(evens) == 3

    def test_jsonl_roundtrip(self, tmp_path):
        store = DocStore()
        store.put_many([Document.from_text(f"doc {i}") for i in range(3)])
        path = tmp_path / "docs.jsonl"
        store.save(path)
        restored = DocStore.load(path)
        assert len(restored) == 3
        assert restored.doc_ids() == store.doc_ids()


class TestInferSchema:
    def test_dominant_types(self):
        docs = [Document(properties={"a": 1, "b": "x", "c": True}) for _ in range(3)]
        docs.append(Document(properties={"a": None, "d": 1.5}))
        schema = infer_schema(docs)
        assert schema == {"a": "int", "b": "string", "c": "bool", "d": "float"}

    def test_bool_not_mistaken_for_int(self):
        docs = [Document(properties={"flag": True})]
        assert infer_schema(docs)["flag"] == "bool"


class TestCatalogAndNamedIndex:
    def test_create_get_drop(self):
        catalog = IndexCatalog()
        catalog.create("ntsb", description="reports")
        assert "ntsb" in catalog
        with pytest.raises(ValueError):
            catalog.create("ntsb")
        assert catalog.create("ntsb", exist_ok=True) is catalog.get("ntsb")
        with pytest.raises(KeyError):
            catalog.get("missing")
        assert catalog.drop("ntsb")
        assert not catalog.drop("ntsb")

    def test_add_and_search_all_modes(self):
        catalog = IndexCatalog(embedder=HashingEmbedder(dimensions=64))
        index = catalog.create("test")
        docs = [
            Document.from_text("gusty crosswind during the landing"),
            Document.from_text("total loss of engine power"),
            Document.from_text("fuel contamination with water"),
        ]
        index.add_documents(docs)
        assert len(index) == 3
        for mode in ("search_keyword", "search_vector", "search_hybrid"):
            results = getattr(index, mode)("crosswind landing", k=2)
            assert results and results[0].doc_id == docs[0].doc_id

    def test_schema_refresh(self):
        catalog = IndexCatalog()
        index = catalog.create("t")
        index.add_documents([Document(text="x", properties={"year": 2023})])
        assert index.schema.get("year") == "int"
        payload = index.schema_for_planner()
        assert payload["index"] == "t"
        assert "year" in payload["fields"]
