"""Tests for repro.cluster: sharding, envelopes, spill, scatter/gather.

The contracts under test, in the order the module docstrings state them:

* shard assignment is a pure function of the document id — identical
  across processes and ``PYTHONHASHSEED`` values (asserted with real
  subprocesses);
* the gather merge is order-stable: worker completion order cannot
  perturb the output, so a sharded run is byte-identical to a
  single-process run of the same spec;
* a worker killed mid-shard is detected, its shard retried on a live
  peer, and the pool healed — with the *same* merged output;
* deadlines cross the process boundary: an expired scope either raises
  the typed :class:`DeadlineExceeded` or (``partial="typed"``) returns a
  ``status="partial"`` result naming the unfinished shards;
* cluster admission sheds with the serving layer's typed
  :class:`Overloaded` (``reason="cluster_busy"``);
* journal shard checkpoints make a re-run reuse completed shards;
* spill-to-disk round-trips documents byte-identically in insertion
  order under a bounded resident budget;
* sharded keyword/vector indexes return exactly the unsharded ranking.

The multi-process tests use small corpora: spawn cost dominates, the
invariants do not depend on scale (the sharding benchmark covers scale).
"""

import json
import os
import subprocess
import sys
import time

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterCoordinator,
    SpillableDocSet,
)
from repro.cluster.bench import generate_bench_corpus, run_sharding_benchmark
from repro.cluster.envelope import (
    NonPicklableTaskError,
    ShardOp,
    ShardPlanSpec,
)
from repro.cluster.sharding import (
    derive_fault_seed,
    merge_shard_outputs,
    partition_documents,
    shard_for,
)
from repro.cluster.worker import build_worker_context, run_spec_locally
from repro.docmodel.document import Document
from repro.indexes.keyword import KeywordIndex
from repro.indexes.sharded import ShardedKeywordIndex, ShardedVectorIndex
from repro.indexes.vector import VectorIndex
from repro.lifecycle import CancelScope, Deadline, DeadlineExceeded, QueryJournal
from repro.luna import Luna
from repro.serving import Overloaded

EXTRACT_SPEC = ShardPlanSpec.from_ops(
    [ShardOp.make("LlmExtract", field="cause", type="string")],
    default_model="sim-small",
)


def _doc_bytes(documents):
    return "\n".join(doc.to_json() for doc in documents)


def _run_locally(config: ClusterConfig, documents, spec):
    """The single-process reference: the exact worker code path."""
    context = build_worker_context(config.worker_config())
    try:
        output, _ = run_spec_locally(context, documents, spec)
    finally:
        if context.scheduler is not None:
            context.scheduler.close(drain=False)
        context.close()
    return output


# ----------------------------------------------------------------------
# Placement: pure, deterministic, PYTHONHASHSEED-proof
# ----------------------------------------------------------------------


class TestSharding:
    def test_shard_for_is_pure_and_bounded(self):
        ids = [f"doc-{i}" for i in range(200)]
        first = [shard_for(doc_id, 7) for doc_id in ids]
        second = [shard_for(doc_id, 7) for doc_id in ids]
        assert first == second
        assert all(0 <= shard < 7 for shard in first)
        # All shards get traffic at this scale; a degenerate constant
        # assignment would make "sharding" a no-op.
        assert len(set(first)) == 7

    def test_shard_for_rejects_nonpositive_modulus(self):
        with pytest.raises(ValueError):
            shard_for("doc", 0)

    def test_shard_for_identical_across_hash_seeds(self):
        """Placement must survive process restarts: two interpreters with
        different hash salts must compute the same partition map."""
        child = (
            "import json\n"
            "from repro.cluster.sharding import shard_for\n"
            "from repro.execution.materialize import stable_seed\n"
            "ids = [f'doc-{i}' for i in range(64)]\n"
            "print(json.dumps([[shard_for(i, 5) for i in ids],"
            " [stable_seed(i) for i in ids]]))\n"
        )

        def run(hash_seed: str) -> str:
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            proc = subprocess.run(
                [sys.executable, "-c", child],
                capture_output=True,
                text=True,
                env=env,
                timeout=120,
            )
            assert proc.returncode == 0, proc.stderr
            return proc.stdout.strip()

        assert run("0") == run("314159")

    def test_partition_covers_every_document_once(self):
        documents = generate_bench_corpus(50)
        shards = partition_documents(documents, 6)
        assert [shard.shard_id for shard in shards] == list(range(6))
        seen = [doc.doc_id for shard in shards for doc in shard.documents]
        assert sorted(seen) == sorted(doc.doc_id for doc in documents)
        for shard in shards:
            assert len(shard.documents) == len(shard.positions)
            # Within a shard, input order is preserved.
            assert shard.positions == sorted(shard.positions)

    def test_merge_ignores_completion_order(self):
        documents = generate_bench_corpus(30)
        shards = partition_documents(documents, 4)
        outputs = {s.shard_id: (s.documents, s.positions) for s in shards}
        reversed_outputs = {
            s.shard_id: (s.documents, s.positions) for s in reversed(shards)
        }
        merged = merge_shard_outputs(outputs)
        assert [d.doc_id for d in merged] == [d.doc_id for d in documents]
        assert _doc_bytes(merge_shard_outputs(reversed_outputs)) == _doc_bytes(
            merged
        )

    def test_merge_interleaves_filtered_shards(self):
        """A filter drops documents; survivors keep their original
        relative order across shard boundaries."""
        documents = generate_bench_corpus(20)
        shards = partition_documents(documents, 3)
        outputs = {}
        for shard in shards:
            kept = [
                (doc, pos)
                for doc, pos in zip(shard.documents, shard.positions)
                if pos % 2 == 0
            ]
            outputs[shard.shard_id] = (
                [doc for doc, _ in kept],
                [pos for _, pos in kept],
            )
        merged = merge_shard_outputs(outputs)
        expected = [doc for pos, doc in enumerate(documents) if pos % 2 == 0]
        assert [d.doc_id for d in merged] == [d.doc_id for d in expected]

    def test_merge_rejects_mismatched_positions(self):
        with pytest.raises(ValueError):
            merge_shard_outputs({0: ([Document.from_text("x")], [0, 1])})

    def test_fault_seed_is_stable_per_shard(self):
        assert derive_fault_seed(3, 1) == derive_fault_seed(3, 1)
        assert derive_fault_seed(3, 1) != derive_fault_seed(3, 2)
        assert derive_fault_seed(3, 1) >= 0


# ----------------------------------------------------------------------
# Envelopes: declarative, picklable, typed rejections
# ----------------------------------------------------------------------


class TestEnvelopes:
    def test_rejects_non_shardable_operation(self):
        with pytest.raises(ValueError, match="not shardable"):
            ShardPlanSpec.from_ops([ShardOp.make("TopK", k=3)])

    def test_rejects_empty_plan(self):
        with pytest.raises(ValueError, match="at least one"):
            ShardPlanSpec.from_ops([])

    def test_rejects_lambda_capture(self):
        with pytest.raises(NonPicklableTaskError, match="function"):
            ShardPlanSpec.from_ops(
                [ShardOp.make("BasicFilter", predicate=lambda doc: True)]
            )

    def test_rejects_nested_lock_capture(self):
        import threading

        with pytest.raises(NonPicklableTaskError, match="LlmFilter.options"):
            ShardPlanSpec.from_ops(
                [
                    ShardOp.make(
                        "LlmFilter",
                        condition="x",
                        options={"guard": threading.Lock()},
                    )
                ]
            )

    def test_fingerprint_tracks_plan_identity(self):
        a = ShardPlanSpec.from_ops([ShardOp.make("LlmExtract", field="f")])
        b = ShardPlanSpec.from_ops([ShardOp.make("LlmExtract", field="f")])
        c = ShardPlanSpec.from_ops([ShardOp.make("LlmExtract", field="g")])
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()


# ----------------------------------------------------------------------
# Spill-to-disk
# ----------------------------------------------------------------------


class TestSpillableDocSet:
    def test_roundtrip_is_byte_identical_in_order(self, tmp_path):
        documents = generate_bench_corpus(40)
        docset = SpillableDocSet(
            spill_dir=tmp_path, max_resident_docs=10, n_partitions=4
        )
        docset.extend(documents)
        assert len(docset) == 40
        assert docset.resident_docs <= 10
        assert docset.spilled_docs > 0
        assert _doc_bytes(list(docset)) == _doc_bytes(documents)
        # Iteration is repeatable (files + buffers are not consumed).
        assert _doc_bytes(list(docset)) == _doc_bytes(documents)
        docset.close()

    def test_partitions_agree_with_shard_for(self, tmp_path):
        documents = generate_bench_corpus(24)
        with SpillableDocSet(
            spill_dir=tmp_path, max_resident_docs=5, n_partitions=3
        ) as docset:
            docset.extend(documents)
            docset.flush()
            for partition in range(3):
                for doc in docset.partition_documents(partition):
                    assert shard_for(doc.doc_id, 3) == partition

    def test_stats_and_cleanup(self, tmp_path):
        docset = SpillableDocSet(
            spill_dir=tmp_path, max_resident_docs=4, n_partitions=2
        )
        docset.extend(generate_bench_corpus(12))
        stats = docset.stats()
        assert stats["documents"] == 12
        assert stats["spilled_docs"] + stats["resident_docs"] == 12
        assert stats["spilled_bytes"] > 0
        docset.close()
        assert not any(tmp_path.glob("partition-*.jsonl"))

    def test_rejects_degenerate_budgets(self):
        with pytest.raises(ValueError):
            SpillableDocSet(max_resident_docs=0)
        with pytest.raises(ValueError):
            SpillableDocSet(n_partitions=0)


# ----------------------------------------------------------------------
# Sharded indexes: exact fan-out
# ----------------------------------------------------------------------

_TEXTS = {
    f"doc-{i}": " ".join(
        ["wind"] * (i % 4)
        + ["engine"] * (i % 3)
        + ["failure", "report", f"sector{i % 5}"]
    )
    for i in range(30)
}


class TestShardedIndexes:
    def test_keyword_search_matches_unsharded(self):
        single = KeywordIndex()
        sharded = ShardedKeywordIndex(n_shards=4)
        for doc_id, text in _TEXTS.items():
            single.add(doc_id, text)
            sharded.add(doc_id, text)
        for query in ("wind", "engine failure", "sector2 report"):
            expected = single.search(query, k=10)
            actual = sharded.search(query, k=10)
            assert [h.doc_id for h in actual] == [h.doc_id for h in expected]
            for got, want in zip(actual, expected):
                assert got.score == pytest.approx(want.score)

    def test_keyword_global_stats_make_scores_exact(self):
        """The distributed-IDF round: per-shard document frequencies sum
        to the global ones, which is what makes scores comparable."""
        single = KeywordIndex()
        sharded = ShardedKeywordIndex(n_shards=3)
        for doc_id, text in _TEXTS.items():
            single.add(doc_id, text)
            sharded.add(doc_id, text)
        global_stats = sharded.global_stats("wind engine")
        local_stats = single.local_stats({"wind", "engine"})
        assert global_stats.n_docs == local_stats.n_docs
        assert global_stats.avg_length == pytest.approx(local_stats.avg_length)
        assert global_stats.doc_freqs == local_stats.doc_freqs

    def test_vector_search_matches_unsharded(self):
        single = VectorIndex(dimensions=4)
        sharded = ShardedVectorIndex(dimensions=4, n_shards=3)
        for i in range(24):
            vector = [(i % 5) + 1.0, (i % 3) + 0.5, 1.0, (i % 7) * 0.25]
            single.add(f"doc-{i}", vector)
            sharded.add(f"doc-{i}", vector)
        expected = single.search([1.0, 0.8, 1.2, 0.3], k=8)
        actual = sharded.search([1.0, 0.8, 1.2, 0.3], k=8)
        assert [h.doc_id for h in actual] == [h.doc_id for h in expected]
        for got, want in zip(actual, expected):
            assert got.score == pytest.approx(want.score)

    def test_membership_and_removal_route_by_shard(self):
        sharded = ShardedKeywordIndex(n_shards=4)
        sharded.add("doc-1", "some text")
        assert "doc-1" in sharded
        assert len(sharded) == 1
        assert sharded.remove("doc-1")
        assert "doc-1" not in sharded
        assert not sharded.remove("doc-1")


# ----------------------------------------------------------------------
# Scatter/gather with real worker processes
# ----------------------------------------------------------------------


class TestClusterExecution:
    def test_sharded_output_byte_identical_to_single_process(self):
        """The tentpole invariant at small scale, via the benchmark
        harness (so the benchmark's own plumbing is covered too)."""
        results = run_sharding_benchmark(
            n_docs=80, workers=2, shards_per_worker=2, latency_scale=0.0
        )
        assert results["byte_identical"] is True
        assert results["sharded"]["documents_out"] == 80
        assert results["sharded"]["shards_completed"] == 4
        assert results["sharded"]["worker_deaths"] == 0
        assert results["single_process"]["llm_calls"] == 80

    def test_worker_death_is_healed_by_peer_retry(self):
        """Kill one worker mid-shard: the coordinator must notice, retry
        the shard elsewhere, heal the pool, and merge the same bytes."""
        documents = generate_bench_corpus(40)
        config = ClusterConfig(
            n_workers=2, seed=0, default_model="sim-small", chaos_kill_shard=0
        )
        expected = _run_locally(config, documents, EXTRACT_SPEC)
        with ClusterCoordinator(config) as coordinator:
            run = coordinator.run_segment(documents, EXTRACT_SPEC)
            stats = coordinator.stats()
        assert run.worker_deaths >= 1
        assert run.retried_shards >= 1
        assert run.status == "ok"
        assert _doc_bytes(run.documents) == _doc_bytes(expected)
        assert stats["workers"]["alive"] == 2  # the dead slot respawned
        assert stats["worker_deaths"] >= 1

    def test_expired_deadline_raises_or_returns_typed_partial(self):
        documents = generate_bench_corpus(24)
        config = ClusterConfig(n_workers=2, seed=0, default_model="sim-small")
        scope = CancelScope(deadline=Deadline(0.001), query_id="q-deadline")
        time.sleep(0.01)  # the budget is gone before the scatter starts
        with ClusterCoordinator(config) as coordinator:
            with pytest.raises(DeadlineExceeded):
                coordinator.run_segment(
                    documents, EXTRACT_SPEC, scope=scope, partial="raise"
                )
            run = coordinator.run_segment(
                documents, EXTRACT_SPEC, scope=scope, partial="typed"
            )
        assert run.status == "partial"
        assert run.deadline_shards  # the unfinished shards are named
        assert run.completed_shards + len(run.deadline_shards) == run.n_shards

    def test_admission_sheds_with_cluster_busy(self):
        config = ClusterConfig(n_workers=1, max_inflight_segments=0)
        coordinator = ClusterCoordinator(config)
        try:
            with pytest.raises(Overloaded) as excinfo:
                coordinator.run_segment(
                    generate_bench_corpus(4), EXTRACT_SPEC
                )
            assert excinfo.value.reason == "cluster_busy"
            assert excinfo.value.retry_after_s > 0
            assert coordinator.tenant.rejected == 1
        finally:
            coordinator.close()

    def test_rejects_invalid_partial_mode(self):
        coordinator = ClusterCoordinator(ClusterConfig(n_workers=1))
        try:
            with pytest.raises(ValueError, match="partial"):
                coordinator.run_segment(
                    generate_bench_corpus(2), EXTRACT_SPEC, partial="maybe"
                )
        finally:
            coordinator.close()

    def test_journal_checkpoints_let_a_rerun_reuse_shards(self, tmp_path):
        documents = generate_bench_corpus(30)
        journal = QueryJournal(tmp_path)
        config = ClusterConfig(n_workers=2, seed=0, default_model="sim-small")
        with ClusterCoordinator(config, journal=journal) as coordinator:
            first = coordinator.run_segment(
                documents, EXTRACT_SPEC, query_id="q-journal"
            )
            assert first.reused_shards == 0
            second = coordinator.run_segment(
                documents, EXTRACT_SPEC, query_id="q-journal"
            )
        # Every non-empty shard replays from its checkpoint; the merged
        # output is identical without re-running a single worker task.
        non_empty = sum(
            1 for s in partition_documents(documents, first.n_shards) if len(s)
        )
        assert second.reused_shards == non_empty
        assert second.llm_calls == 0
        assert _doc_bytes(second.documents) == _doc_bytes(first.documents)

    def test_closed_coordinator_rejects_segments(self):
        from repro.cluster import ClusterError

        coordinator = ClusterCoordinator(ClusterConfig(n_workers=1))
        coordinator.close()
        with pytest.raises(ClusterError, match="closed"):
            coordinator.run_segment(generate_bench_corpus(2), EXTRACT_SPEC)


# ----------------------------------------------------------------------
# Luna routing
# ----------------------------------------------------------------------


class TestLunaClusterRouting:
    QUESTION = "How many incidents were caused by wind?"

    def test_cluster_routed_query_matches_in_process(self, indexed_context):
        ctx = indexed_context
        luna = Luna(ctx, policy="balanced")
        baseline = luna.query(self.QUESTION, index="ntsb")
        config = ClusterConfig(n_workers=2, seed=0)
        try:
            with ClusterCoordinator(
                config, tracer=ctx.tracer, registry=ctx.registry
            ) as coordinator:
                ctx.cluster = coordinator
                routed = luna.query(self.QUESTION, index="ntsb")
                stats = coordinator.stats()
        finally:
            ctx.cluster = None
        assert routed.answer == baseline.answer
        assert stats["segments"] >= 1
        # Worker-side LLM traffic is folded into the parent trace, so
        # cost accounting survives the process boundary.
        assert routed.trace.total_llm_calls() >= stats["shards"]["completed"]

    def test_small_inputs_stay_in_process(self, indexed_context):
        ctx = indexed_context
        config = ClusterConfig(n_workers=1, min_cluster_docs=10_000)
        try:
            with ClusterCoordinator(
                config, tracer=ctx.tracer, registry=ctx.registry
            ) as coordinator:
                ctx.cluster = coordinator
                luna = Luna(ctx, policy="balanced")
                result = luna.query(self.QUESTION, index="ntsb")
                stats = coordinator.stats()
        finally:
            ctx.cluster = None
        assert result.answer is not None
        assert stats["segments"] == 0  # below the routing threshold
