"""Tests for the simulated LLM backend: determinism, tiers, failure modes."""

import json

import pytest

from repro.llm import (
    ContextWindowExceededError,
    CostTracker,
    EXTRACT_PROPERTIES,
    FILTER_DOCUMENT,
    RateLimitError,
    SimulatedLLM,
    TransientLLMError,
)

DOC = """Location: Anchorage, AK
Date: May 3, 2023
Aircraft: Cessna 172

Analysis
The pilot reported a strong gusty crosswind during landing.
Probable Cause: The pilot's failure to compensate for the gusty crosswind
during landing, which resulted in a loss of directional control.
"""


class TestDeterminism:
    def test_same_prompt_same_output(self):
        llm = SimulatedLLM(seed=5)
        prompt = FILTER_DOCUMENT.render(condition="caused by wind", document=DOC)
        first = llm.complete(prompt, model="sim-small").text
        second = llm.complete(prompt, model="sim-small").text
        assert first == second

    def test_different_seeds_can_differ_in_noise_draws(self):
        # The oracle ignores noise, so outputs agree; noisy tiers are
        # seeded per (seed, model, prompt) and may legitimately differ.
        prompt = FILTER_DOCUMENT.render(condition="caused by wind", document=DOC)
        a = SimulatedLLM(seed=1).complete(prompt, model="sim-oracle").text
        b = SimulatedLLM(seed=2).complete(prompt, model="sim-oracle").text
        assert a == b == "yes"


class TestCompletionBasics:
    def test_usage_and_latency_populated(self):
        tracker = CostTracker()
        llm = SimulatedLLM(seed=0, tracker=tracker)
        prompt = FILTER_DOCUMENT.render(condition="caused by wind", document=DOC)
        response = llm.complete(prompt, model="sim-large")
        assert response.usage.input_tokens > 0
        assert response.usage.output_tokens > 0
        assert response.latency_s > 0
        assert tracker.summary().calls == 1

    def test_context_window_enforced(self):
        llm = SimulatedLLM(seed=0)
        huge = "word " * 10_000
        with pytest.raises(ContextWindowExceededError):
            llm.complete(huge, model="sim-small")  # 8k window

    def test_max_output_tokens_truncates(self):
        llm = SimulatedLLM(seed=0)
        prompt = EXTRACT_PROPERTIES.render(
            schema=json.dumps({"probable_cause": "string"}), document=DOC
        )
        response = llm.complete(prompt, model="sim-oracle", max_output_tokens=3)
        assert response.usage.output_tokens <= 3

    def test_free_form_prompt_gets_generic_answer(self):
        llm = SimulatedLLM(seed=0)
        response = llm.complete("Tell me about the weather today.")
        assert isinstance(response.text, str)
        assert response.text


class TestQualityTiers:
    def _extraction_accuracy(self, model: str, n: int = 40) -> float:
        llm = SimulatedLLM(seed=3)
        schema = json.dumps({"us_state": "string", "weather_related": "bool"})
        correct = 0
        for i in range(n):
            doc = DOC + f"\nReport number {i}."  # vary prompts
            prompt = EXTRACT_PROPERTIES.render(schema=schema, document=doc)
            result = json.loads(llm.complete(prompt, model=model).text)
            if result.get("us_state") == "AK" and result.get("weather_related") is True:
                correct += 1
        return correct / n

    def test_oracle_is_perfect(self):
        assert self._extraction_accuracy("sim-oracle") == 1.0

    def test_small_model_is_noisier_than_large(self):
        large = self._extraction_accuracy("sim-large")
        small = self._extraction_accuracy("sim-small")
        assert large >= small
        assert small < 1.0


class TestFailureInjection:
    def test_transient_failures_raised(self):
        llm = SimulatedLLM(seed=0, failure_rate=1.0)
        with pytest.raises(TransientLLMError):
            llm.complete("hello", model="sim-large")

    def test_rate_limit_every_n(self):
        llm = SimulatedLLM(seed=0, rate_limit_every=3)
        llm.complete("a")
        llm.complete("b")
        with pytest.raises(RateLimitError):
            llm.complete("c")
        llm.complete("d")  # counter moved on

    def test_malformed_output_truncates(self):
        clean = SimulatedLLM(seed=0)
        broken = SimulatedLLM(seed=0, malformed_rate=1.0)
        prompt = EXTRACT_PROPERTIES.render(
            schema=json.dumps({"us_state": "string"}), document=DOC
        )
        good = clean.complete(prompt, model="sim-oracle").text
        bad = broken.complete(prompt, model="sim-oracle").text
        assert len(bad) < len(good)
        with pytest.raises(json.JSONDecodeError):
            json.loads(bad)

    def test_call_counter(self):
        llm = SimulatedLLM(seed=0)
        llm.complete("x")
        llm.complete("y")
        assert llm.calls == 2
