"""Half of the two-module deadlock fixture (see mod_b.py).

``AccountA.transfer`` takes A's lock then calls across the module
boundary into :func:`mod_b.credit`, which takes B's lock — while
``mod_b.AccountB.reverse`` nests the same two locks in the opposite
order. Neither module is wrong on its own; the inversion only exists in
the whole program. The static ``lock-order-inversion`` rule and the
runtime locksmith sanitizer must both catch it (and agree in the
cross-check report) — tests/test_crossmod.py drives both.
"""

import threading


class AccountA:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.balance = 0

    def transfer(self, other: "object", amount: int) -> None:
        from mod_b import credit

        with self._lock:
            self.balance -= amount
            credit(other, amount)

    def debit(self, amount: int) -> None:
        with self._lock:
            self.balance -= amount
