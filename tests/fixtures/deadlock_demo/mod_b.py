"""Other half of the two-module deadlock fixture (see mod_a.py)."""

import threading

from mod_a import AccountA


class AccountB:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.balance = 0

    def reverse(self, a: AccountA, amount: int) -> None:
        # B -> A: the opposite nesting order of AccountA.transfer.
        with self._lock:
            self.balance -= amount
            a.debit(amount)


def credit(b: "AccountB", amount: int) -> None:
    # Called from AccountA.transfer with A's lock held: A -> B.
    with b._lock:
        b.balance += amount
