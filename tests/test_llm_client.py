"""Tests for the reliability layer: retries, caching, JSON repair, limits."""

import json
import threading

import pytest

from repro.llm import (
    LLMResponse,
    MalformedOutputError,
    RateLimiter,
    ReliableLLM,
    SimulatedLLM,
    TransientLLMError,
    Usage,
    repair_json,
)
from repro.llm.base import LLMClient
from repro.llm.errors import RateLimitError


class FlakyBackend(LLMClient):
    """Fails N times, then echoes. Records attempts."""

    def __init__(self, failures: int, error=TransientLLMError("boom")):
        self.remaining_failures = failures
        self.error = error
        self.attempts = 0

    def complete(self, prompt, model="sim-large", max_output_tokens=None, temperature=0.0):
        self.attempts += 1
        if self.remaining_failures > 0:
            self.remaining_failures -= 1
            raise self.error
        return LLMResponse(text=f"echo:{prompt}", model=model, usage=Usage(1, 1, 1))


class TestRetries:
    def test_retries_until_success(self):
        backend = FlakyBackend(failures=2)
        llm = ReliableLLM(backend, max_retries=3, sleeper=lambda s: None)
        response = llm.complete("hi")
        assert response.text == "echo:hi"
        assert backend.attempts == 3
        assert llm.retries_performed == 2

    def test_gives_up_after_max_retries(self):
        backend = FlakyBackend(failures=10)
        llm = ReliableLLM(backend, max_retries=2, sleeper=lambda s: None)
        with pytest.raises(TransientLLMError, match="giving up"):
            llm.complete("hi")
        assert backend.attempts == 3

    def test_rate_limit_uses_retry_after(self):
        sleeps = []
        backend = FlakyBackend(failures=1, error=RateLimitError(retry_after_s=7.5))
        llm = ReliableLLM(backend, max_retries=2, sleeper=sleeps.append)
        llm.complete("hi")
        assert sleeps and sleeps[0] >= 7.5

    def test_backoff_grows(self):
        sleeps = []
        backend = FlakyBackend(failures=3)
        llm = ReliableLLM(backend, max_retries=4, backoff_base_s=1.0, sleeper=sleeps.append)
        llm.complete("hi")
        assert sleeps == [1.0, 2.0, 4.0]


class TestCache:
    def test_cache_hit_marked_and_free(self):
        backend = FlakyBackend(failures=0)
        llm = ReliableLLM(backend)
        first = llm.complete("q")
        second = llm.complete("q")
        assert backend.attempts == 1
        assert not first.cached
        assert second.cached
        assert second.latency_s == 0.0
        assert llm.cache_size() == 1

    def test_cache_keyed_by_model(self):
        backend = FlakyBackend(failures=0)
        llm = ReliableLLM(backend)
        llm.complete("q", model="sim-large")
        llm.complete("q", model="sim-small")
        assert backend.attempts == 2

    def test_temperature_bypasses_cache(self):
        backend = FlakyBackend(failures=0)
        llm = ReliableLLM(backend)
        llm.complete("q", temperature=0.5)
        llm.complete("q", temperature=0.5)
        assert backend.attempts == 2

    def test_cache_disabled(self):
        backend = FlakyBackend(failures=0)
        llm = ReliableLLM(backend, cache_enabled=False)
        llm.complete("q")
        llm.complete("q")
        assert backend.attempts == 2

    def test_clear_cache(self):
        llm = ReliableLLM(FlakyBackend(failures=0))
        llm.complete("q")
        llm.clear_cache()
        assert llm.cache_size() == 0


class TestRepairJson:
    def test_clean_json(self):
        assert repair_json('{"a": 1}') == {"a": 1}

    def test_code_fence(self):
        assert repair_json('```json\n{"a": 1}\n```') == {"a": 1}

    def test_surrounding_prose(self):
        assert repair_json('Here you go: {"a": [1, 2]} hope that helps') == {"a": [1, 2]}

    def test_trailing_comma(self):
        assert repair_json('{"a": 1,}') == {"a": 1}
        assert repair_json("[1, 2,]") == [1, 2]

    def test_truncated_object_closed(self):
        assert repair_json('{"a": 1, "b": {"c": 2') == {"a": 1, "b": {"c": 2}}

    def test_truncated_string_closed(self):
        result = repair_json('{"a": "hel')
        assert result == {"a": "hel"}

    def test_truncated_list(self):
        assert repair_json("[1, 2, 3") == [1, 2, 3]

    def test_hopeless_input_raises(self):
        with pytest.raises(MalformedOutputError):
            repair_json("no json here at all")

    def test_truncated_string_inside_array(self):
        assert repair_json('["abc", "de') == ["abc", "de"]

    def test_truncated_string_inside_nested_array(self):
        assert repair_json('{"items": ["alpha", "be') == {"items": ["alpha", "be"]}

    def test_truncated_object_inside_array_salvaged(self):
        # The half-open second element can't be recovered, but the parse
        # must still yield something rather than raise.
        assert repair_json('[{"a": 1}, {"b') == {"a": 1}

    def test_nested_code_fences(self):
        assert repair_json('```\n```json\n{"a": 1}\n```\n```') == {"a": 1}

    def test_fence_with_surrounding_prose(self):
        text = 'Sure thing: ```json\n{"a": [1, 2]}\n``` hope that helps'
        assert repair_json(text) == {"a": [1, 2]}

    def test_unterminated_fence(self):
        assert repair_json('```json\n{"a": "x"}') == {"a": "x"}


class TestCompleteJson:
    def test_retries_malformed_output(self):
        # malformed_rate=1.0 truncates every completion; the retry loop
        # bumps temperature, but the repair pass usually rescues it first.
        llm = ReliableLLM(SimulatedLLM(seed=0, malformed_rate=0.0))
        from repro.llm import EXTRACT_PROPERTIES

        prompt = EXTRACT_PROPERTIES.render(
            schema=json.dumps({"x": "string"}), document="X: hello"
        )
        result = llm.complete_json(prompt, model="sim-oracle")
        assert isinstance(result, dict)

    def test_malformed_then_repaired(self):
        llm = ReliableLLM(SimulatedLLM(seed=1, malformed_rate=1.0))
        from repro.llm import EXTRACT_PROPERTIES

        prompt = EXTRACT_PROPERTIES.render(
            schema=json.dumps({"alpha": "string", "beta": "string"}),
            document="Alpha: one\nBeta: two",
        )
        result = llm.complete_json(prompt, model="sim-oracle")
        assert isinstance(result, dict)  # repair or retry succeeded


class TestRateLimiter:
    def test_disabled_limiter_never_sleeps(self):
        sleeps = []
        limiter = RateLimiter(None, sleeper=sleeps.append)
        for _ in range(100):
            limiter.acquire()
        assert sleeps == []

    def test_limits_burst(self):
        clock = {"t": 0.0}
        sleeps = []

        def sleeper(s):
            sleeps.append(s)
            clock["t"] += s

        limiter = RateLimiter(2.0, clock=lambda: clock["t"], sleeper=sleeper)
        for _ in range(4):
            limiter.acquire()
        # 2 rps with a burst of 2: two immediate, then throttled.
        assert len(sleeps) >= 1
        assert all(s > 0 for s in sleeps)

    def test_sleep_happens_outside_lock(self):
        clock = {"t": 0.0}
        lock_states = []

        def sleeper(s):
            lock_states.append(limiter._lock.locked())
            clock["t"] += s

        limiter = RateLimiter(1.0, clock=lambda: clock["t"], sleeper=sleeper)
        for _ in range(3):
            limiter.acquire()
        assert len(lock_states) == 2  # first acquire rides the burst
        assert lock_states == [False, False]

    def test_sleeping_waiter_does_not_block_others(self):
        # One thread parked in the sleeper must not hold the lock: a second
        # thread has to be able to reserve its own slot and finish.
        clock = {"t": 0.0}
        first_sleeping = threading.Event()
        release_first = threading.Event()
        calls = []
        calls_lock = threading.Lock()

        def sleeper(s):
            with calls_lock:
                calls.append(s)
                ordinal = len(calls)
            if ordinal == 1:
                first_sleeping.set()
                assert release_first.wait(timeout=5.0)

        limiter = RateLimiter(1.0, clock=lambda: clock["t"], sleeper=sleeper)
        limiter.acquire()  # burn the burst slot; no sleep

        t1 = threading.Thread(target=limiter.acquire)
        t1.start()
        assert first_sleeping.wait(timeout=5.0)

        second_done = threading.Event()

        def second():
            limiter.acquire()
            second_done.set()

        t2 = threading.Thread(target=second)
        t2.start()
        # Before the fix this deadlocked until t1 woke up.
        assert second_done.wait(timeout=5.0)
        release_first.set()
        t1.join(timeout=5.0)
        t2.join(timeout=5.0)
        assert not t1.is_alive()
        # Both waiters reserved distinct slots: 1s and 2s out.
        assert sorted(calls) == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_concurrent_acquires_reserve_distinct_slots(self):
        clock = {"t": 0.0}
        clock_lock = threading.Lock()
        sleeps = []

        def sleeper(s):
            with clock_lock:
                sleeps.append(s)

        limiter = RateLimiter(2.0, clock=lambda: clock["t"], sleeper=sleeper)
        threads = [threading.Thread(target=limiter.acquire) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5.0)
        assert not any(t.is_alive() for t in threads)
        # Burst of 2 absorbed free; the other 6 each reserved a later,
        # strictly deeper slot in the bucket (clock frozen at t=0).
        assert len(sleeps) == 6
        assert sorted(sleeps) == [pytest.approx(0.5 * k) for k in range(1, 7)]
