"""Property-based tests (hypothesis) on core data structures and invariants."""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.docmodel import BoundingBox, Document, Element, Table, TableCell
from repro.embedding import HashingEmbedder
from repro.execution import Executor, Plan
from repro.indexes import KeywordIndex, VectorIndex
from repro.llm import count_tokens, repair_json, render_task_prompt, parse_task_prompt, truncate_to_tokens
from repro.llm.errors import MalformedOutputError
from repro.luna import evaluate, MathEvaluationError
from repro.sycamore.aggregates import aggregate_field, sort_documents, top_k_values

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

coords = st.floats(min_value=-1000, max_value=1000, allow_nan=False, allow_infinity=False)


@st.composite
def bboxes(draw):
    x1 = draw(coords)
    y1 = draw(coords)
    w = draw(st.floats(min_value=0, max_value=500, allow_nan=False))
    h = draw(st.floats(min_value=0, max_value=500, allow_nan=False))
    return BoundingBox(x1, y1, x1 + w, y1 + h)


json_values = st.recursive(
    st.none() | st.booleans() | st.integers(-1000, 1000) | st.text(max_size=20),
    lambda children: st.lists(children, max_size=3)
    | st.dictionaries(st.text(max_size=8), children, max_size=3),
    max_leaves=8,
)


# ----------------------------------------------------------------------
# Geometry invariants
# ----------------------------------------------------------------------


class TestBBoxProperties:
    @given(bboxes(), bboxes())
    def test_iou_symmetric_and_bounded(self, a, b):
        iou = a.iou(b)
        assert 0.0 <= iou <= 1.0 + 1e-9
        assert iou == pytest.approx(b.iou(a))

    @given(bboxes())
    def test_self_iou_is_one(self, box):
        assert box.iou(box) == pytest.approx(1.0)

    @given(bboxes(), bboxes())
    def test_union_contains_both(self, a, b):
        union = a.union(b)
        assert union.contains_box(a)
        assert union.contains_box(b)

    @given(bboxes(), bboxes())
    def test_intersection_subset_of_both(self, a, b):
        inter = a.intersection(b)
        if inter is not None:
            assert a.contains_box(inter)
            assert b.contains_box(inter)
            assert inter.area <= min(a.area, b.area) + 1e-9

    @given(bboxes())
    def test_dict_roundtrip(self, box):
        assert BoundingBox.from_dict(box.to_dict()) == box


# ----------------------------------------------------------------------
# Table invariants
# ----------------------------------------------------------------------


@st.composite
def tables(draw):
    n_rows = draw(st.integers(1, 5))
    n_cols = draw(st.integers(1, 4))
    rows = [
        [draw(st.text(max_size=8)) for _ in range(n_cols)] for _ in range(n_rows)
    ]
    return Table.from_rows(rows, header=draw(st.booleans()))


class TestTableProperties:
    @given(tables())
    def test_grid_dimensions_consistent(self, table):
        grid = table.to_grid()
        assert len(grid) == table.num_rows
        assert all(len(row) == table.num_cols for row in grid)

    @given(tables())
    def test_serde_roundtrip(self, table):
        restored = Table.from_dict(table.to_dict())
        assert restored.to_grid() == table.to_grid()

    @given(tables())
    def test_csv_has_row_per_grid_row(self, table):
        csv_text = table.to_csv()
        # csv module may quote embedded newlines; row count >= grid rows
        assert csv_text.count("\n") >= table.num_rows

    @given(tables())
    def test_records_match_body(self, table):
        records = table.to_records()
        assert len(records) == len(table.body_rows())


# ----------------------------------------------------------------------
# Document serde
# ----------------------------------------------------------------------


class TestDocumentProperties:
    @given(
        st.text(max_size=50),
        st.dictionaries(
            st.text(min_size=1, max_size=8), json_values, max_size=4
        ),
    )
    def test_document_json_roundtrip(self, text, properties):
        doc = Document.from_text(text, properties=properties)
        restored = Document.from_json(doc.to_json())
        assert restored.text == doc.text
        assert restored.properties == doc.properties
        assert restored.doc_id == doc.doc_id

    @given(st.lists(st.text(max_size=20), max_size=5))
    def test_elements_preserved_in_order(self, texts):
        doc = Document.from_elements([Element(text=t) for t in texts])
        restored = Document.from_json(doc.to_json())
        assert [e.text for e in restored.elements] == texts


# ----------------------------------------------------------------------
# Tokens
# ----------------------------------------------------------------------


class TestTokenProperties:
    @given(st.text(max_size=500))
    def test_count_nonnegative_and_monotone(self, text):
        n = count_tokens(text)
        assert n >= 0
        assert count_tokens(text + " extra") >= n

    @given(st.text(max_size=500), st.integers(1, 50))
    def test_truncate_never_exceeds_budget(self, text, budget):
        assert count_tokens(truncate_to_tokens(text, budget)) <= budget


# ----------------------------------------------------------------------
# Prompt format
# ----------------------------------------------------------------------

section_names = st.text(alphabet="abcdefghij_", min_size=1, max_size=10)
# Section bodies must not themselves contain marker lines.
section_bodies = st.text(max_size=80).filter(
    lambda s: "<<TASK:" not in s and "<<SECTION:" not in s
)


class TestPromptProperties:
    @given(section_names, st.dictionaries(section_names, section_bodies, max_size=4))
    def test_prompt_roundtrip(self, task, sections):
        prompt = render_task_prompt(task, sections)
        parsed_task, parsed_sections = parse_task_prompt(prompt)
        assert parsed_task == task
        for name, body in sections.items():
            assert parsed_sections[name] == body.strip("\n")


# ----------------------------------------------------------------------
# JSON repair
# ----------------------------------------------------------------------


class TestRepairProperties:
    @given(json_values)
    def test_clean_json_unchanged(self, value):
        assert repair_json(json.dumps(value)) == value

    @given(
        st.dictionaries(
            st.text(alphabet="abcxyz", min_size=1, max_size=6),
            st.integers(-100, 100) | st.text(alphabet="mnop ", max_size=10),
            min_size=1,
            max_size=5,
        ),
        st.integers(1, 100),
    )
    def test_truncated_object_repairs_to_subset(self, obj, cut_percent):
        serialized = json.dumps(obj)
        cut = max(1, len(serialized) * cut_percent // 100)
        fragment = serialized[:cut]
        try:
            repaired = repair_json(fragment)
        except MalformedOutputError:
            return  # some cuts are hopeless; that's allowed
        if isinstance(repaired, dict):
            for key, value in repaired.items():
                if key in obj and value is not None:
                    # recovered values are either exact or a truncation
                    if isinstance(obj[key], str) and isinstance(value, str):
                        assert obj[key].startswith(value) or obj[key] == value


# ----------------------------------------------------------------------
# Math evaluation vs Python eval
# ----------------------------------------------------------------------


class TestMathProperties:
    @given(
        st.integers(-50, 50),
        st.integers(-50, 50),
        st.integers(1, 50),
    )
    def test_matches_python_arithmetic(self, a, b, c):
        expression = "#1 + #2 * 3 - #3 / 2"
        expected = a + b * 3 - c / 2
        assert evaluate(expression, {1: a, 2: b, 3: c}) == pytest.approx(expected)

    @given(st.text(max_size=30))
    def test_never_executes_arbitrary_code(self, text):
        # Any input either evaluates to a float or raises MathEvaluationError.
        try:
            result = evaluate(text, {})
        except MathEvaluationError:
            return
        assert isinstance(result, float)


# ----------------------------------------------------------------------
# Aggregates
# ----------------------------------------------------------------------


class TestAggregateProperties:
    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=30))
    def test_sum_avg_consistent(self, values):
        docs = [Document(properties={"v": v}) for v in values]
        total = aggregate_field(docs, "sum", "v")
        avg = aggregate_field(docs, "avg", "v")
        assert total == pytest.approx(sum(values))
        assert avg == pytest.approx(sum(values) / len(values))
        assert aggregate_field(docs, "min", "v") == min(values)
        assert aggregate_field(docs, "max", "v") == max(values)

    @given(st.lists(st.integers(0, 20), max_size=30))
    def test_sort_is_ordered_and_total(self, values):
        docs = [Document(properties={"v": v}) for v in values]
        ordered = sort_documents(docs, "v")
        assert len(ordered) == len(docs)
        numbers = [d.properties["v"] for d in ordered]
        assert numbers == sorted(values)

    @given(st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=40))
    def test_top_k_counts_exact(self, values):
        docs = [Document(properties={"g": v}) for v in values]
        (winner, count), *_ = top_k_values(docs, "g", k=1)
        assert count == max(values.count(x) for x in set(values))
        assert values.count(winner) == count


# ----------------------------------------------------------------------
# Execution engine
# ----------------------------------------------------------------------


class TestExecutionProperties:
    @given(st.lists(st.integers(-100, 100), max_size=50), st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_parallel_equals_serial(self, items, workers):
        plan = Plan.from_items(items).map(lambda x: x * 2).filter(lambda x: x % 3 != 0)
        serial = Executor(parallelism=1).take_all(plan)
        parallel = Executor(parallelism=workers).take_all(plan)
        assert serial == parallel

    @given(st.lists(st.integers(), max_size=30))
    def test_count_equals_len(self, items):
        plan = Plan.from_items(items)
        assert Executor().count(plan) == len(items)


# ----------------------------------------------------------------------
# Index invariants
# ----------------------------------------------------------------------

words = st.text(alphabet="abcdefg ", min_size=1, max_size=30).filter(str.strip)


class TestIndexProperties:
    @given(st.dictionaries(st.uuids().map(str), words, min_size=1, max_size=10))
    @settings(max_examples=25, deadline=None)
    def test_bm25_results_only_contain_matching_docs(self, corpus):
        index = KeywordIndex()
        for doc_id, text in corpus.items():
            index.add(doc_id, text)
        query_word = next(iter(corpus.values())).split()[0]
        for hit in index.search(query_word, k=20):
            assert query_word in corpus[hit.doc_id].split()

    @given(st.lists(st.text(alphabet="abcdef gh", min_size=3, max_size=30), min_size=1, max_size=15, unique=True))
    @settings(max_examples=25, deadline=None)
    def test_vector_self_retrieval(self, texts):
        embedder = HashingEmbedder(dimensions=64)
        index = VectorIndex(dimensions=64)
        for i, text in enumerate(texts):
            index.add(str(i), embedder.embed(text))
        # searching for an indexed text must rank it first (or tie).
        target = texts[0]
        hits = index.search(embedder.embed(target), k=len(texts))
        top_score = hits[0].score
        target_score = next(h.score for h in hits if h.doc_id == "0")
        assert target_score == pytest.approx(top_score, abs=1e-9) or target_score <= top_score

    @given(st.lists(st.floats(-1, 1, allow_nan=False), min_size=8, max_size=8))
    def test_vector_scores_bounded(self, vector):
        index = VectorIndex(dimensions=8)
        index.add("a", [1, 0, 0, 0, 0, 0, 0, 0])
        for hit in index.search(vector, k=1):
            assert -1.0 - 1e-9 <= hit.score <= 1.0 + 1e-9
