"""Tests for the Aryn Partitioner stack: segmentation, tables, OCR, trees."""

import random

import pytest

from repro.datagen import generate_ntsb_corpus
from repro.datagen.render import PageLayouter
from repro.docmodel import BoundingBox, Document, RawDocument, TableElement
from repro.partitioner import (
    TableModelConfig,
    ACCURATE_OCR,
    ARYN_DETECTOR,
    ArynPartitioner,
    CLOUD_BASELINE_DETECTOR,
    DetectorConfig,
    HIGH_FIDELITY_TABLE_MODEL,
    LOW_FIDELITY_TABLE_MODEL,
    NaiveTextPartitioner,
    POOR_OCR,
    SegmentationModel,
    SimulatedOCR,
    TableStructureModel,
    build_section_tree,
    extract_cell_text,
    merge_continuation_tables,
)
from repro.docmodel.elements import Element
from repro.docmodel.raw import RawTextRun
from repro.docmodel.table import Table


@pytest.fixture(scope="module")
def report_doc():
    _, docs = generate_ntsb_corpus(1, seed=55)
    return docs[0]


class TestSegmentationModel:
    def test_deterministic(self, report_doc):
        model = SegmentationModel(ARYN_DETECTOR, seed=1)
        a = model.detect(report_doc.pages[0], page_key="k")
        b = model.detect(report_doc.pages[0], page_key="k")
        assert a == b

    def test_page_key_varies_noise(self, report_doc):
        model = SegmentationModel(ARYN_DETECTOR, seed=1)
        a = model.detect(report_doc.pages[0], page_key="k1")
        b = model.detect(report_doc.pages[0], page_key="k2")
        assert a != b

    def test_sorted_by_confidence(self, report_doc):
        model = SegmentationModel(ARYN_DETECTOR, seed=0)
        dets = model.detect(report_doc.pages[0], page_key="x")
        confidences = [d.confidence for d in dets]
        assert confidences == sorted(confidences, reverse=True)

    def test_perfect_detector_recovers_all_regions(self, report_doc):
        perfect = DetectorConfig(
            name="perfect",
            detect_prob=1.0,
            jitter_frac=0.0,
            label_confusion=0.0,
            false_positives_per_page=0.0,
            confidence_noise=0.0,
        )
        model = SegmentationModel(perfect, seed=0)
        page = report_doc.pages[0]
        dets = model.detect(page, page_key="x")
        assert len(dets) == len(page.boxes)
        truth = sorted((b.label, b.bbox.to_tuple()) for b in page.boxes)
        got = sorted((d.label, d.bbox.to_tuple()) for d in dets)
        assert truth == got

    def test_weak_detector_finds_fewer(self, report_doc):
        strong = SegmentationModel(ARYN_DETECTOR, seed=0)
        weak = SegmentationModel(CLOUD_BASELINE_DETECTOR, seed=0)
        page = report_doc.pages[0]
        n_true = len(page.boxes)
        # Count detections that match a true region's label closely enough.
        def matched(model):
            count = 0
            for det in model.detect(page, page_key="x"):
                for box in page.boxes:
                    if det.label == box.label and det.bbox.iou(box.bbox) > 0.5:
                        count += 1
                        break
            return count

        assert matched(strong) > matched(weak)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            DetectorConfig(name="bad", detect_prob=0.5, jitter_frac=0.0,
                           label_confusion=0.0, false_positives_per_page=0.0,
                           confidence_correct=2.0)
        with pytest.raises(ValueError):
            DetectorConfig(name="bad", detect_prob=1.5)
        with pytest.raises(ValueError):
            DetectorConfig(name="bad", jitter_frac=-0.1)


class TestTableRecovery:
    def _table_page(self):
        layout = PageLayouter()
        layout.add_table([["Name", "Qty"], ["bolt", "4"], ["nut", "8"]])
        return layout.build("t").pages[0]

    def test_high_fidelity_recovers_grid(self):
        page = self._table_page()
        region = next(b for b in page.boxes if b.label == "Table")
        model = TableStructureModel(HIGH_FIDELITY_TABLE_MODEL, seed=0)
        table = model.recover(region, page, region_key="k")
        assert table.to_records() == [
            {"Name": "bolt", "Qty": "4"},
            {"Name": "nut", "Qty": "8"},
        ]

    def test_low_fidelity_loses_cells(self):
        page = self._table_page()
        region = next(b for b in page.boxes if b.label == "Table")
        high = TableStructureModel(HIGH_FIDELITY_TABLE_MODEL, seed=3)
        low = TableStructureModel(LOW_FIDELITY_TABLE_MODEL, seed=3)
        # Measure over many seeds: low fidelity must lose strictly more text.
        high_cells = low_cells = 0
        for seed in range(30):
            high_cells += len(
                TableStructureModel(HIGH_FIDELITY_TABLE_MODEL, seed=seed)
                .recover(region, page, "k").cells
            )
            recovered = TableStructureModel(LOW_FIDELITY_TABLE_MODEL, seed=seed).recover(
                region, page, "k"
            )
            low_cells += len(recovered.cells) if recovered else 0
        assert low_cells < high_cells

    def test_non_table_region_returns_none(self):
        page = self._table_page()
        region = next(b for b in page.boxes if b.label == "Page-footer")
        assert region.table is None
        model = TableStructureModel()
        assert model.recover(region, page) is None

    def test_extract_cell_text_geometry(self):
        runs = [
            RawTextRun("inside", BoundingBox(1, 1, 5, 3)),
            RawTextRun("outside", BoundingBox(50, 50, 60, 55)),
        ]
        assert extract_cell_text(BoundingBox(0, 0, 10, 10), runs) == "inside"


class TestMergeContinuation:
    def test_merges_compatible_fragments(self):
        first = Table.from_rows([["H1", "H2"], ["a", "1"]])
        second = Table.from_rows([["b", "2"]], header=False)
        merged = merge_continuation_tables([first, second], [False, True])
        assert len(merged) == 1
        assert merged[0].num_rows == 3

    def test_incompatible_fragment_kept_separate(self):
        first = Table.from_rows([["H1", "H2"], ["a", "1"]])
        odd = Table.from_rows([["x", "y", "z"]], header=False)
        merged = merge_continuation_tables([first, odd], [False, True])
        assert len(merged) == 2

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ValueError):
            merge_continuation_tables([Table()], [True, False])


class TestOCR:
    def test_clean_region_reads_verbatim(self, report_doc):
        box = report_doc.pages[0].boxes[0]
        ocr = SimulatedOCR(ACCURATE_OCR, seed=0)
        assert ocr.read_region(box) == box.text()

    def test_scanned_region_gets_noise(self):
        rng = random.Random(0)
        ocr = SimulatedOCR(POOR_OCR, seed=0)
        original = "the quick brown fox jumps over the lazy dog" * 5
        corrupted = ocr.corrupt(original, rng)
        assert corrupted != original
        # but it is recognisably the same text
        import difflib

        ratio = difflib.SequenceMatcher(
            None, original, corrupted, autojunk=False
        ).ratio()
        assert ratio > 0.4  # degraded but recognisable
        accurate = SimulatedOCR(ACCURATE_OCR, seed=0).corrupt(
            original, random.Random(0)
        )
        accurate_ratio = difflib.SequenceMatcher(
            None, original, accurate, autojunk=False
        ).ratio()
        assert accurate_ratio > ratio

    def test_accurate_ocr_better_than_poor(self):
        original = "hello world this is a scanned page of text" * 10
        def errors(config):
            corrupted = SimulatedOCR(config, seed=1).corrupt(
                original, random.Random(1)
            )
            return sum(1 for a, b in zip(original, corrupted) if a != b) + abs(
                len(original) - len(corrupted)
            )
        assert errors(ACCURATE_OCR) < errors(POOR_OCR)


class TestSectionTree:
    def test_sections_group_under_headers(self):
        elements = [
            Element(type="Title", text="T"),
            Element(type="Section-header", text="Intro"),
            Element(type="Text", text="p1"),
            Element(type="Section-header", text="Methods"),
            Element(type="Text", text="p2"),
            Element(type="Page-footer", text="1"),
        ]
        root = build_section_tree(elements)
        sections = [c for c in root.children if getattr(c, "label", None) == "section"]
        assert [s.title for s in sections] == ["Intro", "Methods"]
        assert sections[0].children[1].text == "p1"

    def test_orphan_elements_stay_at_root(self):
        elements = [Element(type="Text", text="stray")]
        root = build_section_tree(elements)
        assert root.children[0].text == "stray"


class TestArynPartitionerEndToEnd:
    def test_partition_produces_tree(self, report_doc):
        doc = ArynPartitioner(seed=0).partition(report_doc)
        assert doc.doc_id == report_doc.doc_id
        assert doc.root is not None
        assert len(doc.elements) > 5
        assert doc.properties["num_pages"] == report_doc.num_pages()

    def test_partition_document_with_binary(self, report_doc):
        wrapped = Document(doc_id=report_doc.doc_id, binary=report_doc.to_bytes())
        doc = ArynPartitioner(seed=0).partition(wrapped)
        assert doc.binary is None
        assert doc.elements

    def test_partition_without_binary_rejected(self):
        with pytest.raises(ValueError):
            ArynPartitioner().partition(Document.from_text("no binary"))

    def test_partition_wrong_type_rejected(self):
        with pytest.raises(TypeError):
            ArynPartitioner().partition("a string")

    def test_tables_recovered_with_structure(self, report_doc):
        doc = ArynPartitioner(
            detector=DetectorConfig(
                name="perfect", detect_prob=1.0, jitter_frac=0.0,
                label_confusion=0.0, false_positives_per_page=0.0,
                confidence_noise=0.0,
            ),
            seed=0,
        ).partition(report_doc)
        tables = [e for e in doc.elements if isinstance(e, TableElement)]
        assert tables
        injuries = next(
            (t for t in tables if "Fatal" in t.table.to_text()), None
        )
        assert injuries is not None
        assert injuries.table.num_cols == 2

    def test_cross_page_table_merged(self):
        layout = PageLayouter()
        layout.add_paragraphs(["filler " * 320])
        rows = [["Part", "Qty"]] + [[f"part-{i}", str(i)] for i in range(60)]
        layout.add_table(rows)
        raw = layout.build("split-doc")
        fragments = [
            b for p in raw.pages for b in p.boxes if b.label == "Table"
        ]
        assert len(fragments) >= 2  # the corpus really split the table
        partitioner = ArynPartitioner(
            detector=DetectorConfig(
                name="perfect", detect_prob=1.0, jitter_frac=0.0,
                label_confusion=0.0, false_positives_per_page=0.0,
                confidence_noise=0.0,
            ),
            table_model=TableModelConfig(
                name="perfect-tables", cell_miss_prob=0.0, row_merge_prob=0.0
            ),
            seed=0,
        )
        doc = partitioner.partition(raw)
        tables = [e for e in doc.elements if isinstance(e, TableElement)]
        assert len(tables) == 1
        assert tables[0].table.num_rows == 61
        # the merged table answers a lookup that spans the page break
        assert tables[0].table.lookup("Part", "part-55", "Qty") == ["55"]

    def test_merge_disabled_keeps_fragments(self):
        layout = PageLayouter()
        layout.add_paragraphs(["filler " * 320])
        rows = [["Part", "Qty"]] + [[f"p{i}", str(i)] for i in range(60)]
        layout.add_table(rows)
        raw = layout.build("split-doc-2")
        partitioner = ArynPartitioner(
            detector=DetectorConfig(
                name="perfect", detect_prob=1.0, jitter_frac=0.0,
                label_confusion=0.0, false_positives_per_page=0.0,
                confidence_noise=0.0,
            ),
            seed=0,
            merge_tables=False,
        )
        doc = partitioner.partition(raw)
        tables = [e for e in doc.elements if isinstance(e, TableElement)]
        assert len(tables) >= 2

    def test_image_summary_attached(self, report_doc):
        doc = ArynPartitioner(seed=0, summarize_images=True).partition(report_doc)
        images = doc.images
        if images:  # detection of the picture is probabilistic
            assert any("accident site" in (i.summary or "") for i in images)

    def test_deterministic_partitioning(self, report_doc):
        a = ArynPartitioner(seed=4).partition(report_doc)
        b = ArynPartitioner(seed=4).partition(report_doc)
        assert [e.text for e in a.elements] == [e.text for e in b.elements]


class TestNaiveBaseline:
    def test_flat_chunks_no_tables(self, report_doc):
        doc = NaiveTextPartitioner(chunk_chars=500).partition(report_doc)
        assert doc.tables == []
        assert all(e.type == "Text" for e in doc.elements)
        assert len(doc.elements) >= 2

    def test_loses_scanned_text(self):
        layout = PageLayouter()
        layout.add_image("scan", contains_text="only visible to ocr")
        raw = layout.build("scan-doc")
        naive = NaiveTextPartitioner().partition(raw)
        assert "only visible" not in naive.text_representation()
