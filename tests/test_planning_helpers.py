"""Unit tests for the planner skill's internal parsing helpers and for
plan-validation fuzzing (random JSON must never crash validation with
anything but PlanValidationError)."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm.skills import planning
from repro.luna import LogicalPlan, PlanValidationError


class TestClauseSplitting:
    def test_year_peeled(self):
        clauses = planning._split_clauses("caused by icing in 2022")
        assert "2022" in clauses
        assert any("icing" in c for c in clauses)

    def test_state_peeled(self):
        clauses = planning._split_clauses("incidents in Alaska caused by wind")
        assert any(c.startswith("in Alaska") for c in clauses)

    def test_and_splits(self):
        clauses = planning._split_clauses("caused by wind and involving fatalities")
        assert len(clauses) == 2

    def test_empty(self):
        assert planning._split_clauses("") == []


class TestDatasetNounDetection:
    @pytest.mark.parametrize("phrase", ["incidents", "the reports", "all companies"])
    def test_dataset_nouns(self, phrase):
        assert planning._is_dataset_noun_phrase(phrase)

    @pytest.mark.parametrize("phrase", ["wind incidents", "icing", ""])
    def test_content_phrases(self, phrase):
        assert not planning._is_dataset_noun_phrase(phrase)


class TestLocationHelpers:
    def test_state_in_clause(self):
        assert planning._state_in_clause("incidents in Alaska") == "AK"
        assert planning._state_in_clause("incidents in New Mexico") == "NM"
        assert planning._state_in_clause("incidents in Cloud") is None

    def test_strip_location(self):
        assert planning._strip_location("incidents in Alaska caused by wind") == (
            "incidents caused by wind"
        )

    def test_sector_in_clause(self):
        assert planning._sector_in_clause("companies in the AI sector") == "AI"
        assert planning._sector_in_clause("companies in the BNPL market") == "BNPL"
        assert planning._sector_in_clause("companies in Texas") is None

    def test_strip_sector(self):
        stripped = planning._strip_sector("companies in the Cloud sector lowered guidance")
        assert stripped == "companies lowered guidance"


class TestJoinSuffix:
    def _builder(self, fields):
        return planning._PlanBuilder({"index": "p", "fields": fields}, None)

    def test_peels_matching_suffix(self):
        builder = self._builder({"company": "string"})
        secondary = [{"index": "db", "fields": {"company": "string", "competitors": "list"}}]
        base, join = planning._peel_join_suffix(
            "List the companies and their competitors.", secondary, builder
        )
        assert base == "List the companies"
        assert join == ("db", "company", "competitors")

    def test_no_secondary_no_join(self):
        builder = self._builder({"company": "string"})
        question = "List the companies and their competitors."
        base, join = planning._peel_join_suffix(question, [], builder)
        assert join is None
        assert base == question

    def test_unserveable_noun_no_join(self):
        builder = self._builder({"company": "string"})
        secondary = [{"index": "db", "fields": {"company": "string"}}]
        _, join = planning._peel_join_suffix(
            "List the companies and their enemies.", secondary, builder
        )
        assert join is None

    def test_no_shared_key_no_join(self):
        builder = self._builder({"title": "string"})
        secondary = [{"index": "db", "fields": {"company": "string", "competitors": "list"}}]
        _, join = planning._peel_join_suffix(
            "List the companies and their competitors.", secondary, builder
        )
        assert join is None


json_scalars = st.none() | st.booleans() | st.integers(-5, 5) | st.text(max_size=8)
node_dicts = st.dictionaries(
    st.sampled_from(
        ["operation", "inputs", "description", "field", "op", "value", "condition",
         "index", "k", "fields", "expression", "func"]
    ),
    json_scalars | st.lists(st.integers(-2, 4), max_size=3),
    max_size=6,
)


class TestValidationFuzz:
    @given(st.lists(node_dicts, max_size=5))
    @settings(max_examples=200, deadline=None)
    def test_validate_raises_only_plan_errors(self, nodes):
        try:
            plan = LogicalPlan.from_json(nodes)
            plan.validate()
        except PlanValidationError:
            return
        # If validation passed, the plan must be structurally executable:
        for index, node in enumerate(plan.nodes):
            for input_index in node.inputs:
                assert 0 <= input_index < index

    @given(st.text(max_size=80))
    @settings(max_examples=100, deadline=None)
    def test_from_json_garbage_strings(self, text):
        try:
            LogicalPlan.from_json(text)
        except (PlanValidationError, json.JSONDecodeError):
            pass
