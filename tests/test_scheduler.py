"""Tests for repro.runtime: the shared LLM request scheduler.

Covers the edge cases the serving layer must get right: the zero-wait
batch window, dedup of a failing request (all waiters share the
exception), the priority starvation guard, the backpressure rejection
path, clean shutdown with queued requests, and composition with the
reliability layer under a fault-injected brownout — the queue must drain
without deadlock or lost futures.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.faults import BrownoutWindow, FaultInjector, FaultSchedule
from repro.llm import (
    CircuitBreaker,
    CircuitOpenError,
    LLMClient,
    LLMResponse,
    ReliableLLM,
    SimulatedLLM,
    TransientLLMError,
    Usage,
)
from repro.runtime import (
    Priority,
    RequestScheduler,
    ScheduledLLM,
    SchedulerClosedError,
    SchedulerSaturatedError,
)


class RecordingBackend(LLMClient):
    """Deterministic backend that records call order and can be gated.

    ``gate`` (when given) blocks every call until it is set — tests use
    it to pile requests into the queue while dispatch capacity is busy.
    ``fail_substring`` makes matching prompts raise TransientLLMError.
    """

    def __init__(self, gate: "threading.Event | None" = None, fail_substring=None):
        self.gate = gate
        self.fail_substring = fail_substring
        self.calls = []
        self._lock = threading.Lock()

    def complete(self, prompt, model="sim-large", max_output_tokens=None, temperature=0.0):
        if self.gate is not None:
            assert self.gate.wait(timeout=10.0), "backend gate never opened"
        with self._lock:
            self.calls.append(prompt)
        if self.fail_substring is not None and self.fail_substring in prompt:
            raise TransientLLMError(f"induced failure for {prompt!r}")
        return LLMResponse(text=f"echo:{prompt}", model=model, usage=Usage(1, 1, 1))


def make_scheduler(backend=None, **kwargs):
    kwargs.setdefault("max_wait_ms", 5.0)
    return RequestScheduler(client=backend or RecordingBackend(), **kwargs)


class TestBasics:
    def test_roundtrip(self):
        with make_scheduler() as sched:
            response = sched.complete("hello", model="sim-small", timeout=10)
            assert response.text == "echo:hello"
            m = sched.metrics()
            assert m["submitted"] == m["completed"] == 1

    def test_priority_accepts_strings(self):
        with make_scheduler() as sched:
            future = sched.submit("p", priority="interactive")
            assert future.result(timeout=10).text == "echo:p"
            with pytest.raises(ValueError):
                sched.submit("p", priority="urgent")

    def test_submit_after_close_raises(self):
        sched = make_scheduler()
        sched.close()
        with pytest.raises(SchedulerClosedError):
            sched.submit("late")

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            RequestScheduler(max_batch_size=0)
        with pytest.raises(ValueError):
            RequestScheduler(max_wait_ms=-1)
        with pytest.raises(ValueError):
            RequestScheduler(max_queue_depth=0)


class TestBatching:
    def test_micro_batch_collects_compatible_requests(self):
        gate = threading.Event()
        backend = RecordingBackend(gate=gate)
        # One dispatch slot: the first request occupies it (blocked on the
        # gate) while the rest pile up and must form one batch.
        sched = RequestScheduler(
            client=ReliableLLM(backend, max_retries=0),
            max_batch_size=8,
            max_wait_ms=50.0,
            dispatch_parallelism=1,
        )
        try:
            futures = [sched.submit(f"p{i}") for i in range(5)]
            time.sleep(0.02)  # let the worker claim the first batch
            gate.set()
            for future in futures:
                assert future.result(timeout=10).text.startswith("echo:")
            histogram = sched.stats().batch_size_histogram
            assert max(histogram) > 1, f"no multi-request batch: {histogram}"
        finally:
            sched.close()

    def test_zero_wait_window_dispatches_immediately(self):
        with make_scheduler(max_wait_ms=0.0) as sched:
            futures = [sched.submit(f"p{i}") for i in range(6)]
            results = [f.result(timeout=10) for f in futures]
            assert [r.text for r in results] == [f"echo:p{i}" for i in range(6)]
            m = sched.metrics()
            assert m["completed"] == 6
            assert m["batches_dispatched"] >= 1

    def test_incompatible_models_never_share_a_batch(self):
        gate = threading.Event()
        backend = RecordingBackend(gate=gate)
        sched = RequestScheduler(
            client=backend, max_batch_size=8, max_wait_ms=50.0, dispatch_parallelism=1
        )
        try:
            # Occupies the only dispatch slot; its model is distinct so the
            # a/b requests cannot join its batch window.
            hold = sched.submit("hold", model="sim-oracle")
            futures = [
                sched.submit(f"a{i}", model="sim-small") for i in range(2)
            ] + [sched.submit(f"b{i}", model="sim-large") for i in range(2)]
            time.sleep(0.02)
            gate.set()
            hold.result(timeout=10)
            for future in futures:
                future.result(timeout=10)
            # 1 (hold) + one batch per model at minimum.
            assert sched.stats().batches_dispatched >= 3
        finally:
            sched.close()

    def test_nonzero_temperature_is_not_batched_or_deduped(self):
        with make_scheduler() as sched:
            f1 = sched.submit("same", temperature=0.5)
            f2 = sched.submit("same", temperature=0.5)
            assert f1 is not f2
            f1.result(timeout=10)
            f2.result(timeout=10)
            assert sched.metrics()["dedup_hits"] == 0


class TestDedup:
    def test_identical_inflight_requests_share_one_upstream_call(self):
        gate = threading.Event()
        backend = RecordingBackend(gate=gate)
        sched = RequestScheduler(client=backend, dispatch_parallelism=1, max_wait_ms=0.0)
        try:
            hold = sched.submit("hold")
            futures = [sched.submit("dup") for _ in range(4)]
            assert len({id(f) for f in futures}) == 1  # the same future
            gate.set()
            hold.result(timeout=10)
            results = [f.result(timeout=10) for f in futures]
            assert all(r.text == "echo:dup" for r in results)
            assert backend.calls.count("dup") == 1
            m = sched.metrics()
            assert m["dedup_hits"] == 3
            assert m["admitted"] == 2  # hold + one dup
        finally:
            sched.close()

    def test_failed_dedup_request_shares_the_exception(self):
        gate = threading.Event()
        backend = RecordingBackend(gate=gate, fail_substring="boom")
        sched = RequestScheduler(client=backend, dispatch_parallelism=1, max_wait_ms=0.0)
        try:
            hold = sched.submit("hold")
            futures = [sched.submit("boom") for _ in range(3)]
            gate.set()
            hold.result(timeout=10)
            errors = []
            for future in futures:
                with pytest.raises(TransientLLMError) as excinfo:
                    future.result(timeout=10)
                errors.append(excinfo.value)
            # One upstream call, one exception instance, seen by all waiters.
            assert backend.calls.count("boom") == 1
            assert len({id(e) for e in errors}) == 1
            assert sched.metrics()["failed"] == 1
        finally:
            sched.close()

    def test_dedup_key_is_cleared_after_resolution(self):
        backend = RecordingBackend()
        with make_scheduler(backend) as sched:
            sched.complete("p", timeout=10)
            sched.complete("p", timeout=10)
            # Sequential identical requests are separate upstream calls
            # (in-flight dedup, not a cache — that layer is ReliableLLM's).
            assert backend.calls.count("p") == 2


class TestPriorities:
    def test_interactive_dispatches_before_bulk(self):
        gate = threading.Event()
        backend = RecordingBackend(gate=gate)
        sched = RequestScheduler(
            client=backend, dispatch_parallelism=1, max_batch_size=1, max_wait_ms=0.0
        )
        try:
            hold = sched.submit("hold")
            bulk = [sched.submit(f"bulk{i}", priority=Priority.BULK) for i in range(3)]
            inter = [
                sched.submit(f"inter{i}", priority=Priority.INTERACTIVE)
                for i in range(3)
            ]
            time.sleep(0.02)
            gate.set()
            for future in [hold, *bulk, *inter]:
                future.result(timeout=10)
            order = backend.calls
            assert max(
                order.index(f"inter{i}") for i in range(3)
            ) < min(order.index(f"bulk{i}") for i in range(3))
        finally:
            sched.close()

    def test_starvation_guard_promotes_bulk(self):
        gate = threading.Event()
        backend = RecordingBackend(gate=gate)
        sched = RequestScheduler(
            client=backend,
            dispatch_parallelism=1,
            max_batch_size=1,
            max_wait_ms=0.0,
            starvation_limit=2,
        )
        try:
            hold = sched.submit("hold")
            inter = [
                sched.submit(f"inter{i}", priority=Priority.INTERACTIVE)
                for i in range(6)
            ]
            bulk = sched.submit("bulk", priority=Priority.BULK)
            time.sleep(0.02)
            gate.set()
            for future in [hold, *inter, bulk]:
                future.result(timeout=10)
            order = backend.calls
            # BULK must not wait behind all six INTERACTIVE requests.
            assert order.index("bulk") < order.index("inter5")
            assert sched.metrics()["starvation_promotions"] >= 1
        finally:
            sched.close()


class TestBackpressure:
    def test_full_queue_rejects_submission(self):
        gate = threading.Event()
        backend = RecordingBackend(gate=gate)
        sched = RequestScheduler(
            client=backend,
            dispatch_parallelism=1,
            max_batch_size=1,
            max_wait_ms=0.0,
            max_queue_depth=2,
            dedup=False,
        )
        try:
            futures = [sched.submit("hold")]
            time.sleep(0.02)  # first request leaves the queue for dispatch
            futures += [sched.submit(f"q{i}") for i in range(2)]
            with pytest.raises(SchedulerSaturatedError):
                sched.submit("overflow")
            assert sched.metrics()["rejected"] == 1
            gate.set()
            for future in futures:
                future.result(timeout=10)  # admitted work still completes
        finally:
            sched.close()

    def test_priority_queues_are_bounded_independently(self):
        gate = threading.Event()
        backend = RecordingBackend(gate=gate)
        sched = RequestScheduler(
            client=backend,
            dispatch_parallelism=1,
            max_batch_size=1,
            max_wait_ms=0.0,
            max_queue_depth=1,
            dedup=False,
        )
        try:
            held = [sched.submit("hold")]
            time.sleep(0.02)
            held.append(sched.submit("bulk-queued", priority=Priority.BULK))
            with pytest.raises(SchedulerSaturatedError):
                sched.submit("bulk-overflow", priority=Priority.BULK)
            # The INTERACTIVE queue still has room.
            held.append(sched.submit("inter", priority=Priority.INTERACTIVE))
            gate.set()
            for future in held:
                future.result(timeout=10)
        finally:
            sched.close()


class TestShutdown:
    def test_drain_completes_queued_requests(self):
        gate = threading.Event()
        backend = RecordingBackend(gate=gate)
        sched = RequestScheduler(
            client=backend, dispatch_parallelism=1, max_batch_size=1, max_wait_ms=0.0
        )
        futures = [sched.submit(f"p{i}") for i in range(4)]
        time.sleep(0.02)
        gate.set()
        sched.close(drain=True)
        assert [f.result(timeout=0).text for f in futures] == [
            f"echo:p{i}" for i in range(4)
        ]

    def test_no_drain_fails_queued_futures_without_losing_any(self):
        gate = threading.Event()
        backend = RecordingBackend(gate=gate)
        sched = RequestScheduler(
            client=backend, dispatch_parallelism=1, max_batch_size=1, max_wait_ms=0.0
        )
        futures = [sched.submit(f"p{i}") for i in range(5)]
        time.sleep(0.02)  # first request is in flight, rest queued
        closer = threading.Thread(target=sched.close, kwargs={"drain": False})
        closer.start()
        time.sleep(0.02)
        gate.set()
        closer.join(timeout=10)
        assert not closer.is_alive()
        outcomes = []
        for future in futures:
            assert future.done(), "a future was lost in shutdown"
            try:
                outcomes.append(future.result(timeout=0).text)
            except SchedulerClosedError:
                outcomes.append("cancelled")
        assert len(outcomes) == 5
        assert sched.metrics()["cancelled"] == outcomes.count("cancelled") >= 1

    def test_close_is_idempotent(self):
        sched = make_scheduler()
        sched.close()
        sched.close()


class TestChaosComposition:
    """The scheduler over ReliableLLM over a fault-injected backend."""

    def test_brownout_drains_queue_without_deadlock_or_lost_futures(self):
        schedule = FaultSchedule(
            seed=7,
            transient_rate=0.1,
            brownouts=(BrownoutWindow(5, 25),),
        )
        injector = FaultInjector(schedule)
        reliable = ReliableLLM(
            injector.wrap_llm(SimulatedLLM(seed=3)),
            max_retries=2,
            backoff_base_s=0.0,
            circuit_breaker=CircuitBreaker(failure_threshold=3, recovery_time_s=0.01),
        )
        sched = RequestScheduler(
            client=reliable, max_batch_size=4, max_wait_ms=1.0, dispatch_parallelism=2
        )
        try:
            prompt = "<<TASK:filter>>\n<<SECTION:condition>>\nwindy\n<<SECTION:document>>\ndoc {i}"
            futures = [sched.submit(prompt.format(i=i)) for i in range(30)]
            resolved = failed = 0
            for future in futures:
                try:
                    future.result(timeout=30)
                    resolved += 1
                except Exception:
                    failed += 1
            assert resolved + failed == 30, "lost futures"
            m = sched.metrics()
            assert m["completed"] + m["failed"] == 30
            assert m["queue_depth_interactive"] == m["queue_depth_bulk"] == 0
            # The scheduler survives the storm and keeps serving once the
            # circuit breaker's recovery window lets a probe through.
            deadline = time.monotonic() + 10
            while True:
                try:
                    assert sched.complete("after the storm", timeout=30).text
                    break
                except CircuitOpenError:
                    assert time.monotonic() < deadline, "breaker never recovered"
                    time.sleep(0.02)
        finally:
            sched.close()


class TestScheduledLLM:
    def test_complete_json_retries_malformed_output(self):
        class FlakyJSON(LLMClient):
            def __init__(self):
                self.calls = 0

            def complete(self, prompt, model="sim-large", max_output_tokens=None, temperature=0.0):
                self.calls += 1
                text = '{"a": 1' if self.calls == 1 else '{"a": 1}'
                return LLMResponse(text=text, model=model)

        backend = FlakyJSON()
        with make_scheduler(backend) as sched:
            client = ScheduledLLM(sched, Priority.INTERACTIVE)
            # repair_json fixes the truncated first answer in place, so a
            # single call suffices; force a parse by asking for the value.
            assert client.complete_json("p") == {"a": 1}

    def test_complete_many_preserves_order_and_isolates_failures(self):
        backend = RecordingBackend(fail_substring="bad")
        with make_scheduler(backend) as sched:
            client = ScheduledLLM(sched)
            results = client.complete_many(
                ["a", "bad", "c"], return_exceptions=True
            )
            assert results[0].text == "echo:a"
            assert isinstance(results[1], TransientLLMError)
            assert results[2].text == "echo:c"
            with pytest.raises(TransientLLMError):
                client.complete_many(["bad"])


class TestContextIntegration:
    def test_pipeline_through_scheduler_matches_direct(self, ntsb_corpus):
        from repro.partitioner import ArynPartitioner
        from repro.sycamore import SycamoreContext

        _, raws = ntsb_corpus
        schema = {"state": "string", "weather_related": "bool"}

        def build(scheduler):
            ctx = SycamoreContext(parallelism=4, seed=0, scheduler=scheduler)
            (
                ctx.read.raw(raws[:8])
                .partition(ArynPartitioner(seed=0))
                .extract_properties(schema, model="sim-oracle")
                .write.index("ntsb")
            )
            return [
                (d.doc_id, d.properties.get("state"), d.properties.get("weather_related"))
                for d in ctx.catalog.get("ntsb").all_documents()
            ]

        direct = build(None)
        sched = RequestScheduler(max_batch_size=4, max_wait_ms=2.0)
        try:
            scheduled = build(sched)
            assert sorted(scheduled) == sorted(direct)
            m = sched.metrics()
            assert m["completed"] >= 8
            assert m["queue_depth_bulk"] == 0
        finally:
            sched.close()

    def test_executor_stats_carry_scheduler_delta(self, ntsb_corpus):
        from repro.partitioner import ArynPartitioner
        from repro.sycamore import SycamoreContext

        _, raws = ntsb_corpus
        sched = RequestScheduler(max_batch_size=4, max_wait_ms=1.0)
        try:
            ctx = SycamoreContext(parallelism=2, seed=0, scheduler=sched)
            (
                ctx.read.raw(raws[:4])
                .partition(ArynPartitioner(seed=0))
                .extract_properties({"state": "string"}, model="sim-oracle")
                .write.index("ntsb")
            )
            stats = ctx.last_stats
            assert stats is not None and stats.scheduler is not None
            assert stats.scheduler["completed"] >= 4
        finally:
            sched.close()

    def test_luna_query_uses_interactive_priority(self, ntsb_corpus):
        from repro import Luna
        from repro.partitioner import ArynPartitioner
        from repro.sycamore import SycamoreContext

        _, raws = ntsb_corpus
        sched = RequestScheduler(max_batch_size=4, max_wait_ms=1.0)
        try:
            ctx = SycamoreContext(parallelism=2, seed=0, scheduler=sched)
            (
                ctx.read.raw(raws[:6])
                .partition(ArynPartitioner(seed=0))
                .extract_properties(
                    {"state": "string", "weather_related": "bool"},
                    model="sim-oracle",
                )
                .write.index("ntsb")
            )
            result = Luna(ctx).query(
                "How many incidents were caused by wind?", index="ntsb"
            )
            assert result.answer is not None
            assert sched.metrics()["completed"] > 6  # ETL + query traffic
        finally:
            sched.close()


class TestCompleteManyFix:
    def test_shared_pool_is_reused_across_calls(self):
        llm = ReliableLLM(SimulatedLLM(seed=0), cache_enabled=False)
        prompts = [f"<<TASK:echo>>\n<<SECTION:text>>\np{i}" for i in range(4)]
        llm.complete_many(prompts, parallelism=4)
        pool_first = llm._pool
        llm.complete_many(prompts, parallelism=4)
        assert llm._pool is pool_first is not None
        llm.close()
        assert llm._pool is None

    def test_intra_batch_duplicates_collapse_preserving_order(self):
        backend = RecordingBackend()
        llm = ReliableLLM(backend, cache_enabled=False)
        results = llm.complete_many(["a", "b", "a", "a", "b"], parallelism=4)
        assert [r.text for r in results] == [
            "echo:a", "echo:b", "echo:a", "echo:a", "echo:b"
        ]
        assert sorted(backend.calls) == ["a", "b"]
        llm.close()

    def test_return_exceptions_isolates_failures(self):
        backend = RecordingBackend(fail_substring="bad")
        llm = ReliableLLM(backend, max_retries=0, cache_enabled=False)
        results = llm.complete_many(
            ["ok", "bad", "ok2"], parallelism=2, return_exceptions=True
        )
        assert results[0].text == "echo:ok"
        assert isinstance(results[1], TransientLLMError)
        assert results[2].text == "echo:ok2"
        llm.close()

    def test_sequential_path_still_raises(self):
        backend = RecordingBackend(fail_substring="bad")
        llm = ReliableLLM(backend, max_retries=0, cache_enabled=False)
        with pytest.raises(TransientLLMError):
            llm.complete_many(["bad"], parallelism=1)


class TestPromptPrefixCache:
    def test_prefix_built_prompt_matches_full_render(self):
        from repro.llm.prompts import EXTRACT_PROPERTIES, append_section, render_task_prompt

        prefix = render_task_prompt(
            "extract_properties",
            {"instructions": EXTRACT_PROPERTIES.instructions, "schema": "{}"},
        )
        assert append_section(prefix, "document", "text\n") == EXTRACT_PROPERTIES.render(
            schema="{}", document="text\n"
        )

    def test_factories_hit_the_prefix_cache(self, context):
        from repro.sycamore.llm_transforms import (
            make_llm_filter_fn,
            prompt_prefix_cache_info,
        )

        before = prompt_prefix_cache_info()
        make_llm_filter_fn(context, condition="mentions wind")
        make_llm_filter_fn(context, condition="mentions wind")
        after = prompt_prefix_cache_info()
        assert after["hits"] >= before["hits"] + 1

    def test_transform_output_unchanged_by_hoisting(self, context, ntsb_corpus):
        from repro.partitioner import ArynPartitioner
        from repro.sycamore.llm_transforms import make_summarize_fn

        _, raws = ntsb_corpus
        doc = ArynPartitioner(seed=0).partition(raws[0])
        summarize = make_summarize_fn(context, model="sim-oracle")
        assert summarize(doc).properties["summary"]


class TestCLI:
    def test_runtime_stats_command(self, capsys):
        from repro.cli import main

        assert main(["runtime-stats", "--docs", "6", "--parallelism", "2"]) == 0
        out = capsys.readouterr().out
        assert "batch-size histogram" in out
        assert "dedup hits" in out

    def test_chaos_command_reports_scheduler_stats(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "chaos",
                    "--docs",
                    "6",
                    "--parallelism",
                    "2",
                    "--fault-seed",
                    "42",
                    "--transient-rate",
                    "0.2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "scheduler:" in out
        assert "dead-lettered" in out
