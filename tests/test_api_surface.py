"""Tests pinning the public API surface and remaining thin spots."""

import pytest

from repro import (
    ArynPartitioner,
    DocSet,
    Document,
    Element,
    Luna,
    LunaResult,
    NaiveTextPartitioner,
    RagPipeline,
    SycamoreContext,
    Table,
    __version__,
)
from repro.execution import Executor, Plan
from repro.llm import CostTracker, ReliableLLM, SimulatedLLM, Usage


class TestTopLevelExports:
    def test_version(self):
        assert __version__ == "0.1.0"

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_subpackage_all_exports_resolve(self):
        import importlib

        for module_name in (
            "repro.docmodel",
            "repro.llm",
            "repro.embedding",
            "repro.indexes",
            "repro.execution",
            "repro.partitioner",
            "repro.sycamore",
            "repro.luna",
            "repro.rag",
            "repro.datagen",
            "repro.evaluation",
        ):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert getattr(module, name) is not None, f"{module_name}.{name}"


class TestExecutorValidation:
    def test_batch_size_validation(self):
        with pytest.raises(ValueError):
            Executor(batch_size=0)

    def test_unknown_plan_node_kind(self):
        from repro.execution.plan import PlanNode

        bogus = Plan(PlanNode(kind="teleport", name="t", parent=Plan.from_items([1]).node))
        with pytest.raises(ValueError, match="unknown plan node kind"):
            Executor().take_all(bogus)


class TestCostTrackerByTag:
    def test_by_tag_partitions_records(self):
        tracker = CostTracker()
        tracker.record("sim-large", Usage(10, 1, 1), 0.1, tag="filter")
        tracker.record("sim-large", Usage(20, 2, 1), 0.1, tag="extract")
        tracker.record("sim-large", Usage(30, 3, 1), 0.1, tag="filter")
        by_tag = tracker.by_tag()
        assert by_tag["filter"].calls == 2
        assert by_tag["extract"].input_tokens == 20


class TestContextDefaults:
    def test_context_wraps_bare_backend(self):
        backend = SimulatedLLM(seed=1)
        ctx = SycamoreContext(llm=backend)
        assert isinstance(ctx.llm, ReliableLLM)
        assert ctx.llm.backend is backend

    def test_context_accepts_prewrapped(self):
        wrapped = ReliableLLM(SimulatedLLM(seed=1))
        ctx = SycamoreContext(llm=wrapped)
        assert ctx.llm is wrapped

    def test_default_model_used_by_transforms(self):
        ctx = SycamoreContext(default_model="sim-small", parallelism=1)
        doc = Document.from_text("a gusty crosswind near the runway")
        ctx.read.documents([doc]).llm_filter("wind").count()
        models = {r.model for r in ctx.cost_tracker.records()}
        assert models == {"sim-small"}


class TestLunaResultSurface:
    def test_result_fields_complete(self, indexed_context):
        luna = Luna(indexed_context, planner_model="sim-oracle", policy="quality")
        result = luna.query("How many incidents were caused by icing?", index="ntsb")
        assert isinstance(result, LunaResult)
        assert result.question
        assert result.index == "ntsb"
        assert result.plan.nodes and result.optimized_plan.nodes
        assert isinstance(result.optimization_log, list)
        assert isinstance(result.code, str) and result.code
        assert result.trace.entries
        # Plans are distinct objects: editing the optimized plan must not
        # mutate the recorded original.
        result.optimized_plan.nodes[0].params["index"] = "tampered"
        assert result.plan.nodes[0].params["index"] == "ntsb"


class TestNaivePartitionerSurface:
    def test_chunk_size_respected(self, ntsb_corpus):
        _, raws = ntsb_corpus
        small = NaiveTextPartitioner(chunk_chars=300).partition(raws[0])
        large = NaiveTextPartitioner(chunk_chars=5000).partition(raws[0])
        assert len(small.elements) > len(large.elements)
        assert all(len(e.text) <= 300 for e in small.elements)


class TestRagSurfaceDefaults:
    def test_retrieval_mode_default_vector(self, indexed_context):
        rag = RagPipeline(indexed_context.catalog.get("ntsb"), indexed_context.llm)
        assert rag.retrieval == "vector"
        assert rag.top_k == 5
