"""Whole-program analysis (``repro.analysis.crossmod``) tests.

Covers the project index, all four cross-module rules with positive and
negative fixtures, slice scoping, suppressions, the committed-baseline
self-test, and the scripted two-module deadlock fixture that both the
static rule and the runtime locksmith must catch (and agree on in the
cross-check report).
"""

from __future__ import annotations

import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import Baseline
from repro.analysis.crossmod import (
    XRULES,
    build_index,
    build_lock_graph,
    xlint_paths,
)
from repro.analysis import locksmith

FIXTURES = Path(__file__).parent / "fixtures"


def make_project(tmp_path, files):
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
    return tmp_path


def rules_of(report):
    return sorted({f.rule for f in report.findings})


class TestProjectIndex:
    def test_index_collects_modules_functions_and_locks(self, tmp_path):
        root = make_project(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/box.py": """
                    import threading

                    class Box:
                        def __init__(self):
                            self._lock = threading.Lock()

                        def poke(self):
                            with self._lock:
                                return 1
                """,
            },
        )
        index = build_index([root])
        assert "repro.box" in index.modules
        assert "repro.box:Box.poke" in index.functions
        assert "repro.box:Box._lock" in index.locks
        decl = index.locks["repro.box:Box._lock"]
        assert decl.kind == "Lock"
        assert decl.path.endswith("box.py")

    def test_call_graph_resolves_cross_module_calls(self, tmp_path):
        root = make_project(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/a.py": """
                    from repro.b import helper

                    def caller():
                        return helper()
                """,
                "repro/b.py": """
                    def helper():
                        return 1
                """,
            },
        )
        index = build_index([root])
        callees = {e.callee for e in index.callees_of("repro.a:caller")}
        assert "repro.b:helper" in callees

    def test_whole_repo_indexes_in_one_pass(self):
        index = build_index(["src/repro"])
        assert len(index.modules) > 100
        assert len(index.functions) > 1000
        assert len(index.locks) > 20


class TestLockOrderInversion:
    def test_two_module_cycle_detected(self, tmp_path):
        root = make_project(
            tmp_path,
            {
                "mod_a.py": """
                    import threading
                    from mod_b import credit

                    class AccountA:
                        def __init__(self):
                            self._lock = threading.Lock()

                        def transfer(self, other, amount):
                            with self._lock:
                                credit(other, amount)

                        def debit(self, amount):
                            with self._lock:
                                pass
                """,
                "mod_b.py": """
                    import threading
                    from mod_a import AccountA

                    class AccountB:
                        def __init__(self):
                            self._lock = threading.Lock()

                        def reverse(self, a: AccountA, amount):
                            with self._lock:
                                a.debit(amount)

                    def credit(b: "AccountB", amount):
                        with b._lock:
                            pass
                """,
            },
        )
        report = xlint_paths([root], rules=["lock-order-inversion"])
        assert rules_of(report) == ["lock-order-inversion"]
        assert len(report.findings) == 1
        message = report.findings[0].message
        assert "mod_a:AccountA._lock" in message
        assert "mod_b:AccountB._lock" in message
        assert "via" in message  # call-chain provenance

    def test_consistent_order_is_clean(self, tmp_path):
        root = make_project(
            tmp_path,
            {
                "mod.py": """
                    import threading

                    A = threading.Lock()
                    B = threading.Lock()

                    def one():
                        with A:
                            with B:
                                pass

                    def two():
                        with A:
                            with B:
                                pass
                """,
            },
        )
        report = xlint_paths([root], rules=["lock-order-inversion"])
        assert report.findings == []

    def test_direct_nesting_inversion_same_module(self, tmp_path):
        root = make_project(
            tmp_path,
            {
                "mod.py": """
                    import threading

                    A = threading.Lock()
                    B = threading.Lock()

                    def one():
                        with A:
                            with B:
                                pass

                    def two():
                        with B:
                            with A:
                                pass
                """,
            },
        )
        report = xlint_paths([root], rules=["lock-order-inversion"])
        assert len(report.findings) == 1

    def test_repo_lock_graph_is_acyclic(self):
        index = build_index(["src/repro"])
        graph = build_lock_graph(index)
        assert graph.cycles() == []


class TestFutureEscape:
    def _tree(self, body):
        return {
            "repro/__init__.py": "",
            "repro/serving/__init__.py": "",
            "repro/serving/mod.py": body,
        }

    def test_discarded_and_dead_local_flagged(self, tmp_path):
        root = make_project(
            tmp_path,
            self._tree(
                """
                def make_future(pool):
                    return pool.submit(len, "x")

                def dropper(pool):
                    make_future(pool)

                def dead_local(pool):
                    fut = make_future(pool)
                    return 2
                """
            ),
        )
        report = xlint_paths([root], rules=["future-escape"])
        lines = sorted(f.line for f in report.findings)
        assert len(report.findings) == 2
        assert all(f.rule == "future-escape" for f in report.findings)

    def test_consumed_and_forwarded_are_clean(self, tmp_path):
        root = make_project(
            tmp_path,
            self._tree(
                """
                def make_future(pool):
                    return pool.submit(len, "x")

                def consumer(pool):
                    fut = make_future(pool)
                    return fut.result()

                def forwarder(pool):
                    return make_future(pool)

                def passer(pool, sink):
                    fut = make_future(pool)
                    sink(fut)
                """
            ),
        )
        report = xlint_paths([root], rules=["future-escape"])
        assert report.findings == []

    def test_cold_path_not_audited(self, tmp_path):
        root = make_project(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/datagen/__init__.py": "",
                "repro/datagen/mod.py": """
                    def make_future(pool):
                        return pool.submit(len, "x")

                    def dropper(pool):
                        make_future(pool)
                """,
            },
        )
        report = xlint_paths([root], rules=["future-escape"])
        assert report.findings == []

    def test_inline_suppression_applies(self, tmp_path):
        root = make_project(
            tmp_path,
            self._tree(
                """
                def make_future(pool):
                    return pool.submit(len, "x")

                def dropper(pool):
                    make_future(pool)  # repro: lint-ignore[future-escape]
                """
            ),
        )
        report = xlint_paths([root], rules=["future-escape"])
        assert report.findings == []
        assert report.suppressed == 1


class TestPromptTaint:
    def test_document_text_to_prompt_flagged(self, tmp_path):
        root = make_project(
            tmp_path,
            {
                "mod.py": """
                    from repro.llm.prompts import append_section

                    def bad(document):
                        return append_section("p", "document", document.text)
                """,
            },
        )
        report = xlint_paths([root], rules=["prompt-taint"])
        assert len(report.findings) == 1
        assert "neutralize_markers" in report.findings[0].message

    def test_sanitized_flow_is_clean(self, tmp_path):
        root = make_project(
            tmp_path,
            {
                "mod.py": """
                    from repro.llm.prompts import append_section, neutralize_markers

                    def good(document):
                        return append_section(
                            "p", "document", neutralize_markers(document.text)
                        )
                """,
            },
        )
        report = xlint_paths([root], rules=["prompt-taint"])
        assert report.findings == []

    def test_cross_module_flow_via_helper(self, tmp_path):
        root = make_project(
            tmp_path,
            {
                "producer.py": """
                    from sink import helper

                    def indirect(document):
                        body = document.text_representation()
                        return helper(body)
                """,
                "sink.py": """
                    from repro.llm.prompts import render_task_prompt

                    def helper(body: str):
                        return render_task_prompt("t", {"document": body})
                """,
            },
        )
        report = xlint_paths([root], rules=["prompt-taint"])
        paths = {Path(f.path).name for f in report.findings}
        # Flagged at the sink function (str param named `body`) and at
        # the caller handing document text into it.
        assert "sink.py" in paths
        assert "producer.py" in paths

    def test_taint_safe_with_reason_accepts_flow(self, tmp_path):
        root = make_project(
            tmp_path,
            {
                "mod.py": """
                    from repro.llm.prompts import append_section

                    def accepted(document):
                        # repro: taint-safe[corpus is synthetic and marker-free]
                        return append_section("p", "document", document.text)
                """,
            },
        )
        report = xlint_paths([root], rules=["prompt-taint", "unjustified-taint-safe"])
        assert report.findings == []

    def test_bare_taint_safe_is_itself_a_finding(self, tmp_path):
        root = make_project(
            tmp_path,
            {
                "mod.py": """
                    from repro.llm.prompts import append_section

                    def accepted(document):
                        # repro: taint-safe
                        return append_section("p", "document", document.text)
                """,
            },
        )
        report = xlint_paths([root], rules=["prompt-taint", "unjustified-taint-safe"])
        found = rules_of(report)
        # The bare tag does NOT cover the sink and is flagged itself.
        assert found == ["prompt-taint", "unjustified-taint-safe"]

    def test_tag_inside_string_literal_ignored(self, tmp_path):
        root = make_project(
            tmp_path,
            {
                "mod.py": """
                    MESSAGE = "write '# repro: taint-safe' somewhere"
                """,
            },
        )
        report = xlint_paths([root], rules=["unjustified-taint-safe"])
        assert report.findings == []


class TestEventLoopBlocker:
    def test_sleep_reachable_from_dispatch_root(self, tmp_path):
        root = make_project(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/runtime/__init__.py": "",
                "repro/runtime/scheduler.py": """
                    import time

                    class RequestScheduler:
                        def _run(self):
                            self._work()

                        def _work(self):
                            time.sleep(0.1)
                """,
            },
        )
        report = xlint_paths([root], rules=["event-loop-blocker"])
        assert len(report.findings) == 1
        message = report.findings[0].message
        assert "time.sleep()" in message
        assert "chain:" in message

    def test_bounded_waits_and_dict_get_are_clean(self, tmp_path):
        root = make_project(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/runtime/__init__.py": "",
                "repro/runtime/scheduler.py": """
                    class RequestScheduler:
                        def _run(self):
                            self._work({}, None)

                        def _work(self, d, fut):
                            d.get("key")
                            "x".join(["a"])
                            if fut is not None:
                                fut.result(timeout=2.0)
                """,
            },
        )
        report = xlint_paths([root], rules=["event-loop-blocker"])
        assert report.findings == []

    def test_unbounded_queue_get_flagged(self, tmp_path):
        root = make_project(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/runtime/__init__.py": "",
                "repro/runtime/scheduler.py": """
                    import queue

                    class RequestScheduler:
                        def __init__(self):
                            self._queue = queue.Queue()

                        def _run(self):
                            item = self._queue.get()
                            return item
                """,
            },
        )
        report = xlint_paths([root], rules=["event-loop-blocker"])
        assert len(report.findings) == 1

    def test_unreachable_sleep_not_flagged(self, tmp_path):
        root = make_project(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/runtime/__init__.py": "",
                "repro/runtime/scheduler.py": """
                    import time

                    class RequestScheduler:
                        def _run(self):
                            pass

                    def offline_tool():
                        time.sleep(5)
                """,
            },
        )
        report = xlint_paths([root], rules=["event-loop-blocker"])
        assert report.findings == []


class TestSliceScoping:
    def test_changed_files_scope_reporting(self, tmp_path):
        files = {
            "repro/__init__.py": "",
            "repro/serving/__init__.py": "",
            "repro/serving/hot.py": """
                def make_future(pool):
                    return pool.submit(len, "x")

                def dropper(pool):
                    make_future(pool)
            """,
            "repro/serving/cold.py": """
                def other_make(pool):
                    return pool.submit(len, "y")

                def other_dropper(pool):
                    other_make(pool)
            """,
        }
        root = make_project(tmp_path, files)
        full = xlint_paths([root], rules=["future-escape"])
        assert len(full.findings) == 2

        scoped = xlint_paths(
            [root],
            rules=["future-escape"],
            changed_files=[str(root / "repro/serving/hot.py")],
        )
        assert len(scoped.findings) == 1
        assert scoped.findings[0].path.endswith("hot.py")
        assert scoped.out_of_scope == 1


class TestDeadlockFixtureBothWays:
    """The scripted two-module deadlock: static rule and runtime
    sanitizer must both catch it, and the cross-check must agree."""

    FIXTURE = FIXTURES / "deadlock_demo"

    def _replay(self):
        """Run both acquisition orders (single thread — the sanitizer
        flags the ordering violation, not an actual hang)."""
        sys.path.insert(0, str(self.FIXTURE))
        try:
            for name in ("mod_a", "mod_b"):
                sys.modules.pop(name, None)
            import mod_a
            import mod_b

            a = mod_a.AccountA()
            b = mod_b.AccountB()
            a.transfer(b, 5)  # A -> B
            b.reverse(a, 5)  # B -> A: inversion
        finally:
            sys.path.remove(str(self.FIXTURE))
            sys.modules.pop("mod_a", None)
            sys.modules.pop("mod_b", None)

    @staticmethod
    def _scoped_report(full, needle="deadlock_demo"):
        sites = {k: v for k, v in full["sites"].items() if needle in k}
        return {
            "installed": True,
            "sites": sites,
            "edges": [
                e for e in full["edges"] if e["a"] in sites and e["b"] in sites
            ],
            "inversions": [
                i
                for i in full["inversions"]
                if i["a"] in sites and i["b"] in sites
            ],
        }

    def test_static_rule_catches_fixture(self):
        report = xlint_paths([self.FIXTURE], rules=["lock-order-inversion"])
        assert len(report.findings) == 1
        assert "AccountA._lock" in report.findings[0].message

    @pytest.mark.locksmith_intentional
    def test_runtime_sanitizer_catches_fixture_and_cross_check_agrees(self):
        already = locksmith.installed()
        if not already:
            locksmith.install()
        before = len(locksmith.inversions())
        try:
            self._replay()
            new = locksmith.inversions()[before:]
            runtime = self._scoped_report(locksmith.report())
        finally:
            if not already:
                locksmith.uninstall()

        assert len(new) == 1
        inversion = new[0]
        assert inversion.stack, "forward acquisition stack recorded"
        assert inversion.reverse_stack, "reverse acquisition stack recorded"
        assert "mod_a.py" in inversion.a + inversion.b
        assert "mod_b.py" in inversion.a + inversion.b

        # Cross-check: the static cycle is confirmed by the runtime
        # observations, with no runtime-only leftovers.
        index = build_index([self.FIXTURE])
        graph = build_lock_graph(index)
        assert len(graph.cycles()) == 1
        cross = locksmith.cross_check(graph, runtime)
        assert len(cross["confirmed"]) == 1
        assert cross["static_only"] == []
        assert cross["runtime_only"] == []
        # Both fixture locks joined on their creation sites.
        assert len(cross["matched_sites"]) == 2

    def test_static_only_when_runtime_never_exercised(self):
        index = build_index([self.FIXTURE])
        graph = build_lock_graph(index)
        empty = {"installed": True, "sites": {}, "edges": [], "inversions": []}
        cross = locksmith.cross_check(graph, empty)
        assert cross["confirmed"] == []
        assert len(cross["static_only"]) == 1


class TestRepoSelfTest:
    def test_all_rules_registered(self):
        assert set(XRULES) == {
            "lock-order-inversion",
            "future-escape",
            "prompt-taint",
            "unjustified-taint-safe",
            "event-loop-blocker",
        }

    def test_repo_is_xlint_clean_against_committed_baseline(self):
        baseline = Baseline.load(".xlint-baseline.json")
        report = xlint_paths(["src/repro"], baseline=baseline)
        assert report.findings == [], "\n" + "\n".join(
            f"{f.path}:{f.line} {f.rule}: {f.message}" for f in report.findings
        )
        assert report.stale == [], (
            "stale xlint baseline entries: " + ", ".join(report.stale)
        )
