"""Tests for the simulated models' world knowledge (concept lexicon etc.)."""

import pytest

from repro.llm import knowledge


class TestConceptMatching:
    def test_alias_longest_first(self):
        # "environmental factors" must win over the bare "environmental".
        assert knowledge.match_concepts("caused by environmental factors") == [
            "environmental"
        ]

    def test_wind_condition(self):
        assert "wind" in knowledge.match_concepts("due to wind")

    def test_multiple_concepts(self):
        concepts = knowledge.match_concepts("wind and icing incidents")
        assert set(concepts) >= {"wind", "icing"}

    def test_unknown_condition_empty(self):
        assert knowledge.match_concepts("quarterly paperwork backlog") == []

    def test_text_matches_concept_word_boundary(self):
        assert knowledge.text_matches_concept("a strong gust hit", "wind")
        # 'gusty' should match via its own keyword, not substring of gust
        assert knowledge.text_matches_concept("gusty conditions", "wind")
        # 'disgusting' must not match 'gust'
        assert not knowledge.text_matches_concept("a disgusting mess", "wind")

    def test_phrase_keywords(self):
        assert knowledge.text_matches_concept(
            "the engine failure occurred", "mechanical"
        )
        assert not knowledge.text_matches_concept("the engine ran fine", "mechanical")

    def test_unknown_concept_false(self):
        assert not knowledge.text_matches_concept("anything", "no_such_concept")


class TestConditionHolds:
    WIND_TEXT = "The airplane encountered a gusty crosswind during landing."
    ENGINE_TEXT = "A fatigue crack caused a total loss of engine power."

    def test_positive(self):
        assert knowledge.condition_holds("caused by wind", self.WIND_TEXT)

    def test_negative(self):
        assert not knowledge.condition_holds("caused by icing", self.WIND_TEXT)

    def test_negation(self):
        assert not knowledge.condition_holds("not caused by wind", self.WIND_TEXT)
        assert knowledge.condition_holds("not caused by wind", self.ENGINE_TEXT)

    def test_conjunction_requires_all(self):
        assert knowledge.condition_holds("wind and landing", self.WIND_TEXT)
        assert not knowledge.condition_holds("wind and icing", self.WIND_TEXT)

    def test_disjunction_any(self):
        assert knowledge.condition_holds("icing or wind", self.WIND_TEXT)

    def test_fallback_content_words(self):
        assert knowledge.condition_holds(
            "fatigue crack", self.ENGINE_TEXT
        )
        assert not knowledge.condition_holds("submarine voyage", self.ENGINE_TEXT)

    def test_guidance_concepts(self):
        assert knowledge.condition_holds(
            "raised guidance", "Management raised guidance for the year."
        )
        assert not knowledge.condition_holds(
            "raised guidance", "Management maintained its prior guidance."
        )


class TestSentiment:
    def test_positive(self):
        assert knowledge.sentiment_of("record revenue and strong demand") == "positive"

    def test_negative(self):
        assert (
            knowledge.sentiment_of("weak demand and a headcount reduction")
            == "negative"
        )

    def test_neutral(self):
        assert knowledge.sentiment_of("the company filed its report") == "neutral"


class TestStates:
    def test_location_pattern_preferred(self):
        assert knowledge.find_state("near Anchorage, AK on Tuesday") == "AK"

    def test_full_name(self):
        assert knowledge.find_state("incidents in New Mexico rose") == "NM"

    def test_bare_abbreviation(self):
        assert knowledge.find_state("the TX office") == "TX"

    def test_no_state(self):
        assert knowledge.find_state("no location here") is None

    def test_not_fooled_by_random_capitals(self):
        assert knowledge.find_state("the CEO spoke") is None


class TestDatesAndNumbers:
    def test_find_date(self):
        assert knowledge.find_date("on May 3, 2023 the flight") == "2023-05-03"

    def test_find_date_case_insensitive(self):
        assert knowledge.find_date("ON MAY 3, 2023") == "2023-05-03"

    def test_find_date_invalid_day(self):
        assert knowledge.find_date("May 45, 2023") is None

    def test_find_year_prefers_date(self):
        assert knowledge.find_year("In 1999 style, on May 3, 2023") == 2023

    def test_find_year_bare(self):
        assert knowledge.find_year("the 2021 season") == 2021

    def test_find_number_after(self):
        assert knowledge.find_number_after("Fatal | 2", "fatal") == 2.0
        assert knowledge.find_number_after("Revenue ($M) | 1,234.5", "revenue") == 1234.5

    def test_find_number_skips_captions(self):
        text = "Injuries\nTable 1. Injuries to persons."
        assert knowledge.find_number_after(text, "injuries") is None

    def test_find_number_does_not_cross_blocks(self):
        text = "Injuries noted.\nAnalysis follows\nOn May 10, 2023"
        assert knowledge.find_number_after(text, "injuries") is None

    def test_extract_percentage(self):
        assert knowledge.extract_percentage("grew 12.5% YoY") == 12.5
        assert knowledge.extract_percentage("about 40 percent of cases") == 40.0
        assert knowledge.extract_percentage("no numbers") is None
