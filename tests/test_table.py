"""Unit tests for the Table structure."""

import pytest

from repro.docmodel import BoundingBox, Table, TableCell, merge_tables


class TestTableCell:
    def test_covered_slots_with_spans(self):
        cell = TableCell(row=1, col=2, text="x", rowspan=2, colspan=2)
        assert set(cell.covered_slots()) == {(1, 2), (1, 3), (2, 2), (2, 3)}

    def test_invalid_anchor(self):
        with pytest.raises(ValueError):
            TableCell(row=-1, col=0, text="x")

    def test_invalid_span(self):
        with pytest.raises(ValueError):
            TableCell(row=0, col=0, text="x", rowspan=0)

    def test_dict_roundtrip_with_bbox(self):
        cell = TableCell(row=0, col=1, text="v", bbox=BoundingBox(0, 0, 1, 1))
        restored = TableCell.from_dict(cell.to_dict())
        assert restored == cell


class TestTableShape:
    def test_dimensions(self, simple_table):
        assert simple_table.num_rows == 3
        assert simple_table.num_cols == 2

    def test_empty_table(self):
        table = Table()
        assert table.num_rows == 0
        assert table.num_cols == 0
        assert table.to_grid() == []

    def test_cell_at(self, simple_table):
        assert simple_table.cell_at(1, 0).text == "alpha"
        assert simple_table.cell_at(5, 5) is None

    def test_cell_at_spanned_slot(self):
        table = Table(cells=[TableCell(row=0, col=0, text="wide", colspan=3)])
        assert table.cell_at(0, 2).text == "wide"

    def test_validate_rejects_overlap(self):
        table = Table(
            cells=[
                TableCell(row=0, col=0, text="a", colspan=2),
                TableCell(row=0, col=1, text="b"),
            ]
        )
        with pytest.raises(ValueError, match="overlap"):
            table.validate()


class TestHeadersAndRecords:
    def test_header_rows(self, simple_table):
        assert simple_table.header_rows() == [0]

    def test_column_names(self, simple_table):
        assert simple_table.column_names() == ["Name", "Value"]

    def test_column_names_fallback(self):
        table = Table.from_rows([["a", "b"]], header=False)
        assert table.column_names() == ["col_0", "col_1"]

    def test_to_records(self, simple_table):
        assert simple_table.to_records() == [
            {"Name": "alpha", "Value": "1"},
            {"Name": "beta", "Value": "2"},
        ]

    def test_body_rows_exclude_header(self, simple_table):
        assert simple_table.body_rows() == [["alpha", "1"], ["beta", "2"]]

    def test_lookup(self, simple_table):
        assert simple_table.lookup("name", "beta", "value") == ["2"]
        assert simple_table.lookup("name", "missing", "value") == []
        assert simple_table.lookup("nope", "beta", "value") == []


class TestRendering:
    def test_to_csv(self, simple_table):
        lines = simple_table.to_csv().strip().splitlines()
        assert lines == ["Name,Value", "alpha,1", "beta,2"]

    def test_to_text(self, simple_table):
        assert "alpha | 1" in simple_table.to_text()

    def test_to_html_basic(self, simple_table):
        html = simple_table.to_html()
        assert "<caption>test table</caption>" in html
        assert "<th>Name</th>" in html
        assert "<td>alpha</td>" in html

    def test_to_html_spans_and_escaping(self):
        table = Table(
            cells=[
                TableCell(row=0, col=0, text="a<b", colspan=2),
                TableCell(row=1, col=0, text="x"),
                TableCell(row=1, col=1, text="y"),
            ]
        )
        html = table.to_html()
        assert 'colspan="2"' in html
        assert "a&lt;b" in html
        # spanned slot must not also render an empty cell in row 0
        assert html.count("<tr>") == 2

    def test_grid_repeats_spanned_text(self):
        table = Table(cells=[TableCell(row=0, col=0, text="w", colspan=2)])
        assert table.to_grid() == [["w", "w"]]


class TestSerde:
    def test_roundtrip(self, simple_table):
        restored = Table.from_dict(simple_table.to_dict())
        assert restored.to_grid() == simple_table.to_grid()
        assert restored.caption == simple_table.caption
        assert restored.header_rows() == simple_table.header_rows()


class TestMerge:
    def test_merge_continuation_without_header(self):
        first = Table.from_rows([["H1", "H2"], ["a", "1"]])
        second = Table.from_rows([["b", "2"], ["c", "3"]], header=False)
        merged = merge_tables(first, second)
        assert merged.num_rows == 4
        assert merged.to_records() == [
            {"H1": "a", "H2": "1"},
            {"H1": "b", "H2": "2"},
            {"H1": "c", "H2": "3"},
        ]

    def test_merge_drops_repeated_header(self):
        first = Table.from_rows([["H1", "H2"], ["a", "1"]])
        second = Table.from_rows([["H1", "H2"], ["b", "2"]])
        merged = merge_tables(first, second)
        assert merged.num_rows == 3
        assert merged.to_grid()[2] == ["b", "2"]
        # only one header row
        assert merged.header_rows() == [0]

    def test_merge_keeps_caption_of_first(self):
        first = Table.from_rows([["H"], ["a"]], caption="cap")
        second = Table.from_rows([["b"]], header=False)
        assert merge_tables(first, second).caption == "cap"

    def test_merge_different_widths_appends_raw(self):
        first = Table.from_rows([["H1", "H2"], ["a", "1"]])
        second = Table.from_rows([["x", "y", "z"]], header=False)
        merged = merge_tables(first, second)
        assert merged.num_rows == 3
        assert merged.num_cols == 3
