"""Unit tests for Document, Node, and Element types."""

import pytest

from repro.docmodel import (
    BoundingBox,
    Document,
    ELEMENT_TYPES,
    Element,
    ImageElement,
    Node,
    Table,
    TableElement,
    make_element,
)


class TestElement:
    def test_defaults(self):
        element = Element()
        assert element.type == "Text"
        assert element.text_representation() == ""
        assert element.element_id

    def test_copy_is_independent(self):
        element = Element(text="hi", properties={"a": 1})
        clone = element.copy()
        clone.properties["a"] = 2
        assert element.properties["a"] == 1
        assert clone.element_id == element.element_id

    def test_dict_roundtrip(self):
        element = Element(
            type="Caption",
            text="fig",
            bbox=BoundingBox(0, 0, 1, 1),
            page=3,
            properties={"k": "v"},
            binary=b"\x00\x01",
        )
        restored = Element.from_dict(element.to_dict())
        assert restored.type == "Caption"
        assert restored.text == "fig"
        assert restored.bbox == element.bbox
        assert restored.page == 3
        assert restored.binary == b"\x00\x01"

    def test_element_types_cover_doclaynet(self):
        assert len(ELEMENT_TYPES) == 11
        assert "Table" in ELEMENT_TYPES and "Picture" in ELEMENT_TYPES


class TestTableElement:
    def test_reserved_properties(self, simple_table):
        element = TableElement(table=simple_table)
        assert element.type == "Table"
        assert element.num_rows == 3
        assert element.num_cols == 2

    def test_text_representation_includes_caption(self, simple_table):
        element = TableElement(table=simple_table)
        rep = element.text_representation()
        assert rep.startswith("test table")
        assert "alpha | 1" in rep

    def test_roundtrip_preserves_table(self, simple_table):
        element = TableElement(table=simple_table)
        restored = Element.from_dict(element.to_dict())
        assert isinstance(restored, TableElement)
        assert restored.table.to_grid() == simple_table.to_grid()

    def test_copy_deep_copies_table(self, simple_table):
        element = TableElement(table=simple_table)
        clone = element.copy()
        clone.table.cells[0].text = "changed"
        assert simple_table.cells[0].text == "Name"


class TestImageElement:
    def test_reserved_properties(self):
        element = ImageElement(format="jpeg", width_px=640, height_px=480)
        assert element.type == "Picture"
        assert element.resolution == (640, 480)

    def test_text_representation_uses_summary(self):
        element = ImageElement(summary="a cat on a mat")
        assert "a cat on a mat" in element.text_representation()
        assert ImageElement().text_representation() == "[image]"

    def test_roundtrip(self):
        element = ImageElement(format="png", width_px=10, height_px=20, summary="s")
        restored = Element.from_dict(element.to_dict())
        assert isinstance(restored, ImageElement)
        assert restored.summary == "s"
        assert restored.resolution == (10, 20)


class TestMakeElement:
    def test_dispatch(self, simple_table):
        assert isinstance(make_element("Table", table=simple_table), TableElement)
        assert isinstance(make_element("Picture"), ImageElement)
        assert type(make_element("Text", text="t")) is Element

    def test_unknown_label_is_plain_element(self):
        element = make_element("Exotic", text="t")
        assert element.type == "Exotic"


class TestDocumentTree:
    def _tree_doc(self):
        section = Node(
            label="section",
            title="Analysis",
            children=[Element(text="para1"), Element(type="Caption", text="cap")],
        )
        root = Node(label="document", children=[Element(type="Title", text="T"), section])
        return Document(root=root, properties={"k": 1})

    def test_elements_in_order(self):
        doc = self._tree_doc()
        assert [e.text for e in doc.elements] == ["T", "para1", "cap"]

    def test_walk_yields_nodes_and_elements(self):
        doc = self._tree_doc()
        kinds = [type(x).__name__ for x in doc.walk()]
        assert kinds == ["Node", "Element", "Node", "Element", "Element"]

    def test_elements_of_type(self):
        doc = self._tree_doc()
        assert len(doc.elements_of_type("Caption")) == 1
        assert doc.tables == []

    def test_find_elements(self):
        doc = self._tree_doc()
        found = doc.find_elements(lambda e: "para" in e.text)
        assert len(found) == 1

    def test_empty_document(self):
        doc = Document()
        assert doc.elements == []
        assert list(doc.walk()) == []
        assert doc.num_pages() == 0

    def test_num_pages(self):
        doc = Document.from_elements([Element(page=0), Element(page=2)])
        assert doc.num_pages() == 3


class TestDocumentText:
    def test_text_representation_prefix(self):
        doc = Document.from_elements([Element(text=f"e{i}") for i in range(5)])
        assert doc.text_representation(max_elements=2) == "e0\ne1"

    def test_text_representation_falls_back_to_text(self):
        doc = Document.from_text("raw body")
        assert doc.text_representation() == "raw body"


class TestDocumentSerde:
    def test_roundtrip(self, simple_table):
        doc = Document.from_elements(
            [Element(text="a"), TableElement(table=simple_table)],
            properties={"nested": {"x": [1, 2]}},
        )
        doc.binary = b"\xff\x00"
        restored = Document.from_json(doc.to_json())
        assert restored.doc_id == doc.doc_id
        assert restored.binary == doc.binary
        assert restored.properties == doc.properties
        assert [e.text for e in restored.elements] == [e.text for e in doc.elements]
        assert isinstance(restored.elements[1], TableElement)

    def test_copy_does_not_alias(self):
        doc = Document.from_elements([Element(text="a")], properties={"p": [1]})
        clone = doc.copy()
        clone.properties["p"].append(2)
        assert doc.properties["p"] == [1]

    def test_derive_sets_lineage(self):
        doc = Document.from_text("x")
        child = doc.derive(text="y")
        assert child.parent_id == doc.doc_id
        assert child.doc_id != doc.doc_id
        assert child.text == "y"
