"""Tests for repro.analysis: lint rules, suppressions/baseline, plancheck.

Three layers, matching the subsystem:

* **Lint rules** — per-rule positive/negative fixtures run through
  :func:`lint_source`. Each positive is the bug class the rule encodes;
  each negative is the nearest legitimate idiom (which must NOT fire).
* **Plancheck** — one unit per violation code, plus the integration
  contracts: the planner rejects-and-replans on a bad sample,
  ``Luna.execute_plan`` rejects hand-built invalid plans at plan time,
  and the serving plan cache never admits an invalid plan.
* **Hygiene** — the repo itself lints clean against the committed
  baseline, and the leak sanitizer's detector actually detects.
"""

import textwrap
import threading

import pytest

from repro.analysis import (
    RULES,
    PlanCheckError,
    check_plan,
    leakcheck,
    lint_paths,
    lint_source,
    load_baseline,
    write_baseline,
)
from repro.embedding.embedder import HashingEmbedder
from repro.indexes.catalog import NamedIndex
from repro.luna import Luna
from repro.luna.operators import LogicalPlan, PlanNode, PlanValidationError
from repro.luna.planner import LunaPlanner


def hits(source, rule):
    """Rule findings for a dedented source snippet."""
    return lint_source(textwrap.dedent(source), rules=[rule])


def codes_of(source, rule):
    return [f.rule for f in hits(source, rule)]


# ----------------------------------------------------------------------
# blocking-call-under-lock
# ----------------------------------------------------------------------


class TestBlockingCallUnderLock:
    RULE = "blocking-call-under-lock"

    def test_sleep_under_lock_fires(self):
        found = hits(
            """
            def f(self):
                with self._lock:
                    time.sleep(1)
            """,
            self.RULE,
        )
        assert len(found) == 1
        assert "sleep" in found[0].message

    def test_sleep_outside_lock_is_fine(self):
        assert not hits(
            """
            def f(self):
                with self._lock:
                    x = 1
                time.sleep(1)
            """,
            self.RULE,
        )

    def test_nested_def_body_does_not_run_under_lock(self):
        assert not hits(
            """
            def f(self):
                with self._lock:
                    def later():
                        time.sleep(1)
                    cb = lambda: other.result()
                    return later
            """,
            self.RULE,
        )

    def test_future_result_and_llm_call_fire(self):
        found = hits(
            """
            def f(self):
                with self._lock:
                    value = future.result()
                    answer = self.llm.complete(prompt)
            """,
            self.RULE,
        )
        assert len(found) == 2

    def test_add_done_callback_under_lock_fires(self):
        found = hits(
            """
            def f(self):
                with self._cond:
                    shared.add_done_callback(cb)
            """,
            self.RULE,
        )
        assert len(found) == 1
        assert "inline" in found[0].message

    def test_nested_different_lock_fires_same_lock_does_not(self):
        found = hits(
            """
            def f(self):
                with self._cache_lock:
                    with self._counter_lock:
                        n += 1
            """,
            self.RULE,
        )
        assert len(found) == 1
        assert "nested locking" in found[0].message
        assert not hits(
            """
            def f(self):
                with self._lock:
                    with self._lock:
                        n += 1
            """,
            self.RULE,
        )

    def test_wait_on_held_condition_is_fine_on_other_object_fires(self):
        assert not hits(
            """
            def f(self):
                with self._cond:
                    self._cond.wait()
            """,
            self.RULE,
        )
        assert len(
            hits(
                """
                def f(self):
                    with self._cond:
                        event.wait()
                """,
                self.RULE,
            )
        ) == 1

    def test_thread_join_fires_but_str_join_does_not(self):
        assert len(
            hits(
                """
                def f(self):
                    with self._lock:
                        worker.join()
                """,
                self.RULE,
            )
        ) == 1
        assert not hits(
            """
            def f(self):
                with self._lock:
                    text = ", ".join(parts)
            """,
            self.RULE,
        )


# ----------------------------------------------------------------------
# bare-lock-acquire
# ----------------------------------------------------------------------


class TestBareLockAcquire:
    RULE = "bare-lock-acquire"

    def test_bare_acquire_fires(self):
        found = hits(
            """
            def f(self):
                self._lock.acquire()
                do_work()
                self._lock.release()
            """,
            self.RULE,
        )
        assert len(found) == 1

    def test_try_finally_release_is_fine(self):
        assert not hits(
            """
            def f(self):
                self._lock.acquire()
                try:
                    do_work()
                finally:
                    self._lock.release()
            """,
            self.RULE,
        )

    def test_non_lockish_receiver_ignored(self):
        assert not hits(
            """
            def f(self):
                self.connection.acquire()
            """,
            self.RULE,
        )


# ----------------------------------------------------------------------
# executor-never-shutdown / thread-never-joined
# ----------------------------------------------------------------------


class TestExecutorNeverShutdown:
    RULE = "executor-never-shutdown"

    def test_class_pool_without_shutdown_fires(self):
        found = hits(
            """
            class Service:
                def __init__(self):
                    self._pool = ThreadPoolExecutor(max_workers=2)
            """,
            self.RULE,
        )
        assert len(found) == 1

    def test_class_pool_with_close_is_fine(self):
        assert not hits(
            """
            class Service:
                def __init__(self):
                    self._pool = ThreadPoolExecutor(max_workers=2)

                def close(self):
                    self._pool.shutdown(wait=True)
            """,
            self.RULE,
        )

    def test_context_managed_pool_is_fine(self):
        assert not hits(
            """
            def f():
                with ThreadPoolExecutor(max_workers=2) as pool:
                    pool.map(work, items)
            """,
            self.RULE,
        )

    def test_module_level_pool_fires(self):
        assert len(
            hits(
                """
                POOL = ThreadPoolExecutor(max_workers=4)
                """,
                self.RULE,
            )
        ) == 1


class TestThreadNeverJoined:
    RULE = "thread-never-joined"

    def test_self_thread_without_join_fires(self):
        found = hits(
            """
            class Worker:
                def start(self):
                    self._thread = threading.Thread(target=self._run)
                    self._thread.start()
            """,
            self.RULE,
        )
        assert len(found) == 1

    def test_joined_thread_is_fine(self):
        assert not hits(
            """
            class Worker:
                def start(self):
                    self._thread = threading.Thread(target=self._run)
                    self._thread.start()

                def close(self):
                    self._thread.join()
            """,
            self.RULE,
        )


# ----------------------------------------------------------------------
# swallowed-future / metric-name-drift / naive-wall-clock
# ----------------------------------------------------------------------


class TestSwallowedFuture:
    RULE = "swallowed-future"

    def test_bare_submit_fires(self):
        found = hits(
            """
            def f(pool):
                pool.submit(work)
            """,
            self.RULE,
        )
        assert len(found) == 1
        assert "discarded" in found[0].message

    def test_bound_submit_is_fine(self):
        assert not hits(
            """
            def f(pool):
                fut = pool.submit(work)
                fut.add_done_callback(log)
            """,
            self.RULE,
        )


class TestMetricNameDrift:
    RULE = "metric-name-drift"

    def test_off_namespace_literal_fires(self):
        found = hits(
            """
            def f(registry):
                registry.counter("queries.total")
            """,
            self.RULE,
        )
        assert len(found) == 1
        assert "queries.total" in found[0].message

    def test_documented_namespaces_are_fine(self):
        assert not hits(
            """
            def f(registry):
                registry.counter("llm.requests")
                registry.gauge("serving.queue_depth")
                registry.histogram("scheduler.batch_ms")
            """,
            self.RULE,
        )

    def test_fstring_head_is_checked(self):
        assert len(
            hits(
                """
                def f(registry, op):
                    registry.counter(f"ops.{op}.count")
                """,
                self.RULE,
            )
        ) == 1
        assert not hits(
            """
            def f(registry, op):
                registry.counter(f"executor.{op}.count")
            """,
            self.RULE,
        )


class TestTimeoutNotPropagated:
    HOT = "src/repro/serving/x.py"

    def hot_hits(self, source, path=None):
        return lint_source(
            textwrap.dedent(source),
            path=path or self.HOT,
            rules=["timeout-not-propagated"],
        )

    def test_future_result_without_timeout_fires(self):
        found = self.hot_hits("value = future.result()\n")
        assert len(found) == 1
        assert "remaining deadline budget" in found[0].message

    def test_future_result_with_timeout_ok(self):
        assert not self.hot_hits("value = future.result(timeout=remaining)\n")
        assert not self.hot_hits("value = future.result(5)\n")

    def test_condition_wait_without_timeout_fires(self):
        found = self.hot_hits("self._cond.wait()\n")
        assert len(found) == 1
        assert not self.hot_hits("self._cond.wait(timeout=0.5)\n")

    def test_event_wait_without_timeout_fires(self):
        assert self.hot_hits("done_event.wait()\n")

    def test_bare_queue_get_fires_but_dict_get_does_not(self):
        assert self.hot_hits("item = self._queue.get()\n")
        assert not self.hot_hits("value = mapping.get('key')\n")
        assert not self.hot_hits("item = self._queue.get(timeout=1.0)\n")

    def test_module_level_wait_function_not_flagged(self):
        # concurrent.futures.wait is a Name call, not an attribute wait.
        assert not self.hot_hits("done, pending = wait(futures)\n")

    def test_only_hot_path_packages_are_checked(self):
        source = "value = future.result()\n"
        assert not self.hot_hits(source, path="src/repro/luna/luna.py")
        assert self.hot_hits(source, path="src/repro/runtime/scheduler.py")
        assert self.hot_hits(source, path="src/repro/execution/executor.py")

    def test_inline_suppression(self):
        source = (
            "x = f.result()  # repro: lint-ignore[timeout-not-propagated]\n"
        )
        assert not self.hot_hits(source)


class TestHandlerBlockingIo:
    GW = "src/repro/gateway/server.py"

    def gw_hits(self, source, path=None):
        return lint_source(
            textwrap.dedent(source),
            path=path or self.GW,
            rules=["handler-blocking-io"],
        )

    def test_unbounded_result_fires(self):
        found = self.gw_hits("served = ticket.result()\n")
        assert len(found) == 1
        assert "connection thread" in found[0].message

    def test_bounded_result_ok(self):
        assert not self.gw_hits(
            "served = ticket.result(timeout=self.config.sync_timeout_s)\n"
        )
        assert not self.gw_hits("served = ticket.result(30.0)\n")

    def test_zero_arg_socket_read_fires(self):
        assert self.gw_hits("body = self.rfile.read()\n")
        assert self.gw_hits("line = response.readline()\n")

    def test_bounded_or_non_socket_read_ok(self):
        assert not self.gw_hits("body = self.rfile.read(length)\n")
        assert not self.gw_hits("line = response.readline(1 << 16)\n")
        # Not a socket-shaped receiver: plain file objects stay out of scope.
        assert not self.gw_hits("data = handle.read()\n")

    def test_only_gateway_package_is_checked(self):
        source = "value = future.result()\n"
        assert not self.gw_hits(source, path="src/repro/luna/luna.py")
        assert self.gw_hits(source, path="src/repro/gateway/client.py")

    def test_inline_suppression(self):
        source = "x = t.result()  # repro: lint-ignore[handler-blocking-io]\n"
        assert not self.gw_hits(source)

    def test_gateway_metric_namespace_is_documented(self):
        from repro.analysis.rules import METRIC_NAMESPACES

        assert "gateway." in METRIC_NAMESPACES
        assert not hits(
            """
            reg.counter("gateway.requests")
            """,
            "metric-name-drift",
        )


class TestNaiveWallClock:
    RULE = "naive-wall-clock"

    def test_time_time_fires_monotonic_does_not(self):
        assert len(
            hits(
                """
                def f():
                    return time.time()
                """,
                self.RULE,
            )
        ) == 1
        assert not hits(
            """
            def f():
                return time.monotonic() + time.perf_counter()
            """,
            self.RULE,
        )

    def test_naive_datetime_now_fires_aware_does_not(self):
        assert len(
            hits(
                """
                def f():
                    return datetime.now()
                """,
                self.RULE,
            )
        ) == 1
        assert not hits(
            """
            def f():
                return datetime.now(timezone.utc)
            """,
            self.RULE,
        )


# ----------------------------------------------------------------------
# nonpicklable-task-capture
# ----------------------------------------------------------------------


class TestNonPicklableTaskCapture:
    RULE = "nonpicklable-task-capture"

    def test_lambda_in_envelope_fires(self):
        found = hits(
            """
            def scatter(shard):
                return TaskEnvelope(
                    shard_id=shard.shard_id,
                    transform=lambda doc: doc,
                )
            """,
            self.RULE,
        )
        assert len(found) == 1
        assert "lambda" in found[0].message

    def test_nested_function_in_spec_fires(self):
        found = hits(
            """
            def build(docs):
                def predicate(doc):
                    return doc.ok
                return ShardOp(operation="BasicFilter", params=predicate)
            """,
            self.RULE,
        )
        assert len(found) == 1
        assert "predicate" in found[0].message

    def test_lock_put_on_queue_fires(self):
        found = hits(
            """
            def dispatch(self, envelope):
                self.task_queue.put((envelope, self._lock))
            """,
            self.RULE,
        )
        assert len(found) == 1
        assert "lock" in found[0].message.lower()

    def test_declarative_envelope_is_clean(self):
        assert not hits(
            """
            def scatter(shard, spec):
                return TaskEnvelope(
                    shard_id=shard.shard_id,
                    spec=spec,
                    documents=list(shard.documents),
                    budget_s=2.5,
                )
            """,
            self.RULE,
        )

    def test_plain_values_on_queue_are_clean(self):
        assert not hits(
            """
            def dispatch(self, envelope):
                self.task_queue.put(envelope)
            """,
            self.RULE,
        )

    def test_lambda_elsewhere_is_clean(self):
        """Only the process boundary is policed: lambdas handed to
        in-process calls (sort keys etc.) are fine."""
        assert not hits(
            """
            def order(shards):
                shards.sort(key=lambda s: s.shard_id)
                return shards
            """,
            self.RULE,
        )

    def test_module_level_function_reference_is_clean(self):
        """Top-level functions pickle by qualified name; only sibling
        *nested* defs are closure hazards."""
        assert not hits(
            """
            def helper(doc):
                return doc

            def scatter(shard):
                return ShardOp(operation="Map", params=helper)
            """,
            self.RULE,
        )


# ----------------------------------------------------------------------
# Suppressions and baseline
# ----------------------------------------------------------------------


class TestSuppressionsAndBaseline:
    def test_same_line_suppression(self):
        assert not hits(
            """
            def f(self):
                with self._lock:
                    time.sleep(1)  # repro: lint-ignore[blocking-call-under-lock]
            """,
            "blocking-call-under-lock",
        )

    def test_line_above_suppression(self):
        assert not hits(
            """
            def f(self):
                with self._lock:
                    # repro: lint-ignore[blocking-call-under-lock]
                    time.sleep(1)
            """,
            "blocking-call-under-lock",
        )

    def test_bare_suppression_silences_all_rules(self):
        assert not hits(
            """
            def f(pool):
                pool.submit(work)  # repro: lint-ignore
            """,
            "swallowed-future",
        )

    def test_wrong_rule_id_does_not_suppress(self):
        assert len(
            hits(
                """
                def f(pool):
                    pool.submit(work)  # repro: lint-ignore[naive-wall-clock]
                """,
                "swallowed-future",
            )
        ) == 1

    def test_unknown_rule_id_raises(self):
        with pytest.raises(KeyError):
            lint_source("x = 1", rules=["no-such-rule"])

    def test_syntax_error_becomes_finding(self):
        found = lint_source("def broken(:\n")
        assert [f.rule for f in found] == ["syntax-error"]

    def test_baseline_roundtrip(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "def f(pool):\n    pool.submit(work)\n", encoding="utf-8"
        )
        fresh = lint_paths([bad], rules=["swallowed-future"])
        assert not fresh.ok and len(fresh.findings) == 1

        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, fresh.findings)
        baseline = load_baseline(baseline_file)

        again = lint_paths(
            [bad], rules=["swallowed-future"], baseline=baseline
        )
        assert again.ok
        assert len(again.baselined) == 1
        # A NEW violation still fails against the old baseline.
        bad.write_text(
            "def f(pool, other):\n"
            "    pool.submit(work)\n"
            "    other.submit(work)\n",
            encoding="utf-8",
        )
        drifted = lint_paths(
            [bad], rules=["swallowed-future"], baseline=baseline
        )
        assert not drifted.ok
        assert len(drifted.findings) == 1  # only the new one

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == set()

    def test_repo_lints_clean_against_committed_baseline(self, monkeypatch):
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[1]
        monkeypatch.chdir(root)
        report = lint_paths(["src"], baseline=load_baseline(".lint-baseline.json"))
        assert report.files_checked > 50
        assert report.ok, "\n" + report.render()

    def test_rule_catalog_is_complete(self):
        assert set(RULES) == {
            "blocking-call-under-lock",
            "bare-lock-acquire",
            "executor-never-shutdown",
            "thread-never-joined",
            "swallowed-future",
            "metric-name-drift",
            "naive-wall-clock",
            "timeout-not-propagated",
            "handler-blocking-io",
            "nonpicklable-task-capture",
        }


# ----------------------------------------------------------------------
# Plancheck units
# ----------------------------------------------------------------------

SCHEMA = {"state": "string", "incident_year": "int"}
KNOWN = {"ntsb": SCHEMA}


def plan(*nodes):
    return LogicalPlan(nodes=list(nodes))


def node(operation, inputs=(), **params):
    return PlanNode(operation=operation, inputs=list(inputs), params=params)


class TestPlanCheck:
    def test_valid_plan_is_clean(self):
        report = check_plan(
            plan(
                node("QueryIndex", index="ntsb"),
                node("BasicFilter", [0], field="state", op="eq", value="CA"),
                node("Count", [1]),
            ),
            schema=SCHEMA,
            known_indexes=KNOWN,
        )
        assert report.ok and not report.issues

    def test_empty_plan(self):
        assert "empty-plan" in check_plan(plan()).codes()

    def test_unknown_operator(self):
        assert "unknown-operator" in check_plan(
            plan(node("Frobnicate"))
        ).codes()

    def test_missing_param(self):
        report = check_plan(
            plan(node("QueryIndex", index="ntsb"), node("BasicFilter", [0]))
        )
        assert "missing-param" in report.codes()

    def test_bad_params(self):
        report = check_plan(
            plan(
                node("QueryIndex", index="ntsb"),
                node("BasicFilter", [0], field="state", op="zz", value=1),
                node("Limit", [1], k=0),
                node("Aggregate", [2], func="mode", field="state"),
            )
        )
        assert report.codes() >= {"bad-param"}
        assert len([i for i in report.errors() if i.code == "bad-param"]) == 3

    def test_arity_mismatch(self):
        report = check_plan(plan(node("QueryIndex", index="ntsb"), node("Count")))
        assert "arity-mismatch" in report.codes()

    def test_dangling_input(self):
        report = check_plan(
            plan(node("QueryIndex", index="ntsb"), node("Count", [5]))
        )
        assert "dangling-input" in report.codes()

    def test_nontopological_self_reference(self):
        report = check_plan(
            plan(node("QueryIndex", index="ntsb"), node("Count", [1]))
        )
        assert "nontopological-input" in report.codes()

    def test_cycle_through_math_references(self):
        report = check_plan(
            plan(
                node("QueryIndex", index="ntsb"),
                node("Math", [0], expression="#2 + 1"),
                node("Math", [0], expression="#1 + 1"),
            )
        )
        assert "cycle" in report.codes()

    def test_unknown_index(self):
        report = check_plan(
            plan(node("QueryIndex", index="nope"), node("Count", [0])),
            known_indexes=KNOWN,
        )
        assert "unknown-index" in report.codes()

    def test_unknown_field(self):
        report = check_plan(
            plan(
                node("QueryIndex", index="ntsb"),
                node("BasicFilter", [0], field="altitude", op="eq", value=1),
            ),
            schema=SCHEMA,
            known_indexes=KNOWN,
        )
        assert "unknown-field" in report.codes()

    def test_extracted_field_is_known_downstream(self):
        report = check_plan(
            plan(
                node("QueryIndex", index="ntsb"),
                node("LlmExtract", [0], field="cause"),
                node("BasicFilter", [1], field="cause", op="eq", value="wind"),
                node("Aggregate", [2], func="count", field="cause"),
            ),
            schema=SCHEMA,
            known_indexes=KNOWN,
        )
        assert report.ok, report.render()

    def test_aggregate_over_unextracted_field(self):
        bad = check_plan(
            plan(
                node("QueryIndex", index="ntsb"),
                node("Aggregate", [0], func="sum", field="altitude"),
            ),
            schema=SCHEMA,
        )
        assert "aggregate-unextracted" in bad.codes()
        # count doesn't read the field's value: exempt.
        counted = check_plan(
            plan(
                node("QueryIndex", index="ntsb"),
                node("Aggregate", [0], func="count", field="altitude"),
            ),
            schema=SCHEMA,
        )
        assert counted.ok

    def test_dotted_fields_are_exempt(self):
        report = check_plan(
            plan(
                node("QueryIndex", index="ntsb"),
                node("Sort", [0], field="properties.depth"),
            ),
            schema=SCHEMA,
        )
        assert report.ok

    def test_warnings_do_not_fail_the_plan(self):
        report = check_plan(
            plan(
                node("QueryIndex", index="ntsb"),
                node("QueryIndex", index="ntsb"),  # dead node
                node("Project", [0], fields=["state", "ghost"]),
            ),
            schema=SCHEMA,
            known_indexes=KNOWN,
        )
        assert report.ok
        warned = {i.code for i in report.warnings()}
        assert warned >= {"dead-node", "project-unknown"}

    def test_ensure_valid_plan_raises_structured_error(self):
        with pytest.raises(PlanCheckError) as excinfo:
            from repro.analysis import ensure_valid_plan

            ensure_valid_plan(
                plan(node("QueryIndex", index="ntsb"), node("Count", [5]))
            )
        assert isinstance(excinfo.value, PlanValidationError)
        assert "dangling-input" in excinfo.value.report.codes()


# ----------------------------------------------------------------------
# Plancheck integration: planner / Luna / serving
# ----------------------------------------------------------------------


class ScriptedPlannerLLM:
    """An LLM stub whose complete_json returns scripted plan payloads."""

    def __init__(self, payloads):
        self.payloads = list(payloads)
        self.calls = 0

    def complete_json(self, prompt, model="stub", **kwargs):
        self.calls += 1
        return self.payloads.pop(0)


def scripted_index():
    return NamedIndex(name="ntsb", embedder=HashingEmbedder(), schema=dict(SCHEMA))


BAD_PLAN_PAYLOAD = [
    {"operation": "QueryIndex", "index": "ntsb", "inputs": []},
    {
        "operation": "BasicFilter",
        "field": "altitude",
        "op": "eq",
        "value": 1,
        "inputs": [0],
    },
    {"operation": "Count", "inputs": [1]},
]

GOOD_PLAN_PAYLOAD = [
    {"operation": "QueryIndex", "index": "ntsb", "inputs": []},
    {
        "operation": "BasicFilter",
        "field": "state",
        "op": "eq",
        "value": "CA",
        "inputs": [0],
    },
    {"operation": "Count", "inputs": [1]},
]


class TestPlannerIntegration:
    def test_planner_rejects_bad_sample_and_replans_once(self):
        llm = ScriptedPlannerLLM([BAD_PLAN_PAYLOAD, GOOD_PLAN_PAYLOAD])
        planner = LunaPlanner(llm, max_plan_retries=2)
        result = planner.plan("how many CA incidents?", scripted_index())
        assert llm.calls == 2
        assert result.nodes[1].params["field"] == "state"

    def test_planner_gives_up_after_retries(self):
        llm = ScriptedPlannerLLM([BAD_PLAN_PAYLOAD] * 3)
        planner = LunaPlanner(llm, max_plan_retries=2)
        with pytest.raises(PlanValidationError):
            planner.plan("how many CA incidents?", scripted_index())
        assert llm.calls == 3


class TestLunaExecutePlanGate:
    def test_dangling_ref_rejected_at_plan_time(self, indexed_context):
        luna = Luna(indexed_context)
        with pytest.raises(PlanCheckError) as excinfo:
            luna.execute_plan(
                "count",
                "ntsb",
                plan(node("QueryIndex", index="ntsb"), node("Count", [5])),
            )
        assert "dangling-input" in excinfo.value.report.codes()

    def test_unknown_field_rejected_at_plan_time(self, indexed_context):
        luna = Luna(indexed_context)
        with pytest.raises(PlanCheckError) as excinfo:
            luna.execute_plan(
                "filter",
                "ntsb",
                plan(
                    node("QueryIndex", index="ntsb"),
                    node(
                        "BasicFilter", [0], field="altitude", op="eq", value=1
                    ),
                    node("Count", [1]),
                ),
            )
        assert "unknown-field" in excinfo.value.report.codes()

    def test_valid_hand_built_plan_executes(self, indexed_context):
        luna = Luna(indexed_context)
        result = luna.execute_plan(
            "count all",
            "ntsb",
            plan(node("QueryIndex", index="ntsb"), node("Count", [0])),
        )
        assert result.answer == 30


class TestServingPlanCacheGate:
    def test_invalid_plans_never_enter_the_plan_cache(self, monkeypatch):
        from repro.serving import QueryService, ServiceConfig
        from tests.test_serving import build_served_context

        ctx = build_served_context(n_docs=6, seed=7)
        service = QueryService(ctx, ServiceConfig(max_workers=1))
        try:
            bad = plan(
                node("QueryIndex", index="ntsb"), node("Count", [5])
            )
            monkeypatch.setattr(
                LunaPlanner, "plan", lambda self, *a, **kw: bad
            )
            ticket = service.submit("how many incidents?", "ntsb")
            with pytest.raises(PlanCheckError):
                ticket.result(timeout=30)
            assert len(service.plan_cache) == 0
            assert len(service.result_cache) == 0

            # With the stub gone, the same question plans and caches.
            monkeypatch.undo()
            served = service.query("how many incidents?", "ntsb")
            assert served.result.answer is not None
            assert len(service.plan_cache) == 1
        finally:
            service.close()
            ctx.close()


# ----------------------------------------------------------------------
# Leak sanitizer self-test
# ----------------------------------------------------------------------


class TestLeakcheck:
    def test_detects_leaked_thread_then_clears_after_join(self):
        before = leakcheck.thread_snapshot()
        stop = threading.Event()
        thread = threading.Thread(
            target=stop.wait, name="leaky-self-test", daemon=False
        )
        thread.start()
        leaked = leakcheck.find_leaked_threads(before, grace_s=0.2)
        assert any("leaky-self-test" in desc for desc in leaked)
        stop.set()
        thread.join()
        assert leakcheck.find_leaked_threads(before, grace_s=0.5) == []

    def test_daemon_threads_do_not_count(self):
        before = leakcheck.thread_snapshot()
        stop = threading.Event()
        thread = threading.Thread(target=stop.wait, daemon=True)
        thread.start()
        try:
            assert leakcheck.find_leaked_threads(before, grace_s=0.2) == []
        finally:
            stop.set()
            thread.join()


# ----------------------------------------------------------------------
# Baseline v2, SARIF, and suppression edge cases
# ----------------------------------------------------------------------

from repro.analysis import Baseline, BaselineEntry, Finding, to_sarif


def _finding(path="src/repro/mod.py", rule="swallowed-future",
             message="future from pool.submit(...) is discarded", line=3):
    return Finding(rule=rule, path=path, line=line, col=4, message=message)


class TestBaselineV2:
    def test_justification_round_trip(self, tmp_path):
        f = _finding()
        path = tmp_path / "baseline.json"
        write_baseline(path, [f], justifications={f.identity(): "migration worklist"})
        loaded = Baseline.load(path)
        assert loaded.justifications() == {f.identity(): "migration worklist"}
        entry = loaded.match(f)
        assert entry is not None and entry.justification == "migration worklist"

    def test_update_preserves_justifications(self, tmp_path):
        f = _finding()
        path = tmp_path / "baseline.json"
        write_baseline(path, [f], justifications={f.identity(): "keep me"})
        # Regenerate (as --update-baseline does): carry the old reasons over.
        old = Baseline.load(path)
        write_baseline(path, [f], justifications=old.justifications())
        assert Baseline.load(path).justifications() == {f.identity(): "keep me"}

    def test_entry_survives_file_move(self):
        baseline = Baseline([BaselineEntry(
            path="src/old/place.py", rule="swallowed-future",
            message="future from pool.submit(...) is discarded",
        )])
        moved = _finding(path="src/new/home/place.py")
        assert baseline.match(moved) is not None
        # ...and a matched entry is not stale.
        assert baseline.stale_entries({"src/new/home/place.py"}) == []

    def test_stale_restricted_to_checked_paths(self):
        baseline = Baseline([
            BaselineEntry(path="a.py", rule="r", message="m"),
            BaselineEntry(path="b.py", rule="r", message="m"),
        ])
        # Only a.py was linted: b.py's entry must not be declared stale.
        assert baseline.stale_entries({"a.py"}) == ["a.py::r::m"]

    def test_stale_reported_through_lint_paths(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n", encoding="utf-8")
        baseline = Baseline([BaselineEntry(
            path=str(clean), rule="swallowed-future", message="gone",
        )])
        report = lint_paths([clean], rules=["swallowed-future"], baseline=baseline)
        assert report.ok
        assert report.stale == [f"{clean}::swallowed-future::gone"]

    def test_from_identities(self):
        baseline = Baseline.from_identities({"p.py::r::message :: with colons"})
        assert baseline.entries[0].path == "p.py"
        assert baseline.entries[0].message == "message :: with colons"


class TestSarifExport:
    def test_sarif_shape_and_baseline_state(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "def f(pool, other):\n"
            "    pool.submit(work)\n"
            "    other.submit(work)\n",
            encoding="utf-8",
        )
        fresh = lint_paths([bad], rules=["swallowed-future"])
        baseline = Baseline.from_identities({fresh.findings[0].identity()})
        report = lint_paths([bad], rules=["swallowed-future"], baseline=baseline)
        assert len(report.findings) == 1 and len(report.baselined) == 1

        doc = to_sarif(report, tool_name="repro-lint",
                       rule_descriptions={"swallowed-future": "dropped future"})
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert "swallowed-future" in rule_ids
        states = sorted(r["baselineState"] for r in run["results"])
        assert states == ["new", "unchanged"]
        loc = run["results"][0]["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"].endswith("bad.py")
        assert loc["region"]["startLine"] in (2, 3)

    def test_sarif_can_exclude_baselined(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(pool):\n    pool.submit(work)\n", encoding="utf-8")
        fresh = lint_paths([bad], rules=["swallowed-future"])
        baseline = Baseline.from_identities({f.identity() for f in fresh.findings})
        report = lint_paths([bad], rules=["swallowed-future"], baseline=baseline)
        doc = to_sarif(report, include_baselined=False)
        assert doc["runs"][0]["results"] == []


class TestSuppressionEdgeCases:
    def test_multiline_statement_suppressed_on_first_line(self):
        # The finding anchors to the statement's first line, so the tag
        # there (or the line above) silences it even though the call
        # spans several lines.
        assert not hits(
            """
            def f(pool):
                pool.submit(  # repro: lint-ignore[swallowed-future]
                    work,
                    arg,
                )
            """,
            "swallowed-future",
        )

    def test_tag_on_last_line_of_multiline_call_does_not_suppress(self):
        assert len(hits(
            """
            def f(pool):
                pool.submit(
                    work,
                )  # repro: lint-ignore[swallowed-future]
            """,
            "swallowed-future",
        )) == 1

    def test_suppression_inside_decorated_function(self):
        # Decorators shift the def downward; the finding still anchors
        # to the offending statement, so line-above suppression works
        # unchanged inside a decorated function.
        assert not hits(
            """
            @retry(3)
            @traced
            def f(pool):
                # repro: lint-ignore[swallowed-future]
                pool.submit(work)
            """,
            "swallowed-future",
        )

    def test_decorator_line_tag_does_not_leak_onto_body(self):
        # A tag on the decorator line must not silence findings in the
        # function body below it.
        assert len(hits(
            """
            @retry(3)  # repro: lint-ignore[swallowed-future]
            def f(pool):
                pool.submit(work)
            """,
            "swallowed-future",
        )) == 1

    def test_suppression_with_spaces_in_rule_list(self):
        assert not hits(
            """
            def f(pool):
                pool.submit(work)  # repro: lint-ignore[ swallowed-future , naive-wall-clock ]
            """,
            "swallowed-future",
        )
