"""Tests for remaining corners: compositional query patterns, retrieval
reads, codegen variants, optimizer chains, and writer edge cases."""

import pytest

from repro.docmodel import Document
from repro.luna import (
    COST_POLICY,
    LogicalPlan,
    Luna,
    LunaExecutor,
    LunaOptimizer,
    generate_code,
)
from repro.sycamore import SycamoreContext


class TestCompositionalPatterns:
    """"We also expect compositions of these patterns will become
    prevalent" (§1): chain one query's answer into the next."""

    def test_sweep_then_summarize(self, indexed_context, ntsb_corpus):
        records, _ = ntsb_corpus
        luna = Luna(indexed_context, planner_model="sim-oracle", policy="quality")

        # Stage 1 (sweep-and-harvest): find the state with the most
        # wind-caused incidents.
        first = luna.query(
            "Which state had the most incidents caused by wind?", index="ntsb"
        )
        top_state = first.answer[0][0]

        # Stage 2 (hunt-and-peck, parameterized by stage 1): summarize
        # that state's incidents.
        second = luna.query(
            f"Summarize the incidents in {_state_name(top_state)}.", index="ntsb"
        )
        assert isinstance(second.answer, str)
        expected_docs = {r.report_id for r in records if r.state == top_state}
        supporting = set(second.trace.supporting_documents())
        assert supporting == expected_docs

    def test_history_carries_the_composition(self, indexed_context):
        luna = Luna(indexed_context, planner_model="sim-oracle", policy="quality")
        luna.query("Which state had the most incidents caused by wind?", index="ntsb")
        luna.query("How many incidents were caused by icing?", index="ntsb")
        assert len(luna.history) == 2
        assert luna.history.get(1).sequence == 1


def _state_name(abbrev: str) -> str:
    from repro.llm.knowledge import US_STATES

    return next(name for name, ab in US_STATES.items() if ab == abbrev)


class TestRetrievalReads:
    def test_read_index_with_query(self, indexed_context):
        retrieved = indexed_context.read.index(
            "ntsb", query="gusty crosswind landing", k=3
        ).take_all()
        assert 1 <= len(retrieved) <= 3

    def test_queryindex_operator_with_query(self, indexed_context):
        plan = LogicalPlan.from_json(
            [
                {"operation": "QueryIndex", "inputs": [], "index": "ntsb",
                 "query": "icing conditions", "k": 4},
                {"operation": "Count", "inputs": [0]},
            ]
        )
        answer, _ = LunaExecutor(indexed_context).execute(plan)
        assert 1 <= answer <= 4


class TestCodegenVariants:
    def test_summarize_with_question(self):
        plan = LogicalPlan.from_json(
            [
                {"operation": "QueryIndex", "inputs": [], "index": "i"},
                {"operation": "Summarize", "inputs": [0], "question": "what happened?"},
            ]
        )
        assert "summarize_all(question='what happened?')" in generate_code(plan)

    def test_identity_renders_as_passthrough(self):
        plan = LogicalPlan.from_json(
            [
                {"operation": "QueryIndex", "inputs": [], "index": "i"},
                {"operation": "Identity", "inputs": [0]},
                {"operation": "Count", "inputs": [1]},
            ]
        )
        code = generate_code(plan)
        assert "out_1 = out_0" in code
        assert "result = out_1.count()" in code

    def test_join_left_variant(self):
        plan = LogicalPlan.from_json(
            [
                {"operation": "QueryIndex", "inputs": [], "index": "a"},
                {"operation": "QueryIndex", "inputs": [], "index": "b"},
                {"operation": "Join", "inputs": [0, 1], "left_on": "x",
                 "right_on": "y"},
            ]
        )
        assert "join(out_1, left_on='x', right_on='y')" in generate_code(plan)


class TestOptimizerChains:
    def test_triple_llm_filter_fusion(self):
        plan = LogicalPlan.from_json(
            [
                {"operation": "QueryIndex", "inputs": [], "index": "i"},
                {"operation": "LlmFilter", "inputs": [0], "condition": "a"},
                {"operation": "LlmFilter", "inputs": [1], "condition": "b"},
                {"operation": "LlmFilter", "inputs": [2], "condition": "c"},
                {"operation": "Count", "inputs": [3]},
            ]
        )
        optimized, _ = LunaOptimizer(COST_POLICY).optimize(plan, {})
        conditions = [
            n.params.get("condition")
            for n in optimized.nodes
            if n.operation == "LlmFilter"
        ]
        assert conditions == ["a and b and c"]
        operations = [n.operation for n in optimized.nodes]
        assert operations.count("Identity") == 2
        optimized.validate()

    def test_pushdown_through_multiple_basics(self):
        plan = LogicalPlan.from_json(
            [
                {"operation": "QueryIndex", "inputs": [], "index": "i"},
                {"operation": "LlmFilter", "inputs": [0], "condition": "x"},
                {"operation": "BasicFilter", "inputs": [1], "field": "a", "op": "eq", "value": 1},
                {"operation": "BasicFilter", "inputs": [2], "field": "b", "op": "eq", "value": 2},
                {"operation": "Count", "inputs": [3]},
            ]
        )
        optimized, _ = LunaOptimizer(COST_POLICY).optimize(plan, {"a": "int", "b": "int"})
        operations = [n.operation for n in optimized.nodes[1:4]]
        assert operations == ["BasicFilter", "BasicFilter", "LlmFilter"]
        # Relative order of the two structured filters is preserved.
        assert optimized.nodes[1].params["field"] == "a"
        assert optimized.nodes[2].params["field"] == "b"


class TestWriterEdgeCases:
    def test_write_index_create_false_requires_existing(self):
        ctx = SycamoreContext(parallelism=1)
        ds = ctx.read.documents([Document.from_text("x")])
        with pytest.raises(KeyError):
            ds.write.index("missing", create=False)
        ctx.catalog.create("missing")
        assert ds.write.index("missing", create=False) == 1

    def test_summarize_all_with_question(self, indexed_context):
        text = (
            indexed_context.read.index("ntsb")
            .limit(3)
            .summarize_all(model="sim-oracle", question="what happened?")
        )
        assert isinstance(text, str) and text

    def test_llm_query_parse_json(self):
        ctx = SycamoreContext(parallelism=1)
        doc = Document.from_text("Alpha: one")
        out = (
            ctx.read.documents([doc])
            .llm_query(
                "ignored", output_property="raw", model="sim-oracle", parse_json=False
            )
            .first()
        )
        assert isinstance(out.properties["raw"], str)


class TestFollowUpQueries:
    """§6.1 iterative refinement: questions about the previous answer."""

    def _luna(self, indexed_context):
        from repro.luna import Luna, OptimizerPolicy

        oracle = OptimizerPolicy(
            name="oracle",
            filter_model="sim-oracle",
            extract_model="sim-oracle",
            summarize_model="sim-oracle",
        )
        return Luna(indexed_context, planner_model="sim-oracle", policy=oracle)

    def test_follow_up_composes_filters(self, indexed_context, ntsb_corpus):
        records, _ = ntsb_corpus
        luna = self._luna(indexed_context)
        first = luna.query("How many incidents were caused by wind?", index="ntsb")
        follow = luna.follow_up("How many of those happened in 2022?")
        truth = sum(
            1 for r in records if r.cause_detail == "wind" and r.year == 2022
        )
        assert follow.answer == truth
        assert follow.optimized_plan.nodes[0].operation == "FromDocuments"
        # The follow-up's base set is exactly the first answer's provenance.
        assert set(follow.optimized_plan.nodes[0].params["doc_ids"]) == set(
            first.trace.supporting_documents()
        )

    def test_follow_up_chains_further(self, indexed_context, ntsb_corpus):
        records, _ = ntsb_corpus
        luna = self._luna(indexed_context)
        luna.query("How many incidents were caused by environmental factors?", index="ntsb")
        luna.follow_up("How many of those were caused by wind?")
        final = luna.follow_up("Which state had the most incidents?")
        from collections import Counter

        wind_states = Counter(r.state for r in records if r.cause_detail == "wind")
        top = max(wind_states.values())
        acceptable = {s for s, c in wind_states.items() if c == top}
        assert final.answer[0][0] in acceptable

    def test_follow_up_requires_history(self, indexed_context):
        luna = self._luna(indexed_context)
        with pytest.raises(ValueError, match="no previous query"):
            luna.follow_up("how many of those?")

    def test_follow_up_requires_provenance(self, indexed_context):
        luna = self._luna(indexed_context)
        # A count answer's trace still carries the filtered documents, so
        # force a provenance-free history entry via a Math-only plan.
        from repro.luna import LogicalPlan

        plan = LogicalPlan.from_json(
            [
                {"operation": "QueryIndex", "inputs": [], "index": "ntsb"},
                {"operation": "Count", "inputs": [0]},
                {"operation": "Math", "inputs": [1], "expression": "#1 * 0"},
            ]
        )
        # Manually fabricate an entry with no document output at any node.
        result = luna.execute_plan("count", "ntsb", plan)
        result.trace.entries = [e for e in result.trace.entries if not e.document_ids]
        with pytest.raises(ValueError, match="provenance"):
            luna.follow_up("of those?")

    def test_from_documents_codegen(self):
        from repro.luna import LogicalPlan, generate_code

        plan = LogicalPlan.from_json(
            [
                {"operation": "FromDocuments", "inputs": [], "index": "ntsb",
                 "doc_ids": ["a", "b"]},
                {"operation": "Count", "inputs": [0]},
            ]
        )
        assert "previous_answer_documents" in generate_code(plan)
