"""Tests for the hashing embedder."""

import numpy as np
import pytest

from repro.embedding import HashingEmbedder, cosine_similarity, tokenize


class TestTokenize:
    def test_lowercase_words(self):
        assert tokenize("Hello, World! 42") == ["hello", "world", "42"]

    def test_empty(self):
        assert tokenize("") == []


class TestCosine:
    def test_identical(self):
        v = np.array([1.0, 2.0, 3.0])
        assert cosine_similarity(v, v) == pytest.approx(1.0)

    def test_orthogonal(self):
        assert cosine_similarity(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 0.0

    def test_zero_vector(self):
        assert cosine_similarity(np.zeros(3), np.ones(3)) == 0.0


class TestHashingEmbedder:
    def test_deterministic(self):
        e = HashingEmbedder(seed=1)
        a = e.embed("the quick brown fox")
        b = HashingEmbedder(seed=1).embed("the quick brown fox")
        assert np.allclose(a, b)

    def test_normalized(self):
        e = HashingEmbedder()
        assert np.linalg.norm(e.embed("some text here")) == pytest.approx(1.0)

    def test_empty_text_zero_vector(self):
        e = HashingEmbedder()
        assert np.linalg.norm(e.embed("")) == 0.0

    def test_dimensions_respected(self):
        e = HashingEmbedder(dimensions=64)
        assert e.embed("x").shape == (64,)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            HashingEmbedder(dimensions=0)

    def test_seed_changes_space(self):
        a = HashingEmbedder(seed=1).embed("hello world")
        b = HashingEmbedder(seed=2).embed("hello world")
        assert not np.allclose(a, b)

    def test_vectors_are_readonly(self):
        e = HashingEmbedder()
        v = e.embed("abc")
        with pytest.raises(ValueError):
            v[0] = 5.0

    def test_embed_many(self):
        e = HashingEmbedder()
        vectors = e.embed_many(["a b", "c d"])
        assert len(vectors) == 2


class TestSemanticBehaviour:
    def test_lexical_overlap_increases_similarity(self):
        e = HashingEmbedder(concept_weight=0.0)
        same_topic = e.similarity("the pilot landed the plane", "the pilot landed safely")
        different = e.similarity("the pilot landed the plane", "quarterly revenue fell")
        assert same_topic > different

    def test_concept_smoothing_clusters_synonyms(self):
        with_concepts = HashingEmbedder(concept_weight=1.0)
        without = HashingEmbedder(concept_weight=0.0)
        pair = ("a strong gust hit the runway", "severe crosswind during approach")
        assert with_concepts.similarity(*pair) > without.similarity(*pair)

    def test_unrelated_topics_stay_unrelated(self):
        e = HashingEmbedder()
        sim = e.similarity("gusty crosswind on final", "fatigue crack in the engine")
        assert sim < 0.3

    def test_word_order_matters_slightly(self):
        e = HashingEmbedder(concept_weight=0.0)
        assert e.similarity("dog bites man", "man bites dog") < 1.0
