"""Task envelopes: what crosses the process boundary, and nothing else.

A worker process receives a :class:`TaskEnvelope` — the shard's
documents, a *declarative* :class:`ShardPlanSpec` (operator names and
JSON-able params, mirroring Luna's logical-plan nodes), the remaining
deadline budget, and a derived fault seed — and sends back a
:class:`ShardResult`. Nothing else is shared: no closures, no locks, no
live LLM clients. The worker rebuilds its pipeline from the spec with
the same transform factories the in-process engine uses, which is what
makes sharded output byte-identical to local execution.

:func:`ensure_picklable_spec` enforces the boundary at submit time with
a typed error instead of a ``PicklingError`` deep inside a queue feeder
thread; the ``nonpicklable-task-capture`` lint rule enforces the same
discipline statically.
"""

from __future__ import annotations

import threading
import types
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..docmodel.document import Document
from ..execution.materialize import stable_fingerprint

#: Operations a shard plan may carry — the per-record subset of Luna's
#: operator algebra (each document's output depends only on that
#: document), which is exactly what makes them shardable. The planner
#: owns the canonical definition; re-exported here for the worker side.
from ..luna.operators import SHARDABLE_OPERATIONS


class NonPicklableTaskError(TypeError):
    """A task envelope captured something that cannot cross processes."""


@dataclass(frozen=True)
class ShardOp:
    """One declarative per-record operator (operation name + params)."""

    operation: str
    params: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, operation: str, **params: Any) -> "ShardOp":
        """Build an op from keyword params (sorted for stable identity)."""
        return cls(operation=operation, params=tuple(sorted(params.items())))

    def param_dict(self) -> Dict[str, Any]:
        """The params as a plain dict."""
        return dict(self.params)


@dataclass(frozen=True)
class ShardPlanSpec:
    """A declarative sub-plan: the ops every shard runs over its slice."""

    ops: Tuple[ShardOp, ...]
    default_model: str = "sim-large"

    @classmethod
    def from_ops(cls, ops: "List[ShardOp] | Tuple[ShardOp, ...]", default_model: str = "sim-large") -> "ShardPlanSpec":
        spec = cls(ops=tuple(ops), default_model=default_model)
        spec.validate()
        return spec

    def validate(self) -> None:
        """Typed rejection of non-shardable or non-picklable specs."""
        if not self.ops:
            raise ValueError("a shard plan needs at least one operator")
        for op in self.ops:
            if op.operation not in SHARDABLE_OPERATIONS:
                raise ValueError(
                    f"operation {op.operation!r} is not shardable "
                    f"(shardable: {', '.join(SHARDABLE_OPERATIONS)})"
                )
        ensure_picklable_spec(self)

    def fingerprint(self) -> str:
        """Stable identity of this sub-plan (journal shard records key
        on it, so a resume never replays shards of a different plan)."""
        return stable_fingerprint(
            [
                self.default_model,
                [[op.operation, list(op.params)] for op in self.ops],
            ]
        )


#: Types that must never ride an envelope across the process boundary.
_UNPICKLABLE_TYPES: Tuple[type, ...] = (
    types.FunctionType,
    types.LambdaType,
    types.MethodType,
    types.GeneratorType,
    types.ModuleType,
    type(threading.Lock()),
    type(threading.RLock()),
    threading.Condition,
    threading.Event,
    threading.Semaphore,
    threading.Thread,
)


def ensure_picklable_spec(spec: "ShardPlanSpec") -> None:
    """Raise :class:`NonPicklableTaskError` when a spec captures state
    that cannot (or must not) cross the process boundary."""
    for op in spec.ops:
        for key, value in op.params:
            _check_value(f"{op.operation}.{key}", value)


def _is_lock_like(value: Any) -> bool:
    """Duck-typed lock check: the analysis locksmith replaces
    ``threading.Lock``/``RLock`` with wrapper classes, so the type tuple
    above (captured at import) misses monitored locks. Anything exposing
    both ``acquire`` and ``release`` callables is a synchronization
    primitive and must not cross the process boundary either way."""
    return callable(getattr(value, "acquire", None)) and callable(
        getattr(value, "release", None)
    )


def _check_value(path: str, value: Any) -> None:
    if isinstance(value, _UNPICKLABLE_TYPES) or _is_lock_like(value):
        raise NonPicklableTaskError(
            f"shard plan param {path} captures {type(value).__name__}; "
            f"task envelopes must carry declarative JSON-able values only"
        )
    if isinstance(value, dict):
        for key, item in value.items():
            _check_value(f"{path}.{key}", item)
    elif isinstance(value, (list, tuple, set, frozenset)):
        for index, item in enumerate(value):
            _check_value(f"{path}[{index}]", item)


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker needs to rebuild its private stack.

    A plain-value dataclass: it crosses the process boundary at worker
    start, so it carries seeds and knobs, never live objects. The LLM
    seed equals the parent's — the simulated backend is deterministic
    per (model, prompt, seed), so shard placement cannot change
    completions. Fault seeds, by contrast, are per-shard (see
    :func:`~repro.cluster.sharding.derive_fault_seed`) and ride each
    envelope.
    """

    seed: int = 0
    default_model: str = "sim-large"
    #: In-worker thread parallelism for the shard's DocSet plan.
    parallelism: int = 1
    #: Fraction of virtual LLM latency really slept (see SimulatedLLM).
    real_latency_scale: float = 0.0
    #: Per-record failure containment inside the worker ("fail" | "retry"
    #: | "skip" | "dead_letter").
    on_error: str = "retry"
    #: Deterministic per-shard fault injection (0.0 disables).
    transient_rate: float = 0.0
    rate_limit_rate: float = 0.0


@dataclass
class TaskEnvelope:
    """One shard's work order, serialized into a worker task queue."""

    query_id: str
    shard_id: int
    attempt: int
    spec: ShardPlanSpec
    documents: List[Document]
    #: Original positions of ``documents`` (parallel), for the merge.
    positions: List[int]
    #: Remaining end-to-end budget at dispatch (None: unbounded). The
    #: worker rebuilds a Deadline from it, so the parent's lifecycle
    #: discipline crosses the process boundary.
    budget_s: Optional[float] = None
    #: Per-shard fault-injection seed (parent seed x shard id).
    fault_seed: int = 0
    #: Chaos hook: "die" makes the worker exit hard mid-shard, proving
    #: worker-death detection and shard retry on a peer.
    poison: Optional[str] = None
    #: Opaque coordinator run token, echoed back on the ShardResult so a
    #: gather loop can discard stale results from an abandoned run.
    run_token: str = ""


@dataclass
class ShardResult:
    """What a worker sends back for one envelope."""

    shard_id: int
    attempt: int
    worker_id: int
    #: "ok" | "deadline" | "error"
    status: str
    documents: List[Document] = field(default_factory=list)
    positions: List[int] = field(default_factory=list)
    error: str = ""
    #: Deadline context when status == "deadline".
    budget_s: float = 0.0
    elapsed_s: float = 0.0
    #: Worker-side execution stats, folded into coordinator metrics and
    #: the per-shard span (worker spans cannot join the parent tracer).
    wall_s: float = 0.0
    llm_calls: int = 0
    cost_usd: float = 0.0
    dead_lettered: int = 0
    skipped: int = 0
    #: Echo of the envelope's run token (stale-result guard).
    run_token: str = ""
