"""Scatter/gather coordination over a pool of worker processes.

The :class:`ClusterCoordinator` is the control plane of the shared-
nothing layer: it partitions a document set into deterministic shards
(:mod:`~repro.cluster.sharding`), scatters per-shard envelopes across a
fixed pool of worker processes, and gathers results back into an
order-stable merge. Its obligations mirror what the paper gets from Ray
plus OpenSearch sharding:

* **Admission** — segments are admitted against a serving
  :class:`~repro.serving.session.Tenant` quota and shed with the same
  typed :class:`~repro.serving.service.Overloaded` the query service
  raises, so a caller cannot distinguish cluster saturation from
  service saturation (and handles both with one retry policy).
* **Lifecycle** — the ambient :class:`~repro.lifecycle.CancelScope` is
  honoured at every gather step, and the *remaining* budget is
  serialized into each envelope so workers enforce the same end-to-end
  deadline from the other side of the process boundary. A shard that
  dies with the deadline raises the same typed
  :class:`~repro.lifecycle.DeadlineExceeded`; ``partial="typed"``
  instead returns a :class:`ClusterRunResult` naming the unfinished
  shards.
* **Fault tolerance** — a worker that disappears mid-shard is detected
  by exit code, its outstanding shards are re-dispatched to a live peer
  (attempt-bounded), and the pool is healed by respawning the slot.
  With a journal attached, completed shards are checkpointed so a
  resumed query re-runs only the shards that were lost.
* **Observability** — ``cluster.*`` metrics and per-shard spans linked
  under one ``cluster.segment`` span in the parent trace.

Gather never blocks unboundedly: every queue wait carries a timeout and
re-checks the scope and the worker pool, the same discipline the
static-analysis rules enforce on the serving hot path.
"""

from __future__ import annotations

import itertools
import multiprocessing
import threading
import time
from dataclasses import dataclass, field
from queue import Empty
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..docmodel.document import Document
from ..execution.materialize import stable_fingerprint
from ..lifecycle.deadline import CancelScope, DeadlineExceeded, current_scope
from ..lifecycle.journal import JournalError, QueryJournal
from ..observability.metrics import MetricsRegistry, get_registry
from ..observability.tracing import Span, Tracer
from ..serving.service import Overloaded
from ..serving.session import Tenant, TenantQuota
from .envelope import ShardOp, ShardPlanSpec, ShardResult, TaskEnvelope, WorkerConfig
from .sharding import (
    Shard,
    derive_fault_seed,
    merge_shard_outputs,
    partition_documents,
    partition_fingerprint,
)
from .worker import worker_main

#: How long one gather wait blocks before re-checking the scope and the
#: worker pool. Worker death is therefore detected within one poll.
RESULT_POLL_S = 0.2

#: How long close() waits for a worker to exit gracefully before
#: terminating it.
SHUTDOWN_GRACE_S = 2.0


class ClusterError(RuntimeError):
    """A shard could not be completed within the retry budget."""

    def __init__(self, message: str, shard_id: int = -1, attempts: int = 0):
        super().__init__(message)
        self.shard_id = shard_id
        self.attempts = attempts


@dataclass(frozen=True)
class ClusterConfig:
    """Cluster sizing, placement determinism, and chaos knobs."""

    n_workers: int = 2
    #: Shard count; 0 derives ``shards_per_worker * n_workers``. More
    #: shards than workers gives finer retry granularity and better load
    #: balance; shard *assignment* stays a pure function of doc ids.
    n_shards: int = 0
    shards_per_worker: int = 2
    #: How many times one shard may be re-dispatched (worker death or
    #: shard error) before the segment fails with :class:`ClusterError`.
    max_shard_retries: int = 2
    #: Segments admitted (running or waiting) at once; beyond this the
    #: coordinator sheds load with a typed ``Overloaded``.
    max_inflight_segments: int = 4
    #: multiprocessing start method. ``spawn`` is the portable default
    #: and enforces the picklable-envelope discipline end to end.
    start_method: str = "spawn"
    #: Worker stack configuration (see WorkerConfig for semantics).
    seed: int = 0
    default_model: str = "sim-large"
    worker_parallelism: int = 1
    real_latency_scale: float = 0.0
    on_error: str = "retry"
    transient_rate: float = 0.0
    rate_limit_rate: float = 0.0
    #: Chaos hook: poison the first attempt of this shard id so its
    #: worker dies mid-shard (proving death detection + peer retry).
    chaos_kill_shard: Optional[int] = None
    #: Below this many documents, engines should run an operator
    #: in-process rather than pay scatter overhead (Luna's routing
    #: threshold; the coordinator itself does not enforce it).
    min_cluster_docs: int = 8

    def effective_shards(self) -> int:
        """The shard count this config actually partitions into."""
        if self.n_shards > 0:
            return self.n_shards
        return max(1, self.n_workers * self.shards_per_worker)

    def worker_config(self) -> WorkerConfig:
        """The plain-value config shipped to every worker process."""
        return WorkerConfig(
            seed=self.seed,
            default_model=self.default_model,
            parallelism=self.worker_parallelism,
            real_latency_scale=self.real_latency_scale,
            on_error=self.on_error,
            transient_rate=self.transient_rate,
            rate_limit_rate=self.rate_limit_rate,
        )


@dataclass
class ClusterRunResult:
    """Outcome of one scatter/gather segment."""

    documents: List[Document]
    #: "ok", or "partial" when ``partial="typed"`` absorbed a deadline.
    status: str = "ok"
    n_shards: int = 0
    completed_shards: int = 0
    #: Shards replayed from journal checkpoints instead of re-run.
    reused_shards: int = 0
    retried_shards: int = 0
    #: Shards unfinished when the deadline hit (``partial="typed"``).
    deadline_shards: List[int] = field(default_factory=list)
    worker_deaths: int = 0
    llm_calls: int = 0
    cost_usd: float = 0.0
    dead_lettered: int = 0
    skipped: int = 0
    wall_s: float = 0.0


@dataclass
class _WorkerHandle:
    """One worker slot: the live process and its private task queue."""

    slot: int
    generation: int
    process: Any
    task_queue: Any


@dataclass
class _Assignment:
    """Where one in-flight shard currently lives."""

    slot: int
    generation: int
    envelope: TaskEnvelope
    span: Optional[Span] = None


class ClusterCoordinator:
    """Scatter/gather control plane over a worker-process pool.

    Segments run one at a time (admission bounds how many may *wait*);
    parallelism lives inside a segment, across its shards and workers.
    The coordinator owns its workers: :meth:`close` shuts the pool down
    and is required (``with`` works), matching QueryService's contract.
    """

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        tracer: Optional[Tracer] = None,
        registry: Optional[MetricsRegistry] = None,
        journal: Optional[QueryJournal] = None,
    ):
        self.config = config or ClusterConfig()
        if self.config.n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if self.config.max_shard_retries < 0:
            raise ValueError("max_shard_retries must be >= 0")
        self.tracer = tracer
        self.registry = registry if registry is not None else get_registry()
        self.journal = journal
        self._mp = multiprocessing.get_context(self.config.start_method)
        self._slots: List[_WorkerHandle] = []
        self._result_queue: Any = None
        self._generations = itertools.count()
        self._run_tokens = itertools.count()
        self._dispatch_rr = itertools.count()
        self._lock = threading.RLock()
        self._run_lock = threading.Lock()
        self._closed = False
        self.tenant = Tenant(
            name="cluster",
            quota=TenantQuota(max_inflight=self.config.max_inflight_segments),
        )
        self._tenant_lock = threading.Lock()
        reg = self.registry
        self._m_segments = reg.counter("cluster.segments")
        self._m_rejected = reg.counter("cluster.rejected_segments")
        self._m_shards = reg.counter("cluster.shards_completed")
        self._m_reused = reg.counter("cluster.shards_reused")
        self._m_retries = reg.counter("cluster.shard_retries")
        self._m_deaths = reg.counter("cluster.worker_deaths")
        self._m_deadline = reg.counter("cluster.deadline_shards")
        self._m_llm_calls = reg.counter("cluster.llm_calls")
        self._m_docs_in = reg.counter("cluster.documents_in")
        self._m_docs_out = reg.counter("cluster.documents_out")
        self._m_errors = reg.counter("cluster.errors")
        self._g_workers = reg.gauge("cluster.workers_alive")
        #: Cumulative counters mirrored into :meth:`stats`.
        self.segments_run = 0
        self.shards_completed = 0
        self.shards_reused = 0
        self.shards_retried = 0
        self.worker_deaths = 0

    # ------------------------------------------------------------------
    # Worker pool
    # ------------------------------------------------------------------

    def _ensure_started(self) -> None:
        with self._lock:
            if self._closed:
                raise ClusterError("cluster coordinator is closed")
            if self._result_queue is None:
                self._result_queue = self._mp.Queue()
            while len(self._slots) < self.config.n_workers:
                self._slots.append(self._spawn(slot=len(self._slots)))
            self._g_workers.set(self._alive_workers())

    def _spawn(self, slot: int) -> _WorkerHandle:
        task_queue = self._mp.Queue()
        process = self._mp.Process(
            target=worker_main,
            args=(slot, self.config.worker_config(), task_queue, self._result_queue),
            name=f"repro-cluster-worker-{slot}",
            daemon=True,
        )
        process.start()
        return _WorkerHandle(
            slot=slot,
            generation=next(self._generations),
            process=process,
            task_queue=task_queue,
        )

    def _alive_workers(self) -> int:
        return sum(1 for handle in self._slots if handle.process.is_alive())

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run_op(
        self,
        documents: Sequence[Document],
        operation: str,
        query_id: str = "",
        scope: Optional[CancelScope] = None,
        partial: str = "raise",
        default_model: Optional[str] = None,
        **params: Any,
    ) -> ClusterRunResult:
        """Run one shardable operator as a single-op segment."""
        spec = ShardPlanSpec.from_ops(
            [ShardOp.make(operation, **params)],
            default_model=default_model or self.config.default_model,
        )
        return self.run_segment(
            documents, spec, query_id=query_id, scope=scope, partial=partial
        )

    def run_segment(
        self,
        documents: Sequence[Document],
        spec: ShardPlanSpec,
        query_id: str = "",
        scope: Optional[CancelScope] = None,
        partial: str = "raise",
    ) -> ClusterRunResult:
        """Scatter a spec over shards of ``documents`` and gather.

        ``partial`` chooses the deadline contract: ``"raise"`` surfaces
        the typed :class:`DeadlineExceeded`; ``"typed"`` returns a
        ``status="partial"`` result listing the unfinished shards.
        """
        if partial not in ("raise", "typed"):
            raise ValueError('partial must be "raise" or "typed"')
        with self._tenant_lock:
            if self.tenant.inflight >= self.tenant.quota.max_inflight:
                self.tenant.rejected += 1
                self._m_rejected.inc()
                raise Overloaded(
                    f"cluster saturated: {self.tenant.inflight} segments in flight",
                    reason="cluster_busy",
                    retry_after_s=1.0,
                    inflight=self.tenant.inflight,
                )
            self.tenant.inflight += 1
            self.tenant.submitted += 1
        try:
            with self._run_lock:
                result = self._run_segment_locked(
                    list(documents), spec, query_id, scope, partial
                )
            with self._tenant_lock:
                self.tenant.completed += 1
            return result
        except BaseException:
            with self._tenant_lock:
                self.tenant.failed += 1
            self._m_errors.inc()
            raise
        finally:
            with self._tenant_lock:
                self.tenant.inflight -= 1

    # ------------------------------------------------------------------
    # Segment execution
    # ------------------------------------------------------------------

    def _run_segment_locked(
        self,
        documents: List[Document],
        spec: ShardPlanSpec,
        query_id: str,
        scope: Optional[CancelScope],
        partial: str,
    ) -> ClusterRunResult:
        spec.validate()
        if scope is None:
            scope = current_scope()
        self._ensure_started()
        started = time.monotonic()
        n_shards = self.config.effective_shards()
        shards = partition_documents(documents, n_shards)
        segment_fp = stable_fingerprint(
            [spec.fingerprint(), partition_fingerprint(documents, n_shards)]
        )
        run_token = f"{query_id or 'segment'}#{next(self._run_tokens)}"
        self._m_segments.inc()
        self._m_docs_in.inc(len(documents))
        self.segments_run += 1

        result = ClusterRunResult(documents=[], n_shards=n_shards)
        outputs: Dict[int, Tuple[Sequence[Document], Sequence[int]]] = {}

        # Journal resume: shards checkpointed under this exact segment
        # fingerprint replay from disk instead of re-running.
        if self.journal is not None and query_id:
            try:
                state = self.journal.load(query_id)
            except JournalError:
                state = None  # first attempt: nothing to resume from
            if state is not None:
                for shard in shards:
                    record = state.shards.get(shard.shard_id)
                    if record is not None and record.get("fingerprint") == segment_fp:
                        outputs[shard.shard_id] = (
                            record["documents"],
                            record["positions"],
                        )
                        result.reused_shards += 1
                        self._m_reused.inc()
        self.shards_reused += result.reused_shards

        # Empty shards complete trivially — never dispatched.
        for shard in shards:
            if shard.shard_id not in outputs and len(shard) == 0:
                outputs[shard.shard_id] = ([], [])

        pending: Dict[int, Shard] = {
            shard.shard_id: shard
            for shard in shards
            if shard.shard_id not in outputs
        }
        deaths_before = self.worker_deaths

        segment_span: Optional[Span] = None
        if self.tracer is not None:
            segment_span = self.tracer.start_span(
                "cluster.segment",
                query_id=query_id,
                run_token=run_token,
                shards=n_shards,
                dispatched_shards=len(pending),
                reused_shards=result.reused_shards,
                workers=self.config.n_workers,
                documents=len(documents),
            )

        assignments: Dict[int, _Assignment] = {}
        status = "ok"
        error: Optional[BaseException] = None
        try:
            self._drain_stale_results()
            for shard in pending.values():
                self._dispatch(
                    shard_id=shard.shard_id,
                    documents=list(shard.documents),
                    positions=list(shard.positions),
                    spec=spec,
                    attempt=0,
                    query_id=query_id,
                    run_token=run_token,
                    scope=scope,
                    assignments=assignments,
                    segment_span=segment_span,
                )

            while pending:
                if scope is not None:
                    try:
                        scope.check()
                    except DeadlineExceeded:
                        if partial != "typed":
                            raise
                        for shard_id in sorted(pending):
                            result.deadline_shards.append(shard_id)
                            self._m_deadline.inc()
                            self._finish_shard_span(
                                assignments.pop(shard_id, None),
                                status="error",
                                outcome="deadline",
                            )
                        pending.clear()
                        status = "partial"
                        break
                try:
                    shard_result: ShardResult = self._result_queue.get(
                        timeout=RESULT_POLL_S
                    )
                except Empty:
                    self._reap_dead_workers(
                        pending, assignments, result, scope, segment_span
                    )
                    continue
                if (
                    shard_result.run_token != run_token
                    or shard_result.shard_id not in pending
                ):
                    continue  # stale result from an abandoned run, or a duplicate
                self._absorb_result(
                    shard_result,
                    pending,
                    assignments,
                    outputs,
                    result,
                    partial,
                    query_id,
                    segment_fp,
                    scope,
                    segment_span,
                )

            result.documents = merge_shard_outputs(outputs)
            result.status = status
            result.completed_shards = len(outputs)
            result.worker_deaths = self.worker_deaths - deaths_before
            result.wall_s = time.monotonic() - started
            self._m_docs_out.inc(len(result.documents))
            return result
        except BaseException as exc:
            error = exc
            for assignment in assignments.values():
                self._finish_shard_span(
                    assignment, status="error", outcome="abandoned"
                )
            raise
        finally:
            if segment_span is not None and self.tracer is not None:
                segment_span.set_attributes(
                    status=status if error is None else "error",
                    completed_shards=result.completed_shards,
                    retried_shards=result.retried_shards,
                    deadline_shards=list(result.deadline_shards),
                    worker_deaths=self.worker_deaths - deaths_before,
                    llm_calls=result.llm_calls,
                    cost_usd=round(result.cost_usd, 6),
                )
                self.tracer.finish(
                    segment_span,
                    status="ok" if error is None else "error",
                    error=str(error) if error is not None else None,
                )

    # ------------------------------------------------------------------
    # Scatter/gather internals
    # ------------------------------------------------------------------

    def _dispatch(
        self,
        shard_id: int,
        documents: List[Document],
        positions: List[int],
        spec: ShardPlanSpec,
        attempt: int,
        query_id: str,
        run_token: str,
        scope: Optional[CancelScope],
        assignments: Dict[int, _Assignment],
        segment_span: Optional[Span],
    ) -> None:
        budget_s: Optional[float] = None
        if scope is not None and scope.deadline is not None:
            budget_s = scope.remaining()
        poison = None
        if attempt == 0 and self.config.chaos_kill_shard == shard_id:
            poison = "die"
        envelope = TaskEnvelope(
            query_id=query_id,
            shard_id=shard_id,
            attempt=attempt,
            spec=spec,
            documents=documents,
            positions=positions,
            budget_s=budget_s,
            fault_seed=derive_fault_seed(self.config.seed, shard_id),
            poison=poison,
            run_token=run_token,
        )
        with self._lock:
            slot = next(self._dispatch_rr) % len(self._slots)
            handle = self._slots[slot]
            handle.task_queue.put(envelope)
        span: Optional[Span] = None
        if self.tracer is not None:
            span = self.tracer.start_span(
                "cluster.shard",
                parent=segment_span,
                shard_id=shard_id,
                attempt=attempt,
                worker=slot,
                documents=len(documents),
                poisoned=poison is not None,
            )
        assignments[shard_id] = _Assignment(
            slot=slot,
            generation=handle.generation,
            envelope=envelope,
            span=span,
        )

    def _absorb_result(
        self,
        shard_result: ShardResult,
        pending: Dict[int, Shard],
        assignments: Dict[int, _Assignment],
        outputs: Dict[int, Tuple[Sequence[Document], Sequence[int]]],
        result: ClusterRunResult,
        partial: str,
        query_id: str,
        segment_fp: str,
        scope: Optional[CancelScope],
        segment_span: Optional[Span],
    ) -> None:
        shard_id = shard_result.shard_id
        assignment = assignments.pop(shard_id, None)
        result.llm_calls += shard_result.llm_calls
        result.cost_usd += shard_result.cost_usd
        self._m_llm_calls.inc(shard_result.llm_calls)

        if shard_result.status == "ok":
            pending.pop(shard_id, None)
            outputs[shard_id] = (shard_result.documents, shard_result.positions)
            result.dead_lettered += shard_result.dead_lettered
            result.skipped += shard_result.skipped
            self._m_shards.inc()
            self.shards_completed += 1
            self._finish_shard_span(
                assignment,
                status="ok",
                outcome="ok",
                wall_s=round(shard_result.wall_s, 4),
                llm_calls=shard_result.llm_calls,
                cost_usd=round(shard_result.cost_usd, 6),
                output_documents=len(shard_result.documents),
            )
            if self.journal is not None and query_id:
                self.journal.shard_complete(
                    query_id,
                    shard_id,
                    fingerprint=segment_fp,
                    documents=list(shard_result.documents),
                    positions=list(shard_result.positions),
                )
            return

        if shard_result.status == "deadline":
            self._finish_shard_span(
                assignment, status="error", outcome="deadline"
            )
            self._m_deadline.inc()
            if partial == "typed":
                pending.pop(shard_id, None)
                result.deadline_shards.append(shard_id)
                result.status = "partial"
                return
            raise DeadlineExceeded(
                f"shard {shard_id} exceeded the query deadline: "
                f"{shard_result.error or 'budget exhausted'}",
                budget_s=shard_result.budget_s,
                elapsed_s=shard_result.elapsed_s,
            )

        # status == "error": re-dispatch within the retry budget.
        self._finish_shard_span(
            assignment,
            status="error",
            outcome="error",
            error=shard_result.error,
        )
        self._retry_shard(
            shard_id,
            assignment,
            cause=shard_result.error or "shard failed",
            pending=pending,
            assignments=assignments,
            result=result,
            scope=scope,
            segment_span=segment_span,
        )

    def _retry_shard(
        self,
        shard_id: int,
        assignment: Optional[_Assignment],
        cause: str,
        pending: Dict[int, Shard],
        assignments: Dict[int, _Assignment],
        result: ClusterRunResult,
        scope: Optional[CancelScope],
        segment_span: Optional[Span],
    ) -> None:
        if assignment is None:  # pragma: no cover - defensive
            raise ClusterError(
                f"shard {shard_id} failed with no assignment: {cause}",
                shard_id=shard_id,
            )
        envelope = assignment.envelope
        attempt = envelope.attempt + 1
        if attempt > self.config.max_shard_retries:
            raise ClusterError(
                f"shard {shard_id} failed after {attempt} attempts: {cause}",
                shard_id=shard_id,
                attempts=attempt,
            )
        self._m_retries.inc()
        self.shards_retried += 1
        result.retried_shards += 1
        self._dispatch(
            shard_id=shard_id,
            documents=envelope.documents,
            positions=envelope.positions,
            spec=envelope.spec,
            attempt=attempt,
            query_id=envelope.query_id,
            run_token=envelope.run_token,
            scope=scope,
            assignments=assignments,
            segment_span=segment_span,
        )

    def _reap_dead_workers(
        self,
        pending: Dict[int, Shard],
        assignments: Dict[int, _Assignment],
        result: ClusterRunResult,
        scope: Optional[CancelScope],
        segment_span: Optional[Span],
    ) -> None:
        """Detect dead workers, heal the pool, re-dispatch lost shards."""
        with self._lock:
            dead = [
                handle
                for handle in self._slots
                if not handle.process.is_alive()
            ]
            for handle in dead:
                self._m_deaths.inc()
                self.worker_deaths += 1
                handle.task_queue.close()
                handle.task_queue.cancel_join_thread()
                self._slots[handle.slot] = self._spawn(handle.slot)
            self._g_workers.set(self._alive_workers())
        for handle in dead:
            lost = [
                shard_id
                for shard_id, assignment in assignments.items()
                if assignment.slot == handle.slot
                and assignment.generation == handle.generation
            ]
            for shard_id in lost:
                assignment = assignments.pop(shard_id)
                self._finish_shard_span(
                    assignment,
                    status="error",
                    outcome="worker_died",
                    exitcode=handle.process.exitcode,
                )
                self._retry_shard(
                    shard_id,
                    assignment,
                    cause=f"worker {handle.slot} died "
                    f"(exitcode {handle.process.exitcode})",
                    pending=pending,
                    assignments=assignments,
                    result=result,
                    scope=scope,
                    segment_span=segment_span,
                )

    def _finish_shard_span(
        self,
        assignment: Optional[_Assignment],
        status: str,
        outcome: str,
        **attributes: Any,
    ) -> None:
        if (
            assignment is None
            or assignment.span is None
            or self.tracer is None
        ):
            return
        assignment.span.set_attributes(outcome=outcome, **attributes)
        self.tracer.finish(
            assignment.span,
            status=status,
            error=attributes.get("error"),
        )
        assignment.span = None

    def _drain_stale_results(self) -> None:
        """Discard results left over from abandoned or failed runs."""
        while True:
            try:
                self._result_queue.get_nowait()
            except Empty:
                return

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Counters for `repro cluster-stats` and the serving stats view."""
        with self._lock:
            alive = self._alive_workers()
            configured = self.config.n_workers
        payload = {
            "workers": {"configured": configured, "alive": alive},
            "shards": {
                "per_segment": self.config.effective_shards(),
                "completed": self.shards_completed,
                "reused": self.shards_reused,
                "retried": self.shards_retried,
            },
            "segments": self.segments_run,
            "worker_deaths": self.worker_deaths,
            "tenant": self.tenant.as_dict(),
        }
        return payload

    def close(self) -> None:
        """Stop every worker (graceful sentinel, then terminate)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            slots, self._slots = self._slots, []
        for handle in slots:
            try:
                handle.task_queue.put(None)
            except (ValueError, OSError):  # queue already closed
                pass
        deadline_at = time.monotonic() + SHUTDOWN_GRACE_S
        for handle in slots:
            handle.process.join(timeout=max(0.1, deadline_at - time.monotonic()))
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=1.0)
            handle.task_queue.close()
            handle.task_queue.cancel_join_thread()
        if self._result_queue is not None:
            self._result_queue.close()
            self._result_queue.cancel_join_thread()
            self._result_queue = None
        self._g_workers.set(0)

    def __enter__(self) -> "ClusterCoordinator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
