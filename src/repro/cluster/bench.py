"""The sharding benchmark: single-process vs scatter/gather walls.

One corpus, one declarative shard plan (an LLM extract over every
document), two executions: :func:`~repro.cluster.worker.run_spec_locally`
in-process (the exact code path a worker runs, so the comparison is
apples to apples) and a :class:`~repro.cluster.ClusterCoordinator`
scatter/gather across worker processes. The benchmark reports wall
times, the speedup, and whether the merged sharded output is
**byte-identical** to the single-process run — the correctness bar that
makes the speedup meaningful.

The LLM is the simulated backend with a small ``real_latency_scale``:
each call really sleeps a fixed fraction of its virtual latency, so the
benchmark measures the overlap a shared-nothing cluster buys on an
I/O-bound workload without needing real GPUs (same technique as the
serving and scheduler benchmarks). Fault injection is off — fault
schedules are order-dependent, and the benchmark's identity check
requires both runs to see identical traffic.

Shared by ``python -m repro bench-shard`` and
``benchmarks/test_bench_sharding.py`` (which commits
``BENCH_sharding.json``).
"""

from __future__ import annotations

import time
from typing import Any, Dict, List

from ..docmodel.document import Document
from .coordinator import ClusterConfig, ClusterCoordinator
from .envelope import ShardOp, ShardPlanSpec
from .worker import build_worker_context, run_spec_locally

#: Benchmark defaults: the ISSUE's acceptance configuration.
DEFAULT_DOCS = 50_000
DEFAULT_WORKERS = 4
DEFAULT_LATENCY_SCALE = 0.01

_CAUSES = (
    "wind gusts tore through the approach path",
    "engine failure on climb-out",
    "fuel exhaustion over the ridge",
    "bird strike shattered the windscreen",
    "icing built up on both wings",
)


def generate_bench_corpus(n_docs: int, seed: int = 0) -> List[Document]:
    """A deterministic synthetic corpus for the sharding benchmark.

    Plain single-element documents (the benchmark measures operator
    scatter, not partitioning), with ids and text derived only from the
    index and seed so every run and every process builds the same bytes.
    """
    documents: List[Document] = []
    for i in range(n_docs):
        cause = _CAUSES[i % len(_CAUSES)]
        doc = Document.from_text(
            f"Incident report {seed}-{i:06d}: the aircraft was lost after "
            f"{cause}. Field teams recovered the wreckage in sector {i % 97}.",
            properties={
                "entity": f"incident {i:06d}",
                "sector": i % 97,
            },
        )
        doc.doc_id = f"bench-{seed}-{i:06d}"
        documents.append(doc)
    return documents


def _docset_bytes(documents: List[Document]) -> str:
    """Canonical byte form of an ordered document list."""
    return "\n".join(doc.to_json() for doc in documents)


def run_sharding_benchmark(
    n_docs: int = DEFAULT_DOCS,
    workers: int = DEFAULT_WORKERS,
    shards_per_worker: int = 2,
    latency_scale: float = DEFAULT_LATENCY_SCALE,
    seed: int = 0,
    model: str = "sim-small",
) -> Dict[str, Any]:
    """Run the benchmark; returns the results document (JSON-able)."""
    config = ClusterConfig(
        n_workers=workers,
        shards_per_worker=shards_per_worker,
        seed=seed,
        default_model=model,
        real_latency_scale=latency_scale,
    )
    spec = ShardPlanSpec.from_ops(
        [ShardOp.make("LlmExtract", field="cause", type="string")],
        default_model=model,
    )
    documents = generate_bench_corpus(n_docs, seed=seed)

    # Single-process reference: the identical worker stack (same context
    # factory, same plan builder), one process.
    local_context = build_worker_context(config.worker_config())
    started = time.perf_counter()
    local_docs, _ = run_spec_locally(local_context, documents, spec)
    single_wall = time.perf_counter() - started
    local_bytes = _docset_bytes(local_docs)
    local_calls = local_context.cost_tracker.summary().calls
    if local_context.scheduler is not None:
        local_context.scheduler.close(drain=False)
    local_context.close()

    with ClusterCoordinator(config) as coordinator:
        started = time.perf_counter()
        run = coordinator.run_segment(documents, spec)
        sharded_wall = time.perf_counter() - started
        cluster_stats = coordinator.stats()
    sharded_bytes = _docset_bytes(run.documents)

    speedup = single_wall / sharded_wall if sharded_wall > 0 else float("inf")
    return {
        "benchmark": "sharding",
        "config": {
            "n_docs": n_docs,
            "workers": workers,
            "shards": config.effective_shards(),
            "latency_scale": latency_scale,
            "seed": seed,
            "model": model,
            "plan": [[op.operation, op.param_dict()] for op in spec.ops],
        },
        "single_process": {
            "wall_s": round(single_wall, 3),
            "llm_calls": local_calls,
            "documents_out": len(local_docs),
        },
        "sharded": {
            "wall_s": round(sharded_wall, 3),
            "llm_calls": run.llm_calls,
            "documents_out": len(run.documents),
            "shards_completed": run.completed_shards,
            "shard_retries": run.retried_shards,
            "worker_deaths": run.worker_deaths,
            "workers_alive": cluster_stats["workers"]["alive"],
        },
        "speedup": round(speedup, 2),
        "byte_identical": sharded_bytes == local_bytes,
    }


def render_results(results: Dict[str, Any]) -> str:
    """Human-readable benchmark summary."""
    cfg = results["config"]
    single = results["single_process"]
    sharded = results["sharded"]
    lines = [
        f"sharding benchmark: {cfg['n_docs']} docs, {cfg['workers']} workers "
        f"x {cfg['shards']} shards, model {cfg['model']}",
        f"  single process : {single['wall_s']:8.2f}s  "
        f"({single['documents_out']} docs out)",
        f"  {cfg['workers']}-worker cluster: {sharded['wall_s']:8.2f}s  "
        f"({sharded['documents_out']} docs out, "
        f"{sharded['shards_completed']} shards, "
        f"{sharded['shard_retries']} retries)",
        f"  speedup        : {results['speedup']:.2f}x",
        f"  byte-identical : {results['byte_identical']}",
    ]
    return "\n".join(lines)
