"""Bounded-memory document collections: spill past the budget to disk.

A cluster-sized scan cannot assume the corpus fits in memory. A
:class:`SpillableDocSet` accepts documents one at a time, keeps at most
``max_resident_docs`` of them resident, and spills whole partitions to
JSONL files once the budget is crossed — reusing the journal's Document
codec (:func:`~repro.lifecycle.journal.encode_value`), so a spilled
document survives the disk round trip byte-identically, exactly like a
journalled one.

Layout mirrors the sharding layer: documents land in partitions by the
same stable-fingerprint hash (:func:`~repro.cluster.sharding.shard_for`),
so a spilled partition is precisely the on-disk form of a shard and can
be handed to the cluster without re-partitioning. Iteration streams: a
partition's spill file is read line by line and merged with the resident
tail by insertion sequence (each partition's file + buffer is already
sequence-ordered), so the full set is reproduced in insertion order
without ever being fully resident.
"""

from __future__ import annotations

import heapq
import json
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from ..docmodel.document import Document
from ..lifecycle.journal import decode_value, encode_value
from ..observability.metrics import MetricsRegistry, get_registry
from .sharding import shard_for


class SpillableDocSet:
    """A partitioned document collection with a resident-memory budget.

    Not thread-safe: one producer fills it, then readers iterate. The
    write path is append-only; mutation of already-added documents is
    out of scope (spill a copy if you need isolation).
    """

    def __init__(
        self,
        spill_dir: "Path | str | None" = None,
        max_resident_docs: int = 10_000,
        n_partitions: int = 8,
        registry: Optional[MetricsRegistry] = None,
    ):
        if max_resident_docs < 1:
            raise ValueError("max_resident_docs must be >= 1")
        if n_partitions < 1:
            raise ValueError("n_partitions must be >= 1")
        self._owns_dir = spill_dir is None
        self.spill_dir = Path(
            tempfile.mkdtemp(prefix="repro-spill-") if spill_dir is None else spill_dir
        )
        self.spill_dir.mkdir(parents=True, exist_ok=True)
        self.max_resident_docs = max_resident_docs
        self.n_partitions = n_partitions
        self.registry = registry if registry is not None else get_registry()
        self._m_spills = self.registry.counter("cluster.spills")
        self._m_spilled_docs = self.registry.counter("cluster.spill_docs")
        self._m_spilled_bytes = self.registry.counter("cluster.spill_bytes")
        #: Resident tail of each partition: list of (sequence, document).
        self._buffers: List[List[Tuple[int, Document]]] = [
            [] for _ in range(n_partitions)
        ]
        #: Documents spilled per partition (file line counts).
        self._spilled_counts: List[int] = [0] * n_partitions
        self._resident = 0
        self._sequence = 0
        self.spills = 0
        self.spilled_docs = 0
        self.spilled_bytes = 0

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------

    def append(self, document: Document) -> None:
        """Add one document, spilling if the budget is crossed."""
        partition = shard_for(document.doc_id, self.n_partitions)
        self._buffers[partition].append((self._sequence, document))
        self._sequence += 1
        self._resident += 1
        if self._resident > self.max_resident_docs:
            self._spill_largest()

    def extend(self, documents: Iterable[Document]) -> None:
        """Add documents from any iterable (streaming-friendly)."""
        for document in documents:
            self.append(document)

    @classmethod
    def from_documents(
        cls, documents: Iterable[Document], **kwargs: Any
    ) -> "SpillableDocSet":
        """Build a set from an iterable, spilling as it fills."""
        docset = cls(**kwargs)
        docset.extend(documents)
        return docset

    def _partition_path(self, partition: int) -> Path:
        return self.spill_dir / f"partition-{partition:04d}.jsonl"

    def _spill_largest(self) -> None:
        partition = max(
            range(self.n_partitions), key=lambda i: len(self._buffers[i])
        )
        if not self._buffers[partition]:
            return
        self._spill(partition)

    def _spill(self, partition: int) -> None:
        buffer = self._buffers[partition]
        if not buffer:
            return
        written = 0
        with open(self._partition_path(partition), "a", encoding="utf-8") as handle:
            for sequence, document in buffer:
                line = json.dumps(
                    {"seq": sequence, "document": encode_value(document)},
                    sort_keys=True,
                )
                handle.write(line + "\n")
                written += len(line) + 1
        count = len(buffer)
        self._spilled_counts[partition] += count
        self._resident -= count
        buffer.clear()
        self.spills += 1
        self.spilled_docs += count
        self.spilled_bytes += written
        self._m_spills.inc()
        self._m_spilled_docs.inc(count)
        self._m_spilled_bytes.inc(written)

    def flush(self) -> None:
        """Spill every resident partition (e.g. before handing files off)."""
        for partition in range(self.n_partitions):
            self._spill(partition)

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._sequence

    @property
    def resident_docs(self) -> int:
        """Documents currently held in memory."""
        return self._resident

    def _iter_partition(self, partition: int) -> Iterator[Tuple[int, Document]]:
        """One partition's documents in insertion-sequence order.

        The spill file was appended in sequence order and the resident
        buffer holds strictly newer documents, so file-then-buffer *is*
        sequence order — no sort, no full materialization.
        """
        path = self._partition_path(partition)
        if path.exists():
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    record = json.loads(line)
                    yield record["seq"], decode_value(record["document"])
        for sequence, document in self._buffers[partition]:
            yield sequence, document

    def __iter__(self) -> Iterator[Document]:
        """All documents in insertion order, streamed.

        A k-way merge of the (already sorted) partition streams by
        sequence number: memory use is one document per partition plus
        whatever is resident, never the full set.
        """
        streams = [self._iter_partition(p) for p in range(self.n_partitions)]
        for _, document in heapq.merge(*streams, key=lambda pair: pair[0]):
            yield document

    def partition_documents(self, partition: int) -> List[Document]:
        """One partition's documents, materialized (shard hand-off)."""
        return [document for _, document in self._iter_partition(partition)]

    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Spill accounting for `repro cluster-stats`."""
        return {
            "documents": len(self),
            "resident_docs": self._resident,
            "spilled_docs": self.spilled_docs,
            "spills": self.spills,
            "spilled_bytes": self.spilled_bytes,
            "partitions": self.n_partitions,
            "max_resident_docs": self.max_resident_docs,
        }

    def close(self) -> None:
        """Delete spill files (and the directory when this set made it)."""
        for partition in range(self.n_partitions):
            path = self._partition_path(partition)
            if path.exists():
                path.unlink()
        if self._owns_dir:
            try:
                self.spill_dir.rmdir()
            except OSError:  # leftover files someone else put there
                pass

    def __enter__(self) -> "SpillableDocSet":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
