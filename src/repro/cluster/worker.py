"""The worker process: a private single-process engine per shard.

Each cluster worker is a full, isolated copy of the in-process stack —
its own :class:`~repro.llm.simulated.SimulatedLLM` (same seed as the
parent, so completions are placement-independent), its own
:class:`~repro.llm.client.ReliableLLM` reliability layer, its own
:class:`~repro.runtime.RequestScheduler` and executor. Nothing is shared
with the coordinator but the task/result queues; this is the paper's
shared-nothing Ray-worker shape scaled down to ``multiprocessing``.

Byte-identity with local execution is structural, not tested-in:
:func:`run_spec_locally` is the *only* implementation of a shard plan,
used both by workers and by the single-process baseline, and it builds
its pipeline from the same transform factories Luna's operators use.

The main loop is deliberately boring: bounded queue waits (so shutdown
and the lint rule's timeout discipline both hold), a ``None`` sentinel
to exit, and one :class:`~repro.cluster.envelope.ShardResult` per
envelope — including typed ``deadline`` results when the parent's
serialized budget runs out mid-shard.
"""

from __future__ import annotations

import os
import time
from queue import Empty
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..docmodel.document import Document
from ..execution.executor import ExecutionStats
from ..execution.plan import Plan
from ..faults.injector import FaultInjector
from ..faults.schedule import FaultSchedule
from ..lifecycle.deadline import (
    CancelScope,
    Deadline,
    DeadlineExceeded,
    attach_scope,
)
from ..llm.cost import CostTracker
from ..llm.simulated import SimulatedLLM
from ..runtime import Priority, RequestScheduler
from ..sycamore import aggregates
from ..sycamore.context import SycamoreContext
from ..sycamore.llm_transforms import (
    make_extract_properties_fn,
    make_llm_filter_fn,
)
from .envelope import ShardPlanSpec, ShardResult, TaskEnvelope, WorkerConfig

#: How long a worker blocks on its task queue per wait. Bounded so a
#: worker whose coordinator died (queue never drained, sentinel never
#: sent) still reaches its shutdown checks instead of hanging forever.
TASK_POLL_S = 0.2

_COMPARATORS: Dict[str, Callable[[Any, Any], bool]] = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
    "contains": lambda a, b: str(b).lower() in str(a).lower(),
}


def _basic_predicate(params: Dict[str, Any]) -> Callable[[Document], bool]:
    """The BasicFilter predicate, matching Luna's operator semantics:
    missing values and type mismatches drop the document."""
    get = aggregates.property_getter(str(params["field"]))
    op = str(params["op"])
    value = params["value"]
    compare = _COMPARATORS.get(op)
    if compare is None:
        raise ValueError(f"unknown comparison operator {op!r}")

    def predicate(document: Document) -> bool:
        actual = get(document)
        if actual is None:
            return False
        try:
            return bool(compare(actual, value))
        except TypeError:
            return False

    return predicate


def build_shard_plan(
    context: SycamoreContext,
    documents: List[Document],
    spec: ShardPlanSpec,
    priority: Priority = Priority.BULK,
) -> Plan:
    """Materialize a declarative spec into an executable Plan chain."""
    plan = Plan.from_items(documents)
    for shard_op in spec.ops:
        params = shard_op.param_dict()
        model = params.get("model") or spec.default_model
        if shard_op.operation == "LlmExtract":
            fn = make_extract_properties_fn(
                context,
                {str(params["field"]): str(params.get("type", "string"))},
                model=model,
                priority=priority,
            )
            plan = plan.map(fn, name="shard_llm_extract")
        elif shard_op.operation == "LlmFilter":
            predicate = make_llm_filter_fn(
                context,
                condition=str(params["condition"]),
                model=model,
                priority=priority,
            )
            plan = plan.filter(predicate, name="shard_llm_filter")
        elif shard_op.operation == "BasicFilter":
            plan = plan.filter(_basic_predicate(params), name="shard_basic_filter")
        else:  # pragma: no cover - spec.validate() rejects these upfront
            raise ValueError(f"unsupported shard operation {shard_op.operation!r}")
    return plan


def run_spec_locally(
    context: SycamoreContext,
    documents: List[Document],
    spec: ShardPlanSpec,
    on_error: Optional[str] = None,
    priority: Priority = Priority.BULK,
) -> Tuple[List[Document], Optional[ExecutionStats]]:
    """Run a shard spec over documents in the calling process.

    This one function is both the worker's shard body and the
    single-process baseline — shared code, so sharded output can only
    differ from local output through partitioning or merging bugs, both
    of which the cluster tests pin down directly.
    """
    executor = context.executor(on_error=on_error)
    output = executor.take_all(build_shard_plan(context, documents, spec, priority))
    return output, executor.last_stats


def build_worker_context(config: WorkerConfig) -> SycamoreContext:
    """The worker's private stack, rebuilt from plain config values."""
    tracker = CostTracker()
    backend = SimulatedLLM(
        seed=config.seed,
        tracker=tracker,
        real_latency_scale=config.real_latency_scale,
    )
    context = SycamoreContext(
        llm=backend,
        parallelism=config.parallelism,
        default_model=config.default_model,
        seed=config.seed,
        on_error=config.on_error,
        scheduler=RequestScheduler(max_wait_ms=0.5),
    )
    # The context builds its own (empty) tracker before wrapping the
    # backend; point it at the backend's ledger so shard stats are real.
    context.cost_tracker = tracker
    return context


def execute_envelope(
    context: SycamoreContext,
    config: WorkerConfig,
    envelope: TaskEnvelope,
    worker_id: int,
) -> ShardResult:
    """Run one shard envelope to a ShardResult (never raises)."""
    if envelope.poison == "die":
        # Chaos hook: simulate a worker crash with the shard in flight.
        os._exit(137)

    started = time.monotonic()
    before = context.cost_tracker.summary()

    scope: Optional[CancelScope] = None
    if envelope.budget_s is not None:
        if envelope.budget_s <= 0:
            return ShardResult(
                shard_id=envelope.shard_id,
                attempt=envelope.attempt,
                worker_id=worker_id,
                status="deadline",
                budget_s=float(envelope.budget_s),
                elapsed_s=0.0,
                run_token=envelope.run_token,
            )
        scope = CancelScope(
            deadline=Deadline(envelope.budget_s), query_id=envelope.query_id
        )

    injected_backend = None
    if config.transient_rate > 0 or config.rate_limit_rate > 0:
        injector = FaultInjector(
            FaultSchedule(
                seed=envelope.fault_seed,
                transient_rate=config.transient_rate,
                rate_limit_rate=config.rate_limit_rate,
            )
        )
        injected_backend = context.llm.backend
        context.llm.backend = injector.wrap_llm(injected_backend)

    try:
        with attach_scope(scope):
            documents, stats = run_spec_locally(
                context, envelope.documents, envelope.spec, on_error=config.on_error
            )
        position_of = {
            document.doc_id: position
            for document, position in zip(envelope.documents, envelope.positions)
        }
        result = ShardResult(
            shard_id=envelope.shard_id,
            attempt=envelope.attempt,
            worker_id=worker_id,
            status="ok",
            documents=documents,
            positions=[position_of[document.doc_id] for document in documents],
            dead_lettered=stats.total_dead_lettered() if stats else 0,
            skipped=stats.total_skipped() if stats else 0,
            run_token=envelope.run_token,
        )
    except DeadlineExceeded as exc:
        result = ShardResult(
            shard_id=envelope.shard_id,
            attempt=envelope.attempt,
            worker_id=worker_id,
            status="deadline",
            budget_s=exc.budget_s,
            elapsed_s=exc.elapsed_s,
            error=str(exc),
            run_token=envelope.run_token,
        )
    except Exception as exc:  # noqa: BLE001 - workers must report, not die
        result = ShardResult(
            shard_id=envelope.shard_id,
            attempt=envelope.attempt,
            worker_id=worker_id,
            status="error",
            error=f"{type(exc).__name__}: {exc}",
            run_token=envelope.run_token,
        )
    finally:
        if injected_backend is not None:
            context.llm.backend = injected_backend

    after = context.cost_tracker.summary()
    result.wall_s = time.monotonic() - started
    result.llm_calls = after.calls - before.calls
    result.cost_usd = after.cost_usd - before.cost_usd
    return result


def worker_main(
    worker_id: int,
    config: WorkerConfig,
    task_queue: Any,
    result_queue: Any,
) -> None:
    """Entry point of a cluster worker process.

    Module-level (not a closure) so it pickles under the ``spawn`` start
    method. The context is built lazily on the first envelope, so a
    worker that is spawned and immediately shut down costs nothing.
    """
    context: Optional[SycamoreContext] = None
    try:
        while True:
            try:
                envelope = task_queue.get(timeout=TASK_POLL_S)
            except Empty:
                continue
            if envelope is None:
                break
            if context is None:
                context = build_worker_context(config)
            result_queue.put(execute_envelope(context, config, envelope, worker_id))
    finally:
        if context is not None:
            if context.scheduler is not None:
                context.scheduler.close(drain=False)
            context.close()
