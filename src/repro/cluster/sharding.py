"""Deterministic shard assignment and order-stable gather.

The paper's production system scales DocSet execution across a Ray
cluster over OpenSearch shards; this layer's first obligation is that
*which shard owns a document* is a pure function of the document id —
never of process identity, worker count beyond the modulus, or Python's
randomized string hashing. Assignment therefore routes through
:func:`~repro.execution.materialize.stable_fingerprint` (the same
PYTHONHASHSEED-proof digest that stamps materialization sidecars,
journal fingerprints and serving-cache keys), so a resumed query, a
peer worker retrying a lost shard, and yesterday's run all agree on the
partition map.

The second obligation is that the *gather* side is order-stable: the
merged output must not depend on which worker finished first. Partition
records each document's original position and the merge reassembles by
position, so the scatter/gather round trip is byte-identical to running
the same operators in a single process — the invariant the sharding
benchmark gate asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from ..docmodel.document import Document
from ..execution.materialize import stable_fingerprint


def shard_for(doc_id: str, n_shards: int) -> int:
    """The shard owning ``doc_id`` — stable across processes and runs."""
    if n_shards <= 0:
        raise ValueError("n_shards must be positive")
    return int(stable_fingerprint([doc_id]), 16) % n_shards


def derive_fault_seed(parent_seed: int, shard_id: int) -> int:
    """A per-shard fault-injection seed from the parent seed and shard id.

    Stable-fingerprint based, so a shard retried on a *different* worker
    replays exactly the fault schedule its first attempt saw.
    """
    return int(stable_fingerprint([parent_seed, shard_id]), 16) & 0x7FFFFFFF


@dataclass
class Shard:
    """One shard of a partitioned document set."""

    shard_id: int
    documents: List[Document] = field(default_factory=list)
    #: Original position of each document in the pre-partition order —
    #: parallel to ``documents``; what the gather-side merge sorts by.
    positions: List[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.documents)


def partition_documents(
    documents: Sequence[Document], n_shards: int
) -> List[Shard]:
    """Split documents into ``n_shards`` shards by stable id hash.

    Every shard is returned (possibly empty) so shard ids are dense; the
    relative order of documents *within* a shard follows the input order.
    """
    shards = [Shard(shard_id=i) for i in range(n_shards)]
    for position, document in enumerate(documents):
        shard = shards[shard_for(document.doc_id, n_shards)]
        shard.documents.append(document)
        shard.positions.append(position)
    return shards


def merge_shard_outputs(
    outputs: Dict[int, Tuple[Sequence[Document], Sequence[int]]],
) -> List[Document]:
    """Reassemble shard outputs into the original document order.

    ``outputs`` maps shard id -> (documents, original positions), with
    the two sequences parallel. Filters may drop documents (the shard
    then reports fewer positions than it was scattered with); surviving
    documents interleave back into their original relative order. The
    result is a pure function of the outputs — worker completion order
    cannot perturb it.
    """
    merged: List[Tuple[int, Document]] = []
    for shard_id in sorted(outputs):
        documents, positions = outputs[shard_id]
        if len(documents) != len(positions):
            raise ValueError(
                f"shard {shard_id}: {len(documents)} documents but "
                f"{len(positions)} positions"
            )
        merged.extend(zip(positions, documents))
    merged.sort(key=lambda pair: pair[0])
    return [document for _, document in merged]


def partition_fingerprint(documents: Iterable[Document], n_shards: int) -> str:
    """Fingerprint of the partition map (for journal shard records)."""
    return stable_fingerprint(
        [n_shards] + [document.doc_id for document in documents]
    )
