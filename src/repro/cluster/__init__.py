"""repro.cluster — sharded multi-process DocSet execution.

The shared-nothing scale-out layer (stands in for the paper's
Ray-over-OpenSearch-shards deployment): deterministic stable-hash
partitioning (:mod:`.sharding`), picklable task envelopes
(:mod:`.envelope`), per-process worker stacks (:mod:`.worker`), the
scatter/gather control plane (:mod:`.coordinator`), and bounded-memory
spill-to-disk collections (:mod:`.spill`). Shard-aware index fan-out
lives with the indexes (:mod:`repro.indexes.sharded`) but shares this
layer's placement function.
"""

from .envelope import (
    SHARDABLE_OPERATIONS,
    NonPicklableTaskError,
    ShardOp,
    ShardPlanSpec,
    ShardResult,
    TaskEnvelope,
    WorkerConfig,
    ensure_picklable_spec,
)
from .sharding import (
    Shard,
    derive_fault_seed,
    merge_shard_outputs,
    partition_documents,
    partition_fingerprint,
    shard_for,
)
from .spill import SpillableDocSet
from .worker import build_shard_plan, build_worker_context, run_spec_locally
from .coordinator import (
    ClusterConfig,
    ClusterCoordinator,
    ClusterError,
    ClusterRunResult,
)

__all__ = [
    "SHARDABLE_OPERATIONS",
    "ClusterConfig",
    "ClusterCoordinator",
    "ClusterError",
    "ClusterRunResult",
    "NonPicklableTaskError",
    "Shard",
    "ShardOp",
    "ShardPlanSpec",
    "ShardResult",
    "SpillableDocSet",
    "TaskEnvelope",
    "WorkerConfig",
    "build_shard_plan",
    "build_worker_context",
    "derive_fault_seed",
    "ensure_picklable_spec",
    "merge_shard_outputs",
    "partition_documents",
    "partition_fingerprint",
    "run_spec_locally",
    "shard_for",
]
