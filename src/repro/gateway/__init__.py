"""repro.gateway — the HTTP/JSON network front end.

Promotes :class:`~repro.serving.QueryService` from an in-process library
to a real server: a stdlib ``ThreadingHTTPServer`` behind a composable
middleware stack (request ids, bearer auth, per-tenant token-bucket rate
limiting, structured access logs), query routes with chunked/SSE
progress streaming, and an ``/ops`` surface exposing metrics, traces,
per-tenant cost ledgers, and scheduler/cluster/optimizer stats. See
:mod:`repro.gateway.server` for the route table and docs/GATEWAY.md for
the wire contract.
"""

from .client import GatewayClient, GatewayError, StreamHandle
from .middleware import (
    AccessLogMiddleware,
    AccessRecord,
    BearerAuthMiddleware,
    Middleware,
    RateLimitMiddleware,
    RequestContext,
    RequestIdMiddleware,
    Response,
    TokenBucket,
)
from .server import Gateway, GatewayConfig, error_response, format_sse

__all__ = [
    "AccessLogMiddleware",
    "AccessRecord",
    "BearerAuthMiddleware",
    "Gateway",
    "GatewayClient",
    "GatewayConfig",
    "GatewayError",
    "Middleware",
    "RateLimitMiddleware",
    "RequestContext",
    "RequestIdMiddleware",
    "Response",
    "StreamHandle",
    "TokenBucket",
    "error_response",
    "format_sse",
]
