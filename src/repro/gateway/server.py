"""The HTTP/JSON gateway: a real network front end for `QueryService`.

:class:`Gateway` binds a stdlib :class:`~http.server.ThreadingHTTPServer`
(one thread per connection, no third-party framework) in front of a
:class:`~repro.serving.QueryService` and exposes the serving layer's
whole surface over HTTP:

========================== ==========================================
``POST /v1/query``          submit + wait (``?stream=1`` switches to
                            chunked SSE delivery of the ticket's
                            progress events, then the terminal result)
``GET /v1/query/<id>``      status: events so far, result when done
``DELETE /v1/query/<id>``   cooperative cancellation
``POST /v1/session``        open a conversation
``GET /v1/session/<id>``    conversation transcript
``POST /v1/ingest``         trigger a corpus build into an index
``GET /ops/health``         liveness (503 while draining)
``GET /ops/metrics``        MetricsRegistry dump (``?prefix=``)
``GET /ops/traces/<id>``    a served query's trace JSON (by query id
                            *or* request id)
``GET /ops/costs``          per-tenant cost ledgers
``GET /ops/stats``          service + gateway + scheduler counters
``GET /ops/accesslog``      recent structured access-log records
========================== ==========================================

Typed serving failures map onto typed HTTP statuses — the overload
contract the load benchmark proves under burst:

* :class:`~repro.serving.Overloaded` → **429** with ``Retry-After``
  (from the service's load-aware ``retry_after_s`` hint);
* :class:`~repro.lifecycle.DeadlineExceeded` → **504** with
  ``Retry-After``;
* :class:`~repro.lifecycle.QueryCancelled` → **499** (client closed /
  cancelled);
* :class:`~repro.serving.ServiceClosed` → **503**.

Shutdown is graceful by default: :meth:`Gateway.close` stops accepting
new connections, then reuses ``QueryService.close(drain=True)`` so every
admitted query completes (``drain=False`` is the hard-cancel path). The
CLI wires SIGTERM/SIGINT to exactly this.
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

from ..lifecycle import DeadlineExceeded, QueryCancelled
from ..observability.export import trace_to_dict
from ..serving import (
    Overloaded,
    QueryService,
    QueryTicket,
    ServedResult,
    ServiceClosed,
    ServingError,
    Session,
)
from .middleware import (
    AccessLogMiddleware,
    BearerAuthMiddleware,
    Middleware,
    RateLimitMiddleware,
    RequestContext,
    RequestIdMiddleware,
    Response,
)

__all__ = ["Gateway", "GatewayConfig", "error_response", "format_sse"]

#: Datasets the ingest-trigger route can build, with their extraction
#: schemas (the same fields the CLI and benchmarks use).
INGEST_DATASETS: Dict[str, Dict[str, str]] = {
    "ntsb": {
        "state": "string",
        "incident_year": "int",
        "weather_related": "bool",
        "injuries_fatal": "int",
        "cause": "string",
    },
    "earnings": {
        "company": "string",
        "sector": "string",
        "revenue_musd": "float",
        "revenue_growth_pct": "float",
        "ceo_changed": "bool",
    },
}


@dataclass(frozen=True)
class GatewayConfig:
    """Tuning knobs for a :class:`Gateway`."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (read it back from ``Gateway.port``).
    port: int = 0
    #: Bearer-token credential table (token -> tenant); None disables
    #: auth and tenants come from the request body / X-Tenant header.
    tokens: Optional[Dict[str, str]] = None
    #: Per-tenant request rate (tokens/second); 0 disables edge rate
    #: limiting. Distinct from TenantQuota concurrency admission.
    rate_per_s: float = 0.0
    rate_burst: Optional[float] = None
    #: How long a synchronous POST /v1/query waits before 504.
    sync_timeout_s: float = 300.0
    #: Event-poll granularity and keep-alive cadence for SSE streams.
    stream_poll_s: float = 0.1
    stream_heartbeat_s: float = 5.0
    #: Cancel the underlying query when its SSE client disconnects.
    cancel_on_disconnect: bool = True
    #: Default end-to-end deadline applied when the body names none.
    default_deadline_s: Optional[float] = None
    max_body_bytes: int = 1 << 20
    access_log_size: int = 1024
    #: Completed-ticket retention (status / trace lookups); oldest evict.
    max_tickets: int = 2048
    #: Optional sink for rendered access-log lines (e.g. print).
    log_sink: Optional[Callable[[str], None]] = None


def _dumps(payload: Any) -> bytes:
    """Canonical JSON bytes (answers may hold exotic types -> repr)."""
    return json.dumps(payload, default=repr).encode("utf-8")


def format_sse(event: str, payload: Dict[str, Any]) -> bytes:
    """One server-sent-events frame: ``event:`` + single-line ``data:``."""
    return b"event: %s\ndata: %s\n\n" % (
        event.encode("utf-8"),
        _dumps(payload),
    )


def _retry_after_headers(retry_after_s: float) -> Dict[str, str]:
    """HTTP Retry-After wants integer seconds and the gate wants it
    nonzero; the machine-precision float rides in the body."""
    return {"Retry-After": str(max(1, int(retry_after_s + 0.999)))}


def error_response(exc: BaseException) -> Response:
    """Map a typed failure onto a typed HTTP response."""
    if isinstance(exc, Overloaded):
        return Response(
            status=429,
            payload={
                "error": "overloaded",
                "reason": exc.reason,
                "message": str(exc),
                "retry_after_s": exc.retry_after_s,
            },
            headers=_retry_after_headers(exc.retry_after_s),
        )
    if isinstance(exc, DeadlineExceeded):
        return Response(
            status=504,
            payload={
                "error": "deadline_exceeded",
                "message": str(exc),
                "budget_s": exc.budget_s,
                "elapsed_s": round(exc.elapsed_s, 3),
                "retry_after_s": exc.retry_after_s,
            },
            headers=_retry_after_headers(exc.retry_after_s),
        )
    if isinstance(exc, QueryCancelled):
        return Response(
            status=499,
            payload={
                "error": "cancelled",
                "message": str(exc),
                "query_id": exc.query_id,
                "reason": exc.reason,
            },
        )
    if isinstance(exc, ServiceClosed):
        return Response(
            status=503, payload={"error": "service_closed", "message": str(exc)}
        )
    if isinstance(exc, TimeoutError):
        # concurrent.futures.TimeoutError: the gateway's own sync-wait
        # bound, not the query's deadline — the query is still running.
        return Response(
            status=504,
            payload={
                "error": "sync_timeout",
                "message": "query still running; poll GET /v1/query/<id>",
            },
        )
    if isinstance(exc, KeyError):
        return Response(
            status=404,
            payload={"error": "not_found", "message": str(exc.args[0]) if exc.args else str(exc)},
        )
    if isinstance(exc, (ValueError, ServingError)):
        return Response(
            status=400, payload={"error": "bad_request", "message": str(exc)}
        )
    return Response(
        status=500,
        payload={"error": type(exc).__name__, "message": str(exc)},
    )


def _served_payload(served: ServedResult) -> Dict[str, Any]:
    """The JSON body for one completed query."""
    return {
        "query_id": served.query_id,
        "request_id": served.request_id,
        "question": served.question,
        "index": served.index,
        "tenant": served.tenant,
        "session": served.session_id,
        "answer": served.answer,
        "partial": served.partial,
        "deadline_exceeded": served.deadline_exceeded,
        "plan_cache": served.plan_cache,
        "result_cache": served.result_cache,
        "cost_usd": round(served.cost_usd, 6),
        "saved_usd": round(served.saved_usd, 6),
        "latency_ms": round(served.latency_s * 1000.0, 1),
        "trace_id": served.serve_trace_id,
    }


class Gateway:
    """The HTTP front end. Owns the listening socket, the middleware
    stack, and (by default) the lifecycle of the service behind it.

    Usage::

        service = QueryService(ctx, ServiceConfig(max_workers=8))
        gateway = Gateway(service, GatewayConfig(port=0))
        gateway.start()
        print(f"listening on http://{gateway.host}:{gateway.port}")
        ...
        gateway.close()        # stop accepting, then drain the service
    """

    def __init__(
        self,
        service: QueryService,
        config: Optional[GatewayConfig] = None,
        close_service: bool = True,
    ):
        self.service = service
        self.config = config or GatewayConfig()
        self.close_service = close_service
        self.registry = service.registry
        self.access_log = AccessLogMiddleware(
            max_records=self.config.access_log_size, sink=self.config.log_sink
        )
        self.rate_limiter: Optional[RateLimitMiddleware] = None
        #: Middleware order is part of the contract (docs/GATEWAY.md):
        #: request-id first (everything downstream logs it), then auth
        #: (tenant identity), then rate limiting (per-tenant buckets need
        #: the tenant), access log last in `before` order so its `after`
        #: observes the final response of every request, shed or served.
        self.middlewares: List[Middleware] = [RequestIdMiddleware()]
        if self.config.tokens:
            self.middlewares.append(BearerAuthMiddleware(self.config.tokens))
        if self.config.rate_per_s > 0:
            self.rate_limiter = RateLimitMiddleware(
                self.config.rate_per_s, self.config.rate_burst
            )
            self.middlewares.append(self.rate_limiter)
        self.middlewares.append(self.access_log)
        reg = self.registry
        self._m_requests = reg.counter("gateway.requests")
        self._m_responses_2xx = reg.counter("gateway.responses_2xx")
        self._m_responses_4xx = reg.counter("gateway.responses_4xx")
        self._m_responses_5xx = reg.counter("gateway.responses_5xx")
        self._m_shed = reg.counter("gateway.shed_429")
        self._m_deadline = reg.counter("gateway.deadline_504")
        self._m_streams = reg.counter("gateway.streams")
        self._m_stream_events = reg.counter("gateway.stream_events")
        self._m_disconnects = reg.counter("gateway.client_disconnects")
        self._g_active_streams = reg.gauge("gateway.active_streams")
        self._h_latency = reg.histogram("gateway.request_ms")
        self._lock = threading.Lock()
        self._tickets: "OrderedDict[str, QueryTicket]" = OrderedDict()
        self._request_ids: "OrderedDict[str, str]" = OrderedDict()
        self._sessions: Dict[str, Session] = {}
        self._ingest_lock = threading.Lock()
        self._draining = False
        self._started = time.monotonic()
        self._shutdown_requested = threading.Event()
        self._server: Optional[_GatewayServer] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def host(self) -> str:
        return self.config.host

    @property
    def port(self) -> int:
        """The bound port (resolves port 0 after :meth:`start`)."""
        if self._server is not None:
            return int(self._server.server_address[1])
        return self.config.port

    @property
    def draining(self) -> bool:
        return self._draining

    def start(self) -> "Gateway":
        """Bind the socket and serve in a background thread."""
        if self._server is not None:
            raise RuntimeError("gateway already started")
        self._server = _GatewayServer(
            (self.config.host, self.config.port), _GatewayHandler, self
        )
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-gateway-accept",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop accepting connections, then shut the service down.

        ``drain=True`` (the SIGTERM path) lets every admitted query
        finish; ``drain=False`` fails queued-but-unstarted queries typed.
        Idempotent.
        """
        self._draining = True
        server, thread = self._server, self._thread
        self._server, self._thread = None, None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=timeout)
        if self.close_service:
            self.service.close(drain=drain, timeout=timeout)

    def __enter__(self) -> "Gateway":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT request a graceful stop (main thread only).

        The handler only sets a flag — :meth:`wait_for_shutdown` returns
        and the caller runs :meth:`close` outside signal context.
        """
        import signal

        def _request_stop(signum: int, frame: Any) -> None:
            self._draining = True
            self._shutdown_requested.set()

        signal.signal(signal.SIGTERM, _request_stop)
        signal.signal(signal.SIGINT, _request_stop)

    def wait_for_shutdown(self, timeout: Optional[float] = None) -> bool:
        """Block until a signal (or :meth:`request_shutdown`) asks the
        gateway to stop. Returns False on timeout."""
        return self._shutdown_requested.wait(timeout=timeout)

    def request_shutdown(self) -> None:
        """Programmatic equivalent of SIGTERM."""
        self._draining = True
        self._shutdown_requested.set()

    # ------------------------------------------------------------------
    # Ticket / session registries
    # ------------------------------------------------------------------

    def register_ticket(self, ticket: QueryTicket) -> None:
        with self._lock:
            self._tickets[ticket.query_id] = ticket
            if ticket.request_id:
                self._request_ids[ticket.request_id] = ticket.query_id
            while len(self._tickets) > self.config.max_tickets:
                old_qid, old = self._tickets.popitem(last=False)
                if old.request_id:
                    self._request_ids.pop(old.request_id, None)
            while len(self._request_ids) > self.config.max_tickets:
                self._request_ids.popitem(last=False)

    def ticket(self, ref: str) -> QueryTicket:
        """Look a ticket up by query id or request id (KeyError -> 404)."""
        with self._lock:
            if ref in self._tickets:
                return self._tickets[ref]
            qid = self._request_ids.get(ref)
            if qid is not None and qid in self._tickets:
                return self._tickets[qid]
        raise KeyError(f"unknown query or request id {ref!r}")

    def register_session(self, session: Session) -> None:
        with self._lock:
            self._sessions[session.session_id] = session

    def session(self, session_id: str) -> Session:
        with self._lock:
            try:
                return self._sessions[session_id]
            except KeyError:
                raise KeyError(f"unknown session {session_id!r}") from None

    def stats(self) -> Dict[str, Any]:
        """Gateway-side counters for the ops surface."""
        with self._lock:
            tickets = len(self._tickets)
            sessions = len(self._sessions)
        return {
            "requests": int(self._m_requests.value()),
            "responses_2xx": int(self._m_responses_2xx.value()),
            "responses_4xx": int(self._m_responses_4xx.value()),
            "responses_5xx": int(self._m_responses_5xx.value()),
            "shed_429": int(self._m_shed.value()),
            "deadline_504": int(self._m_deadline.value()),
            "streams": int(self._m_streams.value()),
            "stream_events": int(self._m_stream_events.value()),
            "client_disconnects": int(self._m_disconnects.value()),
            "rate_limited": self.rate_limiter.shed if self.rate_limiter else 0,
            "tickets_retained": tickets,
            "sessions": sessions,
            "draining": self._draining,
            "uptime_s": round(time.monotonic() - self._started, 3),
        }

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------

    def handle(self, ctx: RequestContext) -> Response:
        """Middleware chain + routing for one request. Never raises."""
        self._m_requests.inc()
        response: Optional[Response] = None
        ran: List[Middleware] = []
        for middleware in self.middlewares:
            ran.append(middleware)
            response = middleware.before(ctx)
            if response is not None:
                break
        if response is None:
            try:
                response = self._route(ctx)
            except BaseException as exc:  # noqa: BLE001 - typed mapping below
                response = error_response(exc)
        for middleware in reversed(ran):
            middleware.after(ctx, response)
        if response.status == 429:
            self._m_shed.inc()
        elif response.status == 504:
            self._m_deadline.inc()
        if 200 <= response.status < 300:
            self._m_responses_2xx.inc()
        elif 400 <= response.status < 500 or response.status == 499:
            self._m_responses_4xx.inc()
        elif response.status >= 500:
            self._m_responses_5xx.inc()
        self._h_latency.observe((time.monotonic() - ctx.started) * 1000.0)
        return response

    def _route(self, ctx: RequestContext) -> Response:
        method, path = ctx.method, ctx.path
        if path == "/v1/query" and method == "POST":
            return self._route_query(ctx)
        if path.startswith("/v1/query/"):
            ref = unquote(path[len("/v1/query/") :])
            if method == "GET":
                return self._route_query_status(ctx, ref)
            if method == "DELETE":
                return self._route_query_cancel(ctx, ref)
        if path == "/v1/session" and method == "POST":
            return self._route_session_open(ctx)
        if path.startswith("/v1/session/") and method == "GET":
            return self._route_session_get(ctx, unquote(path[len("/v1/session/") :]))
        if path == "/v1/ingest" and method == "POST":
            return self._route_ingest(ctx)
        if path == "/ops/health" and method == "GET":
            return self._route_health(ctx)
        if path == "/ops/metrics" and method == "GET":
            return Response(
                payload={"metrics": self.registry.snapshot(ctx.params.get("prefix", ""))}
            )
        if path.startswith("/ops/traces/") and method == "GET":
            return self._route_trace(ctx, unquote(path[len("/ops/traces/") :]))
        if path == "/ops/costs" and method == "GET":
            return self._route_costs(ctx)
        if path == "/ops/stats" and method == "GET":
            return self._route_stats(ctx)
        if path == "/ops/accesslog" and method == "GET":
            records = self.access_log.records()
            try:
                limit = int(ctx.params.get("n", "100"))
            except ValueError:
                raise ValueError("n must be an integer") from None
            return Response(
                payload={"records": [r.as_dict() for r in records[-limit:]]}
            )
        return Response(
            status=404,
            payload={"error": "not_found", "message": f"no route {method} {path}"},
        )

    # -- queries -------------------------------------------------------

    def _resolve_tenant(self, ctx: RequestContext, body: Dict[str, Any]) -> str:
        """Auth wins; otherwise the body, then the X-Tenant header."""
        if ctx.tenant:
            return ctx.tenant
        tenant = body.get("tenant") or ctx.headers.get("x-tenant") or "default"
        ctx.tenant = str(tenant)
        return ctx.tenant

    def _route_query(self, ctx: RequestContext) -> Response:
        body = ctx.json()
        question = body.get("question")
        if not question or not isinstance(question, str):
            raise ValueError("body must carry a 'question' string")
        session: Optional[Session] = None
        session_id = body.get("session")
        if session_id:
            session = self.session(str(session_id))
            # An authenticated tenant cannot borrow another tenant's
            # session; without auth the session defines the tenant (same
            # convention as QueryService.submit).
            if ctx.tenant and session.tenant != ctx.tenant:
                return Response(
                    status=403,
                    payload={
                        "error": "forbidden",
                        "message": f"session {session.session_id!r} belongs "
                        f"to tenant {session.tenant!r}",
                    },
                )
            ctx.tenant = session.tenant
        tenant = self._resolve_tenant(ctx, body)
        deadline_s = body.get("deadline_s", self.config.default_deadline_s)
        ticket = self.service.submit(
            question,
            index=body.get("index"),
            tenant=tenant,
            session=session,
            secondary=tuple(body.get("secondary") or ()),
            follow_up=bool(body.get("follow_up", False)),
            deadline_s=float(deadline_s) if deadline_s is not None else None,
            request_id=ctx.request_id,
        )
        ctx.query_id = ticket.query_id
        self.register_ticket(ticket)
        if ctx.params.get("stream", "") in ("1", "true", "yes"):
            self._m_streams.inc()
            return Response(
                status=200,
                headers={
                    "Content-Type": "text/event-stream",
                    "Cache-Control": "no-cache",
                },
                stream=self._sse_frames(ticket),
            )
        served = ticket.result(timeout=self.config.sync_timeout_s)
        return Response(payload=_served_payload(served))

    def _sse_frames(self, ticket: QueryTicket) -> Iterator[bytes]:
        """The SSE frame sequence for one query: an ``open`` frame, each
        progress event as its own frame, keep-alive comments over quiet
        windows, then exactly one terminal ``result``/``error`` frame."""
        config = self.config
        yield format_sse(
            "open",
            {"query_id": ticket.query_id, "request_id": ticket.request_id},
        )
        last_beat = time.monotonic()
        events = ticket.stream(timeout=config.stream_poll_s, heartbeat=True)
        try:
            for event in events:
                if event is None:
                    now = time.monotonic()
                    if now - last_beat >= config.stream_heartbeat_s:
                        last_beat = now
                        # An SSE comment: ignored by clients, but the
                        # write is what surfaces a dead connection.
                        yield b": keep-alive\n\n"
                    continue
                self._m_stream_events.inc()
                yield format_sse(
                    event.stage,
                    {
                        "stage": event.stage,
                        "query_id": ticket.query_id,
                        "detail": event.detail,
                    },
                )
        finally:
            events.close()
        try:
            served = ticket.result(timeout=config.sync_timeout_s)
        except BaseException as exc:  # noqa: BLE001 - typed terminal frame
            mapped = error_response(exc)
            payload = dict(mapped.payload or {})
            payload["status"] = mapped.status
            yield format_sse("error", payload)
            return
        yield format_sse("result", _served_payload(served))

    def _route_query_status(self, ctx: RequestContext, ref: str) -> Response:
        ticket = self.ticket(ref)
        ctx.query_id = ticket.query_id
        first_at = None
        events: List[Dict[str, Any]] = []
        for event in ticket.events():
            if first_at is None:
                first_at = event.at
            events.append(
                {
                    "stage": event.stage,
                    "t_s": round(event.at - first_at, 3),
                    "detail": event.detail,
                }
            )
        payload: Dict[str, Any] = {
            "query_id": ticket.query_id,
            "request_id": ticket.request_id,
            "tenant": ticket.tenant,
            "question": ticket.question,
            "index": ticket.index,
            "done": ticket.done(),
            "cancel_requested": ticket.cancelled,
            "events": events,
        }
        if ticket.done():
            try:
                payload["result"] = _served_payload(
                    ticket.result(timeout=self.config.sync_timeout_s)
                )
            except BaseException as exc:  # noqa: BLE001 - report, not raise
                mapped = error_response(exc)
                failure = dict(mapped.payload or {})
                failure["status"] = mapped.status
                payload["failure"] = failure
        return Response(payload=payload)

    def _route_query_cancel(self, ctx: RequestContext, ref: str) -> Response:
        ticket = self.ticket(ref)
        ctx.query_id = ticket.query_id
        first = ticket.cancel("cancelled over HTTP")
        return Response(
            payload={
                "query_id": ticket.query_id,
                "cancel_requested": True,
                "first_request": first,
                "done": ticket.done(),
            }
        )

    # -- sessions ------------------------------------------------------

    def _route_session_open(self, ctx: RequestContext) -> Response:
        body = ctx.json()
        tenant = self._resolve_tenant(ctx, body)
        session = self.service.open_session(
            tenant=tenant, index=body.get("index")
        )
        self.register_session(session)
        return Response(
            status=201,
            payload={
                "session": session.session_id,
                "tenant": session.tenant,
                "index": session.default_index,
            },
        )

    def _route_session_get(self, ctx: RequestContext, session_id: str) -> Response:
        session = self.session(session_id)
        return Response(
            payload={
                "session": session.session_id,
                "tenant": session.tenant,
                "index": session.default_index,
                "entries": [
                    {
                        "question": e.question,
                        "index": e.index,
                        "answer_preview": e.answer_preview,
                        "plan_cache": e.plan_cache,
                        "result_cache": e.result_cache,
                        "cost_usd": round(e.cost_usd, 6),
                        "saved_usd": round(e.saved_usd, 6),
                        "trace_id": e.trace_id,
                    }
                    for e in session.entries()
                ],
            }
        )

    # -- ingest --------------------------------------------------------

    def _route_ingest(self, ctx: RequestContext) -> Response:
        from ..datagen import generate_earnings_corpus, generate_ntsb_corpus
        from ..partitioner import ArynPartitioner

        body = ctx.json()
        dataset = str(body.get("dataset", "ntsb"))
        if dataset not in INGEST_DATASETS:
            raise ValueError(
                f"unknown dataset {dataset!r} (have {sorted(INGEST_DATASETS)})"
            )
        index = str(body.get("index") or dataset)
        docs = int(body.get("docs", 8))
        seed = int(body.get("seed", 0))
        if not 1 <= docs <= 10_000:
            raise ValueError("docs must be between 1 and 10000")
        generate = (
            generate_ntsb_corpus if dataset == "ntsb" else generate_earnings_corpus
        )
        context = self.service.context
        # One ingest at a time: ETL shares the context's executor and the
        # catalog bump must be atomic with respect to other ingests.
        with self._ingest_lock:
            _, raws = generate(docs, seed=seed)
            written = (
                context.read.raw(raws)
                .partition(ArynPartitioner(seed=seed))
                .extract_properties(INGEST_DATASETS[dataset], model="sim-large")
                .write.index(index)
            )
        return Response(
            status=201,
            payload={
                "index": index,
                "dataset": dataset,
                "documents_ingested": written,
                "index_version": context.catalog.get(index).version,
                "catalog_version": context.catalog.version(),
            },
        )

    # -- ops -----------------------------------------------------------

    def _route_health(self, ctx: RequestContext) -> Response:
        service_stats = self.service.stats()
        status = "draining" if self._draining else "ok"
        return Response(
            status=503 if self._draining else 200,
            payload={
                "status": status,
                "queue_depth": service_stats["queue_depth"],
                "active_queries": service_stats["active_queries"],
                "workers": self.service.config.max_workers,
                "uptime_s": round(time.monotonic() - self._started, 3),
            },
        )

    def _route_trace(self, ctx: RequestContext, ref: str) -> Response:
        ticket = self.ticket(ref)
        ctx.query_id = ticket.query_id
        tracer = self.service.tracer
        if tracer is None:
            return Response(
                status=404,
                payload={"error": "not_found", "message": "tracing disabled"},
            )
        if not ticket.done():
            return Response(
                status=409,
                payload={
                    "error": "not_finished",
                    "message": f"query {ticket.query_id} is still running",
                },
            )
        try:
            served = ticket.result(timeout=self.config.sync_timeout_s)
        except BaseException as exc:  # noqa: BLE001 - failed queries: no trace doc
            mapped = error_response(exc)
            failure = dict(mapped.payload or {})
            failure["message"] = (
                f"query {ticket.query_id} failed; no trace document "
                f"({failure.get('error', 'error')})"
            )
            return Response(status=404, payload=failure)
        spans = tracer.trace_spans(served.serve_trace_id)
        if not spans:
            return Response(
                status=404,
                payload={
                    "error": "not_found",
                    "message": f"no retained trace for {ticket.query_id}",
                },
            )
        return Response(payload=trace_to_dict(spans, served.result.trace.cost))

    def _route_costs(self, ctx: RequestContext) -> Response:
        stats = self.service.stats()
        ledgers = {
            name: self.service.tenant_account(name).as_dict()
            for name in sorted(stats["tenants"])
        }
        return Response(payload={"tenants": ledgers})

    def _route_stats(self, ctx: RequestContext) -> Response:
        payload: Dict[str, Any] = {
            "service": self.service.stats(),
            "gateway": self.stats(),
        }
        scheduler = getattr(self.service.context, "scheduler", None)
        if scheduler is not None:
            payload["scheduler"] = scheduler.metrics()
        return Response(payload=payload)


# ----------------------------------------------------------------------
# The stdlib HTTP plumbing
# ----------------------------------------------------------------------


class _GatewayServer(ThreadingHTTPServer):
    """One thread per connection; daemonic so a hung client can never
    block interpreter exit (the gateway's own close() is the clean path)."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: Tuple[str, int],
        handler: type,
        gateway: Gateway,
    ):
        self.gateway = gateway
        super().__init__(address, handler)


class _GatewayHandler(BaseHTTPRequestHandler):
    """Parses HTTP, builds a RequestContext, delegates to Gateway.handle,
    writes the response (JSON with Content-Length, or chunked SSE)."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-gateway/1.0"
    #: Socket timeout: a silent peer cannot pin a connection thread
    #: forever between requests.
    timeout = 60.0

    server: _GatewayServer  # narrowed for mypy

    # The structured access log (middleware) replaces stderr chatter.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")

    def _dispatch(self, method: str) -> None:
        gateway = self.server.gateway
        split = urlsplit(self.path)
        params = dict(parse_qsl(split.query))
        try:
            length = int(self.headers.get("Content-Length", "0") or "0")
        except ValueError:
            length = 0
        if length > gateway.config.max_body_bytes:
            self._send_json(
                Response(
                    status=413,
                    payload={
                        "error": "payload_too_large",
                        "message": f"body over {gateway.config.max_body_bytes} bytes",
                    },
                )
            )
            return
        body = self.rfile.read(length) if length > 0 else b""
        ctx = RequestContext(
            method=method,
            path=split.path,
            params=params,
            headers={k.lower(): v for k, v in self.headers.items()},
            body=body,
            remote=self.client_address[0] if self.client_address else "",
        )
        response = gateway.handle(ctx)
        if response.stream is not None:
            self._send_stream(ctx, response)
        else:
            self._send_json(response)

    def _send_json(self, response: Response) -> None:
        body = _dumps(response.payload if response.payload is not None else {})
        try:
            self.send_response(response.status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in response.headers.items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)
            self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError, OSError):
            self.close_connection = True

    def _send_stream(self, ctx: RequestContext, response: Response) -> None:
        """Chunked transfer of an SSE frame iterator. A failed write
        means the client went away: stop pumping, optionally cancel the
        query, and let the handler thread exit."""
        gateway = self.server.gateway
        frames = response.stream
        gateway._g_active_streams.inc()
        self.close_connection = True
        try:
            self.send_response(response.status)
            for name, value in response.headers.items():
                self.send_header(name, value)
            self.send_header("Transfer-Encoding", "chunked")
            self.send_header("Connection", "close")
            self.end_headers()
            for frame in frames:
                self._write_chunk(frame)
            self.wfile.write(b"0\r\n\r\n")
            self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError, OSError):
            gateway._m_disconnects.inc()
            if gateway.config.cancel_on_disconnect and ctx.query_id:
                try:
                    gateway.ticket(ctx.query_id).cancel("client disconnected")
                except KeyError:
                    pass
        finally:
            close = getattr(frames, "close", None)
            if close is not None:
                close()
            gateway._g_active_streams.inc(-1)

    def _write_chunk(self, data: bytes) -> None:
        if not data:
            return
        self.wfile.write(b"%x\r\n" % len(data))
        self.wfile.write(data)
        self.wfile.write(b"\r\n")
        self.wfile.flush()
