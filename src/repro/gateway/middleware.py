"""The gateway's composable middleware stack.

Every HTTP request flows through an ordered list of middlewares before
it reaches a route handler, and back through them (in reverse) on the
way out::

    request-id  ->  auth  ->  rate-limit  ->  [route handler]
        ^                                          |
        +---------- access log (after) <-----------+

Each middleware implements :class:`Middleware`: ``before`` may
short-circuit the request by returning a :class:`Response` (a 401 from
auth, a 429 from the rate limiter), and ``after`` observes the final
response (the access logger records every request, including the
short-circuited ones). The stack is plain data — a list on the
:class:`~repro.gateway.server.Gateway` — so tests can compose ad-hoc
stacks and deployments can drop e.g. auth entirely.

The rate limiter here is deliberately *distinct* from the serving
layer's :class:`~repro.serving.session.TenantQuota` admission control:
the token bucket bounds request *rate* at the network edge (requests
per second with a burst allowance, cheap to evaluate before any JSON is
parsed into the service), while the quota bounds *concurrency* inside
the service (queries queued-plus-running). A tenant can be under its
quota yet over its rate, and vice versa.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "AccessLogMiddleware",
    "AccessRecord",
    "BearerAuthMiddleware",
    "Middleware",
    "RateLimitMiddleware",
    "RequestContext",
    "RequestIdMiddleware",
    "Response",
    "TokenBucket",
]


@dataclass
class RequestContext:
    """Everything the middlewares and route handlers know about one
    in-flight HTTP request. Middlewares annotate it in place
    (``request_id``, ``tenant``); the route handler adds ``query_id``
    once a query is admitted so the access log can link the two."""

    method: str
    path: str
    #: Decoded query-string parameters (single-valued).
    params: Dict[str, str] = field(default_factory=dict)
    #: Header map, keys lower-cased.
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    remote: str = ""
    request_id: str = ""
    tenant: str = ""
    #: Filled by the query routes after admission (for the access log).
    query_id: str = ""
    started: float = field(default_factory=time.monotonic)

    def json(self) -> Dict[str, Any]:
        """The request body parsed as a JSON object ({} when empty).

        Raises ``ValueError`` on malformed JSON or a non-object payload
        (the server maps that to a 400).
        """
        import json as json_module

        if not self.body:
            return {}
        payload = json_module.loads(self.body.decode("utf-8"))
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload


@dataclass
class Response:
    """What a route handler (or a short-circuiting middleware) returns.

    ``payload`` is serialized as JSON; a ``stream`` (an iterator of raw
    byte frames) switches the connection to chunked/SSE delivery and
    ``payload`` is ignored.
    """

    status: int = 200
    payload: Optional[Dict[str, Any]] = None
    headers: Dict[str, str] = field(default_factory=dict)
    stream: Optional[Any] = None


class Middleware:
    """Base middleware: override ``before`` and/or ``after``."""

    def before(self, ctx: RequestContext) -> Optional[Response]:
        """Runs before the route handler. Returning a Response
        short-circuits the request (later middlewares and the handler
        never run); returning None passes the request on."""
        return None

    def after(self, ctx: RequestContext, response: Response) -> None:
        """Runs after the response is determined (handler or
        short-circuit), in reverse stack order. Must not raise."""


# ----------------------------------------------------------------------
# Request ids
# ----------------------------------------------------------------------


class RequestIdMiddleware(Middleware):
    """Assign every request a correlation id.

    A client-supplied ``X-Request-Id`` header wins (so callers can stitch
    gateway access logs into their own); otherwise a process-unique
    ``req-NNNNNN`` is generated. The id is echoed on the response, logged
    by the access logger, and propagated by the query routes into the
    ``serve:query`` trace span and every progress event — which is what
    makes ``/ops/traces/<query_id>`` reachable from an access-log line
    alone.
    """

    #: Response header the id is echoed on (same name as the request).
    HEADER = "X-Request-Id"

    def __init__(self) -> None:
        self._counter = itertools.count(1)

    def before(self, ctx: RequestContext) -> Optional[Response]:
        supplied = ctx.headers.get("x-request-id", "").strip()
        ctx.request_id = supplied or f"req-{next(self._counter):06d}"
        return None

    def after(self, ctx: RequestContext, response: Response) -> None:
        response.headers.setdefault(self.HEADER, ctx.request_id)


# ----------------------------------------------------------------------
# Bearer-token auth
# ----------------------------------------------------------------------


class BearerAuthMiddleware(Middleware):
    """Map ``Authorization: Bearer <token>`` to a tenant.

    ``tokens`` is the static credential table (token -> tenant name).
    Requests without a valid token are rejected 401; the matched tenant
    is stamped on the context and overrides anything the body claims, so
    one tenant cannot charge another's ledger. ``/ops/*`` routes stay
    open by default (health probes don't carry credentials); pass
    ``protect_ops=True`` to close them too.
    """

    def __init__(self, tokens: Dict[str, str], protect_ops: bool = False):
        self.tokens = dict(tokens)
        self.protect_ops = protect_ops

    def before(self, ctx: RequestContext) -> Optional[Response]:
        if not self.protect_ops and ctx.path.startswith("/ops/"):
            return None
        header = ctx.headers.get("authorization", "")
        scheme, _, token = header.partition(" ")
        tenant = (
            self.tokens.get(token.strip())
            if scheme.lower() == "bearer"
            else None
        )
        if tenant is None:
            return Response(
                status=401,
                payload={
                    "error": "unauthorized",
                    "message": "missing or unknown bearer token",
                },
                headers={"WWW-Authenticate": "Bearer"},
            )
        ctx.tenant = tenant
        return None


# ----------------------------------------------------------------------
# Token-bucket rate limiting
# ----------------------------------------------------------------------


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    Thread-safe; refills lazily on each acquire (no timer thread). On
    refusal it reports how long until one token will be available — the
    ``Retry-After`` hint.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be > 0")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._tokens = burst
        self._last = clock()
        self._lock = threading.Lock()

    def try_acquire(self, n: float = 1.0) -> "tuple[bool, float]":
        """(granted, retry_after_s). ``retry_after_s`` is 0 on grant."""
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._last) * self.rate
            )
            self._last = now
            if self._tokens >= n:
                self._tokens -= n
                return True, 0.0
            return False, (n - self._tokens) / self.rate


class RateLimitMiddleware(Middleware):
    """Per-tenant token-bucket rate limiting at the network edge.

    One bucket per tenant (auto-created on first sight). Over-rate
    requests are shed 429 with both a ``Retry-After`` header and a
    machine-precision ``retry_after_s`` in the body — same typed-shed
    shape as the serving layer's :class:`~repro.serving.Overloaded`, so
    clients use one backoff path for both.
    """

    def __init__(
        self,
        rate_per_s: float,
        burst: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.rate_per_s = rate_per_s
        self.burst = burst if burst is not None else max(1.0, rate_per_s)
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()
        self.shed = 0

    def _bucket(self, tenant: str) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = TokenBucket(
                    self.rate_per_s, self.burst, clock=self._clock
                )
                self._buckets[tenant] = bucket
            return bucket

    def before(self, ctx: RequestContext) -> Optional[Response]:
        if ctx.path.startswith("/ops/"):
            return None  # the ops surface must stay reachable under load
        tenant = ctx.tenant or "default"
        granted, retry_after = self._bucket(tenant).try_acquire()
        if granted:
            return None
        with self._lock:
            self.shed += 1
        return Response(
            status=429,
            payload={
                "error": "rate_limited",
                "reason": "token_bucket",
                "tenant": tenant,
                "retry_after_s": round(retry_after, 3),
            },
            headers={"Retry-After": str(max(1, int(retry_after + 0.999)))},
        )


# ----------------------------------------------------------------------
# Structured access logging
# ----------------------------------------------------------------------


@dataclass
class AccessRecord:
    """One access-log line, structured. ``render`` is the text form."""

    method: str
    path: str
    status: int
    duration_ms: float
    request_id: str
    tenant: str
    query_id: str
    remote: str

    def render(self) -> str:
        return (
            f"{self.method} {self.path} {self.status} "
            f"{self.duration_ms:.1f}ms "
            f"request_id={self.request_id or '-'} "
            f"tenant={self.tenant or '-'} "
            f"query_id={self.query_id or '-'} "
            f"remote={self.remote or '-'}"
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "method": self.method,
            "path": self.path,
            "status": self.status,
            "duration_ms": round(self.duration_ms, 1),
            "request_id": self.request_id,
            "tenant": self.tenant,
            "query_id": self.query_id,
            "remote": self.remote,
        }


class AccessLogMiddleware(Middleware):
    """Record every request (including middleware-shed ones) as an
    :class:`AccessRecord` in a bounded ring buffer, optionally echoing
    the rendered line to a sink (e.g. ``print`` in the CLI)."""

    def __init__(
        self,
        max_records: int = 1024,
        sink: Optional[Callable[[str], None]] = None,
    ):
        self.max_records = max_records
        self.sink = sink
        self._lock = threading.Lock()
        self._records: List[AccessRecord] = []

    def after(self, ctx: RequestContext, response: Response) -> None:
        record = AccessRecord(
            method=ctx.method,
            path=ctx.path,
            status=response.status,
            duration_ms=(time.monotonic() - ctx.started) * 1000.0,
            request_id=ctx.request_id,
            tenant=ctx.tenant,
            query_id=ctx.query_id,
            remote=ctx.remote,
        )
        with self._lock:
            self._records.append(record)
            if len(self._records) > self.max_records:
                del self._records[: -self.max_records]
        if self.sink is not None:
            try:
                self.sink(record.render())
            except Exception:  # noqa: BLE001 - logging must never kill a request
                pass

    def records(self) -> List[AccessRecord]:
        """Snapshot of the retained records (oldest first)."""
        with self._lock:
            return list(self._records)
