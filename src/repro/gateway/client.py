"""A small stdlib HTTP client for the gateway.

Tests, benchmarks, and the CLI all need to drive the gateway over a real
socket; :class:`GatewayClient` wraps ``http.client`` with the gateway's
JSON conventions so none of them hand-roll HTTP:

* non-2xx responses raise a typed :class:`GatewayError` carrying the
  HTTP status, the decoded JSON payload, and the parsed ``Retry-After``
  hint (so load generators can back off exactly as the server asks);
* :meth:`GatewayClient.query_stream` speaks the SSE dialect the server
  emits — it yields ``(event_name, payload)`` pairs and terminates on
  the terminal ``result``/``error`` frame;
* :meth:`StreamHandle.abort` drops the socket mid-stream, which is how
  the disconnect tests simulate a client that went away.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, Iterator, Optional, Tuple

__all__ = ["GatewayClient", "GatewayError", "StreamHandle"]


class GatewayError(Exception):
    """A non-2xx gateway response, with the typed body attached."""

    def __init__(
        self,
        status: int,
        payload: Dict[str, Any],
        retry_after_s: Optional[float] = None,
    ):
        message = payload.get("message") or payload.get("error") or "gateway error"
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload
        #: Parsed from the Retry-After header (integer seconds) when the
        #: body carries no machine-precision ``retry_after_s``.
        self.retry_after_s = retry_after_s

    @property
    def error(self) -> str:
        return str(self.payload.get("error", ""))


class StreamHandle:
    """An open SSE stream: iterate :meth:`events`, or :meth:`abort` to
    simulate a client disconnect (closes the socket without reading the
    terminal frame)."""

    def __init__(self, connection: http.client.HTTPConnection, response: Any):
        self._connection = connection
        self._response = response
        self.closed = False

    def events(self) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """Yield ``(event, payload)`` per SSE frame; return after the
        terminal ``result``/``error`` frame (or when the server closes)."""
        event_name = ""
        data = ""
        try:
            while True:
                raw = self._response.readline(1 << 16)
                if not raw:
                    return
                line = raw.decode("utf-8").rstrip("\r\n")
                if line.startswith(":"):
                    continue  # keep-alive comment
                if line.startswith("event:"):
                    event_name = line[len("event:") :].strip()
                    continue
                if line.startswith("data:"):
                    data = line[len("data:") :].strip()
                    continue
                if line == "" and event_name:
                    payload = json.loads(data) if data else {}
                    yield event_name, payload
                    if event_name in ("result", "error"):
                        return
                    event_name, data = "", ""
        finally:
            self.close()

    def abort(self) -> None:
        """Drop the connection immediately (mid-stream disconnect)."""
        self.close()

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            # The server streams with ``Connection: close``, so http.client
            # hands the socket to the response; closing only the connection
            # would leave the OS-level socket open and the server would
            # never see the disconnect.
            try:
                self._response.close()
            finally:
                self._connection.close()


class GatewayClient:
    """JSON-over-HTTP client for one gateway endpoint.

    One connection per request (the load benchmark measures the full
    connect + request + response path, like real short-lived clients).
    """

    def __init__(
        self,
        host: str,
        port: int,
        token: Optional[str] = None,
        timeout_s: float = 30.0,
    ):
        self.host = host
        self.port = port
        self.token = token
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _headers(self, request_id: Optional[str] = None) -> Dict[str, str]:
        headers = {"Content-Type": "application/json"}
        if self.token:
            headers["Authorization"] = f"Bearer {self.token}"
        if request_id:
            headers["X-Request-Id"] = request_id
        return headers

    def _open(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )

    def request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        request_id: Optional[str] = None,
    ) -> Tuple[int, Dict[str, str], Dict[str, Any]]:
        """One round trip; returns (status, headers, decoded payload)."""
        connection = self._open()
        try:
            connection.request(
                method,
                path,
                body=json.dumps(body).encode("utf-8") if body is not None else None,
                headers=self._headers(request_id),
            )
            response = connection.getresponse()
            length = int(response.getheader("Content-Length") or "0")
            raw = response.read(length) if length > 0 else b""
            headers = {k.lower(): v for k, v in response.getheaders()}
            payload = json.loads(raw.decode("utf-8")) if raw else {}
            return response.status, headers, payload
        finally:
            connection.close()

    def _call(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        request_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        status, headers, payload = self.request(method, path, body, request_id)
        if status >= 400:
            retry_after: Optional[float] = None
            if isinstance(payload, dict) and "retry_after_s" in payload:
                retry_after = float(payload["retry_after_s"])
            elif "retry-after" in headers:
                try:
                    retry_after = float(headers["retry-after"])
                except ValueError:
                    retry_after = None
            raise GatewayError(status, payload if isinstance(payload, dict) else {},
                               retry_after_s=retry_after)
        return payload

    # ------------------------------------------------------------------
    # Query surface
    # ------------------------------------------------------------------

    def query(
        self,
        question: str,
        index: Optional[str] = None,
        tenant: Optional[str] = None,
        session: Optional[str] = None,
        follow_up: bool = False,
        deadline_s: Optional[float] = None,
        request_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Submit and wait for the served result."""
        body: Dict[str, Any] = {"question": question}
        if index:
            body["index"] = index
        if tenant:
            body["tenant"] = tenant
        if session:
            body["session"] = session
        if follow_up:
            body["follow_up"] = True
        if deadline_s is not None:
            body["deadline_s"] = deadline_s
        return self._call("POST", "/v1/query", body, request_id)

    def query_stream(
        self,
        question: str,
        index: Optional[str] = None,
        tenant: Optional[str] = None,
        session: Optional[str] = None,
        deadline_s: Optional[float] = None,
        request_id: Optional[str] = None,
    ) -> StreamHandle:
        """Submit with ``?stream=1``; returns a live :class:`StreamHandle`."""
        body: Dict[str, Any] = {"question": question}
        if index:
            body["index"] = index
        if tenant:
            body["tenant"] = tenant
        if session:
            body["session"] = session
        if deadline_s is not None:
            body["deadline_s"] = deadline_s
        connection = self._open()
        try:
            connection.request(
                "POST",
                "/v1/query?stream=1",
                body=json.dumps(body).encode("utf-8"),
                headers=self._headers(request_id),
            )
            response = connection.getresponse()
        except BaseException:
            connection.close()
            raise
        if response.status >= 400:
            length = int(response.getheader("Content-Length") or "0")
            raw = response.read(length) if length > 0 else b""
            connection.close()
            payload = json.loads(raw.decode("utf-8")) if raw else {}
            raise GatewayError(response.status, payload)
        return StreamHandle(connection, response)

    def status(self, ref: str) -> Dict[str, Any]:
        """Query status by query id or request id."""
        return self._call("GET", f"/v1/query/{ref}")

    def cancel(self, ref: str) -> Dict[str, Any]:
        return self._call("DELETE", f"/v1/query/{ref}")

    def open_session(
        self, index: Optional[str] = None, tenant: Optional[str] = None
    ) -> Dict[str, Any]:
        body: Dict[str, Any] = {}
        if index:
            body["index"] = index
        if tenant:
            body["tenant"] = tenant
        return self._call("POST", "/v1/session", body)

    def session(self, session_id: str) -> Dict[str, Any]:
        return self._call("GET", f"/v1/session/{session_id}")

    def ingest(
        self,
        dataset: str = "ntsb",
        index: Optional[str] = None,
        docs: int = 8,
        seed: int = 0,
    ) -> Dict[str, Any]:
        return self._call(
            "POST",
            "/v1/ingest",
            {"dataset": dataset, "index": index, "docs": docs, "seed": seed},
        )

    # ------------------------------------------------------------------
    # Ops surface
    # ------------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        status, _, payload = self.request("GET", "/ops/health")
        payload["http_status"] = status
        return payload

    def metrics(self, prefix: str = "") -> Dict[str, Any]:
        path = f"/ops/metrics?prefix={prefix}" if prefix else "/ops/metrics"
        return self._call("GET", path)["metrics"]

    def trace(self, ref: str) -> Dict[str, Any]:
        return self._call("GET", f"/ops/traces/{ref}")

    def costs(self) -> Dict[str, Any]:
        return self._call("GET", "/ops/costs")["tenants"]

    def stats(self) -> Dict[str, Any]:
        return self._call("GET", "/ops/stats")

    def accesslog(self, n: int = 100) -> Any:
        return self._call("GET", f"/ops/accesslog?n={n}")["records"]
