"""The gateway load experiment: multi-tenant clients over real sockets.

One callable, :func:`run_gateway_benchmark`, starts a SimulatedLLM-backed
:class:`~repro.gateway.server.Gateway` on an ephemeral port and drives it
with :class:`~repro.gateway.client.GatewayClient` instances — every
number in ``BENCH_service.json`` includes the full network path (connect,
HTTP parse, middleware, JSON) rather than in-process function calls.

Three phases:

* **cold_sequential** — each distinct question once, one client, one
  request at a time: the cost of a cache-miss query over the socket.
* **warm_concurrent** — the warmed gateway under concurrent multi-tenant
  traffic repeating those questions: the serving caches absorb the
  repeats, so this is the cache-hit throughput ceiling the ISSUE gates
  at ≥3x cold sequential.
* **burst** — a deliberately tiny service (one worker, depth-2 queue,
  slow simulated backend) hit with 2x more concurrent requests than it
  can hold: the overflow must shed as *typed* HTTP 429s carrying a
  nonzero ``Retry-After``, while every admitted request completes (zero
  in-flight queries dropped).

The pytest benchmark (``benchmarks/test_bench_service.py``) is a thin
wrapper that enforces the gates and writes ``BENCH_service.json``.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from ..datagen import generate_ntsb_corpus
from ..llm import ReliableLLM, SimulatedLLM
from ..observability.metrics import MetricsRegistry
from ..observability.tracing import Tracer
from ..partitioner import ArynPartitioner
from ..serving import QueryService, ServiceConfig
from ..sycamore.context import SycamoreContext
from .client import GatewayClient, GatewayError
from .server import Gateway, GatewayConfig

NTSB_SCHEMA = {
    "state": "string",
    "incident_year": "int",
    "weather_related": "bool",
    "injuries_fatal": "int",
    "cause": "string",
}

#: The question mix; repeats of these are what the serving caches absorb.
QUESTIONS = [
    "How many incidents were caused by wind?",
    "How many incidents were caused by icing?",
    "How many incidents happened in 2023?",
    "How many incidents had fatal injuries?",
]


def _build_context(
    n_docs: int, seed: int, latency_scale: float, parallelism: int
) -> SycamoreContext:
    """A self-contained NTSB context: private registry/tracer, no LLM
    response cache (the serving caches must do all the saving)."""
    registry = MetricsRegistry()
    tracer = Tracer()
    llm = ReliableLLM(
        SimulatedLLM(seed=seed, real_latency_scale=latency_scale),
        cache_enabled=False,
        tracer=tracer,
        registry=registry,
    )
    ctx = SycamoreContext(
        llm=llm,
        parallelism=parallelism,
        seed=seed,
        tracer=tracer,
        registry=registry,
    )
    _, raws = generate_ntsb_corpus(n_docs, seed=seed)
    (
        ctx.read.raw(raws)
        .partition(ArynPartitioner(seed=0))
        .extract_properties(NTSB_SCHEMA, model="sim-large")
        .write.index("ntsb")
    )
    return ctx


def _percentile(samples: List[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


def _phase_stats(latencies_ms: List[float], elapsed_s: float) -> Dict[str, Any]:
    return {
        "requests": len(latencies_ms),
        "elapsed_s": round(elapsed_s, 4),
        "qps": round(len(latencies_ms) / elapsed_s, 2) if elapsed_s > 0 else 0.0,
        "p50_ms": round(_percentile(latencies_ms, 0.50), 2),
        "p99_ms": round(_percentile(latencies_ms, 0.99), 2),
    }


def run_gateway_benchmark(
    n_docs: int = 24,
    repeats: int = 3,
    tenants: int = 3,
    workers: int = 4,
    latency_scale: float = 0.01,
    seed: int = 13,
    questions: Optional[List[str]] = None,
) -> Dict[str, Any]:
    """Run all three phases; returns the JSON-ready results dict."""
    questions = list(questions or QUESTIONS)
    tenant_names = [f"tenant-{i}" for i in range(tenants)]

    ctx = _build_context(n_docs, seed, latency_scale, parallelism=workers)
    gateway = Gateway(
        QueryService(ctx, ServiceConfig(max_workers=workers)),
    ).start()
    try:
        client = GatewayClient("127.0.0.1", gateway.port, timeout_s=120.0)

        # -- cold sequential: every distinct question is a miss ---------
        cold_lat: List[float] = []
        started = time.perf_counter()
        cold_answers: Dict[str, Any] = {}
        for question in questions:
            t0 = time.perf_counter()
            served = client.query(question, index="ntsb", tenant=tenant_names[0])
            cold_lat.append((time.perf_counter() - t0) * 1000.0)
            cold_answers[question] = served["answer"]
            assert served["result_cache"] == "miss"
        cold_elapsed = time.perf_counter() - started

        # -- warm concurrent: multi-tenant repeats over the same mix ----
        mix: List[Tuple[str, str]] = []
        for repeat in range(repeats):
            for i, question in enumerate(questions):
                mix.append((tenant_names[(i + repeat) % tenants], question))
        warm_lat: List[float] = []
        warm_outcomes: List[str] = []
        answers_agree = [True]
        lock = threading.Lock()

        def drive(tenant: str, question: str) -> None:
            worker_client = GatewayClient(
                "127.0.0.1", gateway.port, timeout_s=120.0
            )
            t0 = time.perf_counter()
            served = worker_client.query(question, index="ntsb", tenant=tenant)
            lat = (time.perf_counter() - t0) * 1000.0
            with lock:
                warm_lat.append(lat)
                warm_outcomes.append(served["result_cache"])
                if served["answer"] != cold_answers[question]:
                    answers_agree[0] = False

        threads = [
            threading.Thread(target=drive, args=pair, daemon=True)
            for pair in mix
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        warm_elapsed = time.perf_counter() - started

        cold = _phase_stats(cold_lat, cold_elapsed)
        warm = _phase_stats(warm_lat, warm_elapsed)
        warm["speedup_vs_cold"] = (
            round(warm["qps"] / cold["qps"], 2) if cold["qps"] else 0.0
        )
        hits = sum(1 for outcome in warm_outcomes if outcome in ("hit", "coalesced"))
        warm["cache_hit_rate"] = round(hits / len(warm_outcomes), 3)
        gateway_stats = gateway.stats()
        tenant_ledgers = client.costs()
    finally:
        gateway.close()

    # -- burst: 2x over a one-worker, depth-2 service -------------------
    burst = _run_burst_phase(n_docs, seed, latency_scale, questions)

    return {
        "workload": {
            "n_docs": n_docs,
            "repeats": repeats,
            "tenants": tenants,
            "workers": workers,
            "latency_scale": latency_scale,
            "seed": seed,
            "distinct_questions": len(questions),
            "requests": len(questions) + len(mix),
        },
        "modes": {"cold_sequential": cold, "warm_concurrent": warm},
        "answers_agree": answers_agree[0],
        "burst": burst,
        "gateway": gateway_stats,
        "tenants": {
            name: ledger["totals"] for name, ledger in tenant_ledgers.items()
        },
    }


def _run_burst_phase(
    n_docs: int, seed: int, latency_scale: float, questions: List[str]
) -> Dict[str, Any]:
    """Flood a tiny gateway with 2x its capacity, concurrently.

    Capacity = 1 worker + 2 queue slots = 3 admitted; we send 2x more
    *distinct* questions (no cache reuse) at once. The overflow must come
    back as HTTP 429 with a nonzero Retry-After; every 200 must carry a
    real answer.
    """
    # A slower backend than the main phases, so the burst genuinely
    # overlaps in the queue rather than draining between submissions.
    ctx = _build_context(n_docs, seed, max(latency_scale, 0.02), parallelism=2)
    gateway = Gateway(
        QueryService(
            ctx,
            ServiceConfig(
                max_workers=1, max_queue_depth=2, default_tenant_inflight=64
            ),
        ),
    ).start()
    capacity = 1 + 2
    n_requests = capacity * 2
    # Distinct phrasings keep the result cache out of the burst; reuse
    # the benchmark questions' shape so planning stays on the fast path.
    burst_questions = [
        questions[i % len(questions)].rstrip("?") + f" (variant {i})?"
        for i in range(n_requests)
    ]
    results: List[Dict[str, Any]] = []
    lock = threading.Lock()
    barrier = threading.Barrier(n_requests)

    def fire(question: str) -> None:
        client = GatewayClient("127.0.0.1", gateway.port, timeout_s=120.0)
        barrier.wait()
        try:
            served = client.query(question, index="ntsb", tenant="burst")
            outcome = {
                "status": 200,
                "answered": served["answer"] is not None,
            }
        except GatewayError as exc:
            outcome = {
                "status": exc.status,
                "error": exc.error,
                "retry_after_s": exc.retry_after_s or 0.0,
            }
        with lock:
            results.append(outcome)

    threads = [
        threading.Thread(target=fire, args=(question,), daemon=True)
        for question in burst_questions
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    stats = gateway.service.stats()
    gateway.close()

    completed = [r for r in results if r["status"] == 200]
    shed = [r for r in results if r["status"] == 429]
    other = [r for r in results if r["status"] not in (200, 429)]
    return {
        "requests": n_requests,
        "capacity": capacity,
        "elapsed_s": round(elapsed, 4),
        "completed": len(completed),
        "shed_429": len(shed),
        "other_failures": len(other),
        "all_completed_answered": all(r["answered"] for r in completed),
        "all_sheds_typed": all(r.get("error") == "overloaded" for r in shed),
        "min_retry_after_s": round(
            min((r["retry_after_s"] for r in shed), default=0.0), 4
        ),
        "service_completed": stats["completed"],
        "service_rejected": stats["rejected"],
        "service_failed": stats["failed"],
    }


def render_results(results: Dict[str, Any]) -> str:
    """A compact human-readable summary (CLI + benchmark stdout)."""
    cold = results["modes"]["cold_sequential"]
    warm = results["modes"]["warm_concurrent"]
    burst = results["burst"]
    lines = [
        "gateway load benchmark (real sockets, SimulatedLLM backend)",
        f"  cold sequential : {cold['qps']:>7.2f} qps  "
        f"p50 {cold['p50_ms']:.1f}ms  p99 {cold['p99_ms']:.1f}ms",
        f"  warm concurrent : {warm['qps']:>7.2f} qps  "
        f"p50 {warm['p50_ms']:.1f}ms  p99 {warm['p99_ms']:.1f}ms  "
        f"({warm['speedup_vs_cold']:.1f}x cold, "
        f"{warm['cache_hit_rate']:.0%} cache hits)",
        f"  burst           : {burst['requests']} requests into capacity "
        f"{burst['capacity']} -> {burst['completed']} completed, "
        f"{burst['shed_429']} shed 429 "
        f"(min Retry-After {burst['min_retry_after_s']:.2f}s)",
    ]
    return "\n".join(lines)
