"""repro.serving — concurrent query serving over a shared context.

The interactive front half of the system: many users ask natural-language
questions against shared indexes, and the service amortizes LLM work
across them (single-flight plan and result caches), bounds load (typed
admission control with per-tenant quotas), and accounts every simulated
dollar spent or saved to the tenant that caused it. See
:mod:`repro.serving.service` for the full design narrative.
"""

from .cache import (
    COALESCED,
    HIT,
    MISS,
    SingleFlightCache,
    index_fingerprint,
    normalize_question,
    plan_cache_key,
    result_cache_key,
)
from .service import (
    Overloaded,
    QueryEvent,
    QueryService,
    QueryTicket,
    ServedResult,
    ServiceClosed,
    ServiceConfig,
    ServingError,
)
from .session import Session, SessionEntry, Tenant, TenantQuota

__all__ = [
    "COALESCED",
    "HIT",
    "MISS",
    "Overloaded",
    "QueryEvent",
    "QueryService",
    "QueryTicket",
    "ServedResult",
    "ServiceClosed",
    "ServiceConfig",
    "ServingError",
    "Session",
    "SessionEntry",
    "SingleFlightCache",
    "Tenant",
    "TenantQuota",
    "index_fingerprint",
    "normalize_question",
    "plan_cache_key",
    "result_cache_key",
]
