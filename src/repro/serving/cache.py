"""Serving-layer caches: key construction and single-flight reuse.

The serving layer amortizes LLM work across queries two ways:

* a **plan cache** — normalized question + index *schema* fingerprint →
  reusable logical plan. Plans depend only on the question and on what
  the planner can see (the schema), so corpus growth that leaves the
  schema unchanged keeps cached plans valid.
* a **result cache** — the plan key *plus the corpus versions* of every
  index the query reads → finished :class:`~repro.luna.luna.LunaResult`.
  Any ingest bumps :attr:`NamedIndex.version <repro.indexes.catalog.NamedIndex.version>`
  and therefore changes the key, so stale answers are never served.

Both sit on :class:`SingleFlightCache`, which adds thundering-herd
protection: when N identical queries arrive concurrently, one caller
(the *leader*) computes while the rest block on the leader's future —
one plan, one execution, N answers. Failures propagate to every waiter
and are **not** cached, so a transient error doesn't poison the key.

Keys fold through :func:`repro.execution.materialize.stable_fingerprint`,
the same primitive that stamps disk-materialization sidecars — one
fingerprint discipline for every cache in the system.
"""

from __future__ import annotations

import re
import threading
from collections import OrderedDict
from concurrent.futures import Future
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from ..execution.materialize import stable_fingerprint
from ..indexes.catalog import NamedIndex
from ..lifecycle.deadline import current_scope, wait_future

#: Outcomes of :meth:`SingleFlightCache.get_or_compute`.
HIT = "hit"  #: served from the cache, no work done
COALESCED = "coalesced"  #: waited on another caller's in-flight compute
MISS = "miss"  #: this caller computed (and cached) the value

_WHITESPACE = re.compile(r"\s+")


def normalize_question(question: str) -> str:
    """Canonical form of a natural-language question for cache keying.

    Case, surrounding whitespace, internal whitespace runs and trailing
    sentence punctuation don't change what's being asked, so "How many
    incidents?\\n" and "how many  incidents" share a cache entry.
    """
    return _WHITESPACE.sub(" ", question).strip().rstrip("?!. ").lower()


def index_fingerprint(index: NamedIndex) -> str:
    """Fingerprint of everything the *planner* sees about an index.

    Name, description and the discovered schema — but **not** the corpus
    version: plans stay valid across ingest unless the schema itself
    moves.
    """
    return stable_fingerprint(
        [index.name, index.description, sorted(index.schema.items())]
    )


def plan_cache_key(
    question: str,
    index: NamedIndex,
    secondary: Sequence[NamedIndex] = (),
    optimizer_fingerprint: str = "",
) -> Tuple[Any, ...]:
    """Cache key for a reusable logical plan.

    ``optimizer_fingerprint`` captures the optimizer decisions baked into
    the cached plan — policy name plus the (quantized) fingerprint of the
    statistics snapshot the cost-based rewrites consulted. Two epochs
    whose statistics would rewrite the plan differently therefore cache
    under different keys; within an epoch the fingerprint is frozen so
    hit rates are unaffected (see ``QueryService.refresh_optimizer``).
    """
    return (
        normalize_question(question),
        index.name,
        index_fingerprint(index),
        tuple((s.name, index_fingerprint(s)) for s in secondary),
        optimizer_fingerprint,
    )


def result_cache_key(
    question: str,
    index: NamedIndex,
    secondary: Sequence[NamedIndex] = (),
    optimizer_fingerprint: str = "",
) -> Tuple[Any, ...]:
    """Cache key for a finished answer: the plan key plus corpus versions."""
    return plan_cache_key(question, index, secondary, optimizer_fingerprint) + (
        index.version,
        tuple(s.version for s in secondary),
    )


class SingleFlightCache:
    """A bounded LRU cache with per-key in-flight coalescing.

    :meth:`get_or_compute` returns ``(value, outcome)`` where outcome is
    :data:`HIT`, :data:`COALESCED` or :data:`MISS`. Exactly one caller
    per key runs ``compute`` at a time; concurrent callers for the same
    key share the leader's future (including its exception — failures
    are never cached). Thread-safe; ``compute`` runs *outside* the lock.
    """

    def __init__(self, max_entries: int = 256):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Any, Any]" = OrderedDict()
        self._inflight: Dict[Any, "Future[Any]"] = {}
        self.hits = 0
        self.misses = 0
        self.coalesced = 0
        self.evictions = 0
        self.reelections = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get_or_compute(
        self,
        key: Any,
        compute: Callable[[], Any],
        reelect_on: Tuple[type, ...] = (),
    ) -> Tuple[Any, str]:
        """Return the cached value for ``key``, computing it at most once
        across all concurrent callers.

        Followers wait scope-aware: a follower whose *own* lifecycle
        scope is cancelled or expires detaches with its typed error while
        the leader keeps computing for everyone else. When the *leader*
        fails with one of the ``reelect_on`` exception types (e.g. the
        leader's query was cancelled), surviving followers retry from the
        top — one of them becomes the new leader — instead of inheriting
        a failure that says nothing about their own query.
        """
        while True:
            with self._lock:
                if key in self._entries:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    return self._entries[key], HIT
                future = self._inflight.get(key)
                if future is None:
                    future = Future()
                    self._inflight[key] = future
                    leader = True
                else:
                    self.coalesced += 1
                    leader = False
            if not leader:
                try:
                    # Blocks until the leader resolves, re-checking this
                    # caller's own scope between slices.
                    return wait_future(future), COALESCED
                except BaseException as exc:
                    if not future.done():
                        # The leader is still running: the failure is this
                        # follower's own scope tripping. Detach.
                        raise
                    if reelect_on and isinstance(exc, reelect_on):
                        own = current_scope()
                        if own is not None:
                            own.check()  # dead followers don't campaign
                        with self._lock:
                            self.reelections += 1
                        continue  # leader died for reasons not ours: re-elect
                    raise
            try:
                value = compute()
            except BaseException as exc:
                with self._lock:
                    self._inflight.pop(key, None)
                future.set_exception(exc)
                raise
            with self._lock:
                self.misses += 1
                self._entries[key] = value
                self._entries.move_to_end(key)
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
                    self.evictions += 1
                self._inflight.pop(key, None)
            future.set_result(value)
            return value, MISS

    def peek(self, key: Any) -> Optional[Any]:
        """The cached value without recency update or compute (or None)."""
        with self._lock:
            return self._entries.get(key)

    def invalidate(self, key: Any) -> bool:
        """Drop one entry; returns whether it existed."""
        with self._lock:
            return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        """Drop every cached entry (in-flight computes are unaffected)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> Dict[str, Any]:
        """Counter snapshot for status displays and benchmarks."""
        with self._lock:
            lookups = self.hits + self.coalesced + self.misses
            return {
                "size": len(self._entries),
                "hits": self.hits,
                "coalesced": self.coalesced,
                "misses": self.misses,
                "evictions": self.evictions,
                "reelections": self.reelections,
                "hit_rate": round(
                    (self.hits + self.coalesced) / lookups, 4
                )
                if lookups
                else 0.0,
            }
