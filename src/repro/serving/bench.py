"""The serving-layer experiment: warm concurrent serving vs cold loops.

One callable, :func:`run_serving_benchmark`, builds two identical NTSB
contexts (deterministic simulated backend, response cache OFF so the
serving caches are the only reuse mechanism being measured) and runs the
same question mix two ways:

* **sequential_cold** — a plain ``Luna.query()`` loop, one query at a
  time, no serving layer: every repeat replans and re-executes.
* **served_warm** — the same requests submitted concurrently to a
  :class:`~repro.serving.service.QueryService`: repeats and concurrent
  duplicates collapse onto single-flight plan/result caches while
  distinct questions overlap on the worker pool.

A third phase floods a deliberately tiny service (one worker, depth-2
queue) to demonstrate load shedding: some submissions raise
:class:`~repro.serving.service.Overloaded`, every admitted query still
completes, and the drain finishes cleanly.

The CLI (``python -m repro bench-serve``) and the pytest benchmark
(``benchmarks/test_bench_serving.py``) are both thin wrappers over this
module, so the numbers in ``BENCH_serving.json`` are reproducible from
either entry point.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Tuple

from ..datagen import generate_ntsb_corpus
from ..llm import ReliableLLM, SimulatedLLM
from ..luna.luna import Luna
from ..observability.metrics import MetricsRegistry
from ..observability.tracing import Tracer
from ..partitioner import ArynPartitioner
from ..sycamore.context import SycamoreContext
from .service import Overloaded, QueryService, ServiceConfig

NTSB_SCHEMA = {
    "state": "string",
    "incident_year": "int",
    "weather_related": "bool",
    "injuries_fatal": "int",
    "cause": "string",
}

#: The question mix; repeats of these are what the serving caches absorb.
QUESTIONS = [
    "How many incidents were caused by wind?",
    "How many incidents were caused by icing?",
    "How many incidents happened in 2023?",
    "How many incidents had fatal injuries?",
]


def _build_context(
    n_docs: int, seed: int, latency_scale: float, parallelism: int
) -> SycamoreContext:
    """A self-contained NTSB context: private registry/tracer, no LLM
    response cache (the serving caches must do all the saving)."""
    registry = MetricsRegistry()
    tracer = Tracer()
    llm = ReliableLLM(
        SimulatedLLM(seed=seed, real_latency_scale=latency_scale),
        cache_enabled=False,
        tracer=tracer,
        registry=registry,
    )
    ctx = SycamoreContext(
        llm=llm,
        parallelism=parallelism,
        seed=seed,
        tracer=tracer,
        registry=registry,
    )
    _, raws = generate_ntsb_corpus(n_docs, seed=seed)
    (
        ctx.read.raw(raws)
        .partition(ArynPartitioner(seed=0))
        .extract_properties(NTSB_SCHEMA, model="sim-large")
        .write.index("ntsb")
    )
    return ctx


def _request_mix(
    questions: List[str], repeats: int, tenants: int
) -> List[Tuple[str, str]]:
    """(tenant, question) pairs, interleaved so concurrent submissions of
    the same question actually overlap (the single-flight case)."""
    mix: List[Tuple[str, str]] = []
    for repeat in range(repeats):
        for i, question in enumerate(questions):
            mix.append((f"tenant-{(i + repeat) % tenants}", question))
    return mix


def run_serving_benchmark(
    n_docs: int = 24,
    repeats: int = 3,
    tenants: int = 2,
    workers: int = 4,
    latency_scale: float = 0.01,
    seed: int = 13,
    questions: "List[str] | None" = None,
) -> Dict[str, Any]:
    """Run all three phases; returns the JSON-ready results dict."""
    questions = list(questions or QUESTIONS)
    mix = _request_mix(questions, repeats, tenants)

    # -- sequential cold: plain Luna loop, replans every time -----------
    seq_ctx = _build_context(n_docs, seed, latency_scale, parallelism=workers)
    luna = Luna(seq_ctx, planner_model="sim-large", policy="balanced",
                error_policy="dead_letter")
    started = time.perf_counter()
    seq_answers = {q: luna.query(q, "ntsb").answer for _, q in mix}
    seq_elapsed = time.perf_counter() - started

    # -- served warm: same requests, concurrent, through the service ----
    serve_ctx = _build_context(n_docs, seed, latency_scale, parallelism=workers)
    config = ServiceConfig(
        max_workers=workers,
        max_queue_depth=max(len(mix), 8),
        default_tenant_inflight=max(len(mix), 8),
    )
    service = QueryService(serve_ctx, config, registry=serve_ctx.registry)
    started = time.perf_counter()
    tickets = [service.submit(q, "ntsb", tenant=t) for t, q in mix]
    served = [ticket.result(timeout=300) for ticket in tickets]
    serve_elapsed = time.perf_counter() - started
    stats = service.stats()
    tenant_stats = {
        name: service.tenant_account(name).as_dict()["totals"]
        for name in sorted({t for t, _ in mix})
    }
    service.close()

    serve_answers = {r.question: r.answer for r in served}
    answers_agree = serve_answers == seq_answers

    # -- overload: tiny service, flood, shed, drain ---------------------
    overload = _run_overload_phase(serve_ctx, questions)

    speedup = seq_elapsed / serve_elapsed if serve_elapsed > 0 else float("inf")
    return {
        "workload": {
            "documents": n_docs,
            "distinct_questions": len(questions),
            "repeats": repeats,
            "tenants": tenants,
            "requests": len(mix),
            "workers": workers,
            "real_latency_scale": latency_scale,
            "llm_response_cache": "disabled",
        },
        "modes": {
            "sequential_cold": {
                "elapsed_s": round(seq_elapsed, 4),
                "queries": len(mix),
                "qps": round(len(mix) / seq_elapsed, 2),
            },
            "served_warm": {
                "elapsed_s": round(serve_elapsed, 4),
                "queries": len(mix),
                "qps": round(len(mix) / serve_elapsed, 2),
                "speedup_vs_sequential": round(speedup, 2),
                "plans_computed": stats["plans_computed"],
                "executions": stats["executions"],
                "plan_cache": stats["plan_cache"],
                "result_cache": stats["result_cache"],
                "saved_usd": stats["saved_usd"],
            },
        },
        "answers_agree": answers_agree,
        "tenants": tenant_stats,
        "overload": overload,
    }


def _run_overload_phase(
    ctx: SycamoreContext, questions: List[str]
) -> Dict[str, Any]:
    """Flood a one-worker, depth-2 service and show it sheds, completes
    every admitted query, and drains."""
    config = ServiceConfig(
        max_workers=1, max_queue_depth=2, default_tenant_inflight=64
    )
    service = QueryService(ctx, config, registry=MetricsRegistry())
    # Distinct questions (the suffix survives normalization), so every
    # admitted query does real work and the queue genuinely fills.
    flood = [
        f"{questions[i % len(questions)]} (variant {i})" for i in range(12)
    ]
    tickets = []
    rejected = 0
    for question in flood:
        try:
            tickets.append(service.submit(question, "ntsb", tenant="flood"))
        except Overloaded:
            rejected += 1
    drained = service.drain(timeout=300)
    completed = sum(1 for t in tickets if t.done() and t.future.exception() is None)
    service.close()
    return {
        "submitted": len(flood),
        "admitted": len(tickets),
        "rejected": rejected,
        "completed": completed,
        "drained": drained,
    }


def render_results(results: Dict[str, Any]) -> str:
    """Human-readable summary table for CLI output."""
    modes = results["modes"]
    lines = [
        f"{'mode':<18} {'elapsed':>9} {'qps':>7} {'speedup':>8} "
        f"{'plans':>6} {'execs':>6}",
    ]
    lines.append("-" * len(lines[0]))
    for name, row in modes.items():
        lines.append(
            f"{name:<18} {row['elapsed_s']:>8.3f}s {row['qps']:>7.2f} "
            f"{row.get('speedup_vs_sequential', 1.0):>7.2f}x "
            f"{row.get('plans_computed', '-'):>6} {row.get('executions', '-'):>6}"
        )
    over = results["overload"]
    lines.append(
        f"overload: {over['submitted']} submitted, {over['admitted']} admitted, "
        f"{over['rejected']} shed, {over['completed']} completed, "
        f"drained={over['drained']}"
    )
    for tenant, totals in results["tenants"].items():
        lines.append(
            f"tenant {tenant}: spent ${totals['cost_usd']:.4f}, "
            f"saved ${totals['saved_usd']:.4f}"
        )
    return "\n".join(lines)
