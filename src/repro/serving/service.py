"""The concurrent query-serving front-end: admission, caching, progress.

:class:`QueryService` admits many concurrent Luna queries over one shared
:class:`~repro.sycamore.context.SycamoreContext` and its indexes — the
interactive-service posture of the paper (§1: ad-hoc questions against
shared corpora at interactive latency) scaled toward the ROADMAP's
"heavy traffic" north star. The design in one paragraph:

submissions pass **admission control** (a bounded queue plus per-tenant
quotas; past either bound the service *sheds* with a typed
:class:`Overloaded` instead of queueing unboundedly or deadlocking),
then execute on a fixed worker pool. Each served query gets a root
``serve`` span and contributes to its tenant's long-lived
:class:`~repro.observability.CostAccount`. The **result cache** is
consulted first (keyed on the normalized question *and* the corpus
versions of every index read, so ingest invalidates it); on a miss the
**plan cache** (keyed on the question and the index *schema*
fingerprint, so ingest does *not* invalidate it) supplies or computes
the logical plan, and the query executes through the ordinary Luna
stack — planner and operators at INTERACTIVE priority on the shared
request scheduler. Both caches are single-flight: N identical
concurrent queries plan once and execute once, with the other N-1
coalescing onto the leader's future. Cache hits are credited to the
tenant's account as ``saved_usd`` (the conservative-accounting
invariant of :mod:`repro.observability`). Shutdown **drains**: admitted
queries complete, queued-but-unstarted ones fail typed under
``drain=False``, and no future is ever lost.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..analysis.plancheck import ensure_valid_plan
from ..lifecycle.deadline import (
    CancelScope,
    Deadline,
    DeadlineExceeded,
    QueryCancelled,
    attach_scope,
)
from ..luna.luna import Luna, LunaResult
from ..luna.operators import LogicalPlan
from ..observability.cost import CostAccount
from ..observability.metrics import MetricsRegistry
from ..observability.tracing import Span, Tracer
from ..sycamore.context import SycamoreContext
from .cache import (
    COALESCED,
    HIT,
    MISS,
    SingleFlightCache,
    plan_cache_key,
    result_cache_key,
)
from .session import Session, SessionEntry, Tenant, TenantQuota


class ServingError(RuntimeError):
    """Base class for serving-layer failures."""


class Overloaded(ServingError):
    """Admission control shed this query: the service is at capacity.

    ``reason`` is ``"queue_full"`` or ``"tenant_quota"``; callers should
    back off and retry rather than treat this as a query failure.
    ``retry_after_s`` is a machine-readable backoff hint derived from the
    current backlog and the service's recent per-query latency.
    """

    def __init__(
        self, message: str, reason: str, retry_after_s: float = 0.0, **detail: Any
    ):
        super().__init__(message)
        self.reason = reason
        self.retry_after_s = retry_after_s
        self.detail = detail


class ServiceClosed(ServingError):
    """The service is shut down (or shutting down without drain)."""


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs for a :class:`QueryService`."""

    #: Worker threads executing admitted queries.
    max_workers: int = 4
    #: Bounded submission queue; a full queue sheds with Overloaded.
    max_queue_depth: int = 32
    #: Default per-tenant inflight bound (override via set_quota).
    default_tenant_inflight: int = 8
    plan_cache_size: int = 256
    result_cache_size: int = 512
    #: Optimizer policy and failure containment for served queries. A
    #: service defaults to graceful degradation: a flaky backend yields
    #: partial answers, not 500s.
    policy: str = "balanced"
    error_policy: str = "dead_letter"
    planner_model: str = "sim-large"
    #: Worker *processes* for scatter/gather execution of large
    #: per-record LLM operators (0 disables). When set, the service
    #: attaches a :class:`repro.cluster.ClusterCoordinator` to the
    #: context (unless one is already injected) and owns its lifecycle.
    cluster_workers: int = 0
    #: Disk path for the adaptive optimizer's statistics store (None =
    #: memory-only). Loaded at startup, saved on close, so learned
    #: selectivity/$-per-row figures survive service restarts.
    optimizer_stats_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.default_tenant_inflight < 1:
            raise ValueError("default_tenant_inflight must be >= 1")
        if self.cluster_workers < 0:
            raise ValueError("cluster_workers must be >= 0")


@dataclass
class QueryEvent:
    """One progress event in a served query's lifecycle."""

    stage: str
    at: float
    detail: Dict[str, Any] = field(default_factory=dict)


#: Stages after which a ticket emits no further events.
TERMINAL_STAGES = frozenset({"completed", "failed", "cancelled"})


@dataclass
class ServedResult:
    """What the service hands back for one query: the Luna result plus
    serving provenance (cache outcomes, spend, savings, latency)."""

    query_id: str
    question: str
    index: str
    tenant: str
    session_id: Optional[str]
    result: LunaResult
    #: "hit" | "coalesced" | "miss" | "bypass" (follow-ups bypass caches).
    plan_cache: str
    result_cache: str
    #: New simulated dollars this query actually spent (0 for cache hits
    #: and coalesced waiters — the leader is charged).
    cost_usd: float
    #: Dollars avoided via serving-cache reuse, credited to the tenant.
    saved_usd: float
    latency_s: float
    serve_trace_id: str = ""
    #: True when the query's deadline expired mid-execution and the
    #: answer was degraded to a typed partial result.
    deadline_exceeded: bool = False
    #: The network request id the query was submitted under ("" when the
    #: query didn't come through the gateway).
    request_id: str = ""

    @property
    def answer(self) -> Any:
        """The query's answer (convenience passthrough)."""
        return self.result.answer

    @property
    def partial(self) -> bool:
        """Whether failure containment degraded the answer."""
        return self.result.partial


class QueryTicket:
    """Handle for one admitted query: a future plus a progress stream."""

    def __init__(
        self,
        query_id: str,
        question: str,
        index: str,
        tenant: str,
        session: Optional[Session],
        secondary: Tuple[str, ...],
        follow_up: bool,
        deadline_s: Optional[float] = None,
        request_id: str = "",
    ):
        self.query_id = query_id
        self.question = question
        self.index = index
        self.tenant = tenant
        self.session = session
        self.secondary = secondary
        self.follow_up = follow_up
        #: The network-edge correlation id (X-Request-Id), when the query
        #: arrived through the gateway. Stamped on the serve span and on
        #: every progress event, so traces are reachable from access logs.
        self.request_id = request_id
        self.submitted_at = time.monotonic()
        #: The query's lifecycle scope. The deadline clock starts at
        #: admission, so queue time counts against the budget.
        self.scope = CancelScope(
            deadline=Deadline(deadline_s) if deadline_s is not None else None,
            query_id=query_id,
        )
        self._service: Optional["QueryService"] = None
        from concurrent.futures import Future

        self.future: "Future[ServedResult]" = Future()
        self._cond = threading.Condition()
        self._events: List[QueryEvent] = []

    @property
    def deadline(self) -> Optional[Deadline]:
        """The end-to-end deadline, when one was requested."""
        return self.scope.deadline

    def cancel(self, reason: str = "") -> bool:
        """Cooperatively cancel this query.

        Still-queued queries fail immediately with a typed
        :class:`~repro.lifecycle.QueryCancelled` and release their
        admission slot; a running query observes the cancellation at its
        next checkpoint (operator boundary, record boundary, queue wait,
        retry sleep). Returns True the first time cancellation is
        requested.
        """
        first = self.scope.cancel(reason)
        if self._service is not None:
            self._service._cancel_queued(self, reason)
        return first

    @property
    def cancelled(self) -> bool:
        """Whether cancellation has been requested."""
        return self.scope.cancelled

    @property
    def session_id(self) -> Optional[str]:
        """The owning session's id, if the query runs inside one."""
        return self.session.session_id if self.session is not None else None

    def _emit(self, stage: str, **detail: Any) -> None:
        if self.request_id:
            detail.setdefault("request_id", self.request_id)
        event = QueryEvent(stage=stage, at=time.monotonic(), detail=detail)
        with self._cond:
            self._events.append(event)
            self._cond.notify_all()

    def result(self, timeout: Optional[float] = None) -> ServedResult:
        """Block for the served result (raises the query's failure)."""
        return self.future.result(timeout=timeout)

    def done(self) -> bool:
        """Whether the query has reached a terminal state."""
        return self.future.done()

    def events(self) -> List[QueryEvent]:
        """Snapshot of progress events so far."""
        with self._cond:
            return list(self._events)

    def stream(self, timeout: Optional[float] = None, heartbeat: bool = False):
        """Yield progress events as they occur, ending after a terminal
        stage (or when ``timeout`` elapses with no new event).

        With ``heartbeat=True`` a quiet ``timeout`` window yields ``None``
        instead of ending the stream — consumers that must detect dead
        peers (the gateway's SSE delivery) use the ``None`` ticks to
        write keep-alives, and the stream still terminates at the first
        terminal stage.
        """
        consumed = 0
        while True:
            with self._cond:
                while consumed >= len(self._events):
                    if not self._cond.wait(timeout=timeout):
                        if not heartbeat:
                            return
                        break
                fresh = self._events[consumed:]
                consumed = len(self._events)
            if not fresh and heartbeat:
                yield None
                continue
            for event in fresh:
                yield event
                if event.stage in TERMINAL_STAGES:
                    return


@dataclass
class _PlanEntry:
    """A cached plan: serialized (so every execution gets a private copy
    — sessions may edit plan nodes in place) plus what planning cost."""

    plan_json: str
    cost_usd: float
    llm_calls: int
    plan_trace_id: str = ""

    def hydrate(self) -> LogicalPlan:
        plan = LogicalPlan.from_json(self.plan_json)
        plan.validate()
        return plan


class QueryService:
    """Concurrent Luna query serving over one shared context.

    Usage::

        service = QueryService(ctx, ServiceConfig(max_workers=8))
        session = service.open_session(tenant="alice")
        ticket = service.submit("How many incidents were caused by wind?",
                                index="ntsb", session=session)
        served = ticket.result(timeout=30)
        service.close()          # graceful drain

    Thread-safety: ``submit`` may be called from any thread; each worker
    thread owns a private :class:`Luna` facade (the planner/executor pair
    keeps per-query scratch state) while the context, catalog, scheduler,
    caches and tracer are shared.
    """

    def __init__(
        self,
        context: SycamoreContext,
        config: Optional[ServiceConfig] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.context = context
        self.config = config or ServiceConfig()
        self.tracer: Optional[Tracer] = getattr(context, "tracer", None)
        self.registry = registry if registry is not None else context.registry
        self.plan_cache = SingleFlightCache(self.config.plan_cache_size)
        self.result_cache = SingleFlightCache(self.config.result_cache_size)
        reg = self.registry
        self._m_submitted = reg.counter("serving.submitted")
        self._m_admitted = reg.counter("serving.admitted")
        self._m_rejected = reg.counter("serving.rejected")
        self._m_completed = reg.counter("serving.completed")
        self._m_failed = reg.counter("serving.failed")
        self._m_cancelled = reg.counter("serving.cancelled")
        self._m_deadline_exceeded = reg.counter("serving.deadline_exceeded")
        self._m_plans_computed = reg.counter("serving.plans_computed")
        self._m_executions = reg.counter("serving.executions")
        self._m_plan_hits = reg.counter("serving.plan_cache_hits")
        self._m_plan_coalesced = reg.counter("serving.plan_cache_coalesced")
        self._m_plan_misses = reg.counter("serving.plan_cache_misses")
        self._m_result_hits = reg.counter("serving.result_cache_hits")
        self._m_result_coalesced = reg.counter("serving.result_cache_coalesced")
        self._m_result_misses = reg.counter("serving.result_cache_misses")
        self._m_saved_usd = reg.counter("serving.saved_usd")
        self._g_queue_depth = reg.gauge("serving.queue_depth")
        self._g_active = reg.gauge("serving.active_queries")
        self._h_latency = reg.histogram("serving.latency_ms")
        self._cond = threading.Condition()
        self._queue: List[QueryTicket] = []
        self._tenants: Dict[str, Tenant] = {}
        self._accounts_lock = threading.Lock()
        self._active = 0
        self._closed = False
        self._query_counter = 0
        self._session_counter = 0
        self._peak_queue_depth = 0
        #: EMA of recent per-query latency, feeding Overloaded.retry_after_s.
        self._latency_ema_s = 0.0
        self._luna_local = threading.local()
        # Adaptive optimizer state. Every execution feeds observed
        # operator statistics into the live store, but decisions are made
        # against a *frozen* snapshot pinned per epoch: identical
        # questions within an epoch optimize identically, so the epoch's
        # fingerprint can key the plan/result caches without destroying
        # hit rates. ``refresh_optimizer`` rolls the epoch.
        from ..optimizer import StatsStore

        self.stats_store = StatsStore(
            path=self.config.optimizer_stats_path, registry=self.registry
        )
        self._optimizer_lock = threading.Lock()
        self._optimizer_epoch = 0
        self._stats_snapshot = self.stats_store.snapshot()
        # Scatter/gather back-end: served queries route large per-record
        # LLM operators through worker processes (see repro.cluster).
        # Lazy import — serving is on the luna -> cluster -> serving
        # cycle, so the dependency must stay runtime-only.
        self._owned_cluster: Optional[Any] = None
        if self.config.cluster_workers > 0 and getattr(context, "cluster", None) is None:
            from ..cluster.coordinator import ClusterConfig, ClusterCoordinator

            self._owned_cluster = ClusterCoordinator(
                ClusterConfig(n_workers=self.config.cluster_workers),
                tracer=self.tracer,
                registry=self.registry,
            )
            context.cluster = self._owned_cluster
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-serve-worker-{i}",
                daemon=True,
            )
            for i in range(self.config.max_workers)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    # Tenants and sessions
    # ------------------------------------------------------------------

    def _tenant_locked(self, name: str) -> Tenant:
        tenant = self._tenants.get(name)
        if tenant is None:
            tenant = Tenant(
                name=name,
                quota=TenantQuota(
                    max_inflight=self.config.default_tenant_inflight
                ),
            )
            self._tenants[name] = tenant
        return tenant

    def tenant(self, name: str) -> Tenant:
        """The (auto-created) tenant record for ``name``."""
        with self._cond:
            return self._tenant_locked(name)

    def set_quota(self, tenant: str, quota: TenantQuota) -> None:
        """Install an admission quota for one tenant."""
        with self._cond:
            self._tenant_locked(tenant).quota = quota

    def tenant_account(self, name: str) -> CostAccount:
        """The tenant's long-lived cost ledger (spend and savings)."""
        return self.tenant(name).account

    def open_session(
        self, tenant: str = "default", index: Optional[str] = None
    ) -> Session:
        """Start a conversation for a tenant (``index`` becomes its
        default target index)."""
        with self._cond:
            self._tenant_locked(tenant)
            self._session_counter += 1
            session_id = f"sess{self._session_counter:04d}"
        return Session(session_id=session_id, tenant=tenant, default_index=index)

    # ------------------------------------------------------------------
    # Submission / admission control
    # ------------------------------------------------------------------

    def submit(
        self,
        question: str,
        index: Optional[str] = None,
        *,
        tenant: Optional[str] = None,
        session: Optional[Session] = None,
        secondary: Sequence[str] = (),
        follow_up: bool = False,
        deadline_s: Optional[float] = None,
        request_id: str = "",
    ) -> QueryTicket:
        """Admit one query; returns a ticket whose future resolves to a
        :class:`ServedResult`.

        Raises :class:`Overloaded` when the queue or the tenant quota is
        full (load shedding — retry with backoff; ``retry_after_s`` on
        the exception is a machine-readable hint), :class:`ServiceClosed`
        after shutdown. ``follow_up=True`` plans against the session's
        previous answer's documents and bypasses both caches.
        ``deadline_s`` is an end-to-end wall-clock budget measured from
        admission: queue time, planning, and execution all count, and an
        expired query yields a typed partial result (or a typed
        :class:`~repro.lifecycle.DeadlineExceeded` if it never started).
        """
        if session is not None:
            tenant = session.tenant
            index = index or session.default_index
        tenant = tenant or "default"
        if index is None:
            raise ValueError("submit() needs an index (or a session with one)")
        if follow_up and session is None:
            raise ValueError("follow_up queries need a session")
        with self._cond:
            record = self._tenant_locked(tenant)
            record.submitted += 1
            self._m_submitted.inc()
            if self._closed:
                raise ServiceClosed("service is closed")
            if len(self._queue) >= self.config.max_queue_depth:
                record.rejected += 1
                self._m_rejected.inc()
                raise Overloaded(
                    f"queue full ({self.config.max_queue_depth} queries)",
                    reason="queue_full",
                    retry_after_s=self._retry_after_locked(),
                    queue_depth=len(self._queue),
                )
            if record.inflight >= record.quota.max_inflight:
                record.rejected += 1
                self._m_rejected.inc()
                raise Overloaded(
                    f"tenant {tenant!r} is at its quota "
                    f"({record.quota.max_inflight} inflight queries)",
                    reason="tenant_quota",
                    retry_after_s=self._retry_after_locked(),
                    tenant=tenant,
                )
            self._query_counter += 1
            ticket = QueryTicket(
                query_id=f"q{self._query_counter:06d}",
                question=question,
                index=index,
                tenant=tenant,
                session=session,
                secondary=tuple(secondary),
                follow_up=follow_up,
                deadline_s=deadline_s,
                request_id=request_id,
            )
            ticket._service = self
            record.inflight += 1
            self._queue.append(ticket)
            self._m_admitted.inc()
            depth = len(self._queue)
            if depth > self._peak_queue_depth:
                self._peak_queue_depth = depth
            self._g_queue_depth.set(depth)
            self._cond.notify()
        ticket._emit("admitted", queue_depth=depth)
        return ticket

    def query(
        self,
        question: str,
        index: Optional[str] = None,
        timeout: Optional[float] = None,
        **kwargs: Any,
    ) -> ServedResult:
        """Submit and block for the served result (convenience wrapper)."""
        return self.submit(question, index, **kwargs).result(timeout=timeout)

    def _retry_after_locked(self) -> float:
        """Backoff hint for shed queries: how long until a slot plausibly
        frees up, from the backlog ahead of the caller and the recent
        per-query latency EMA (0.5s floor before any query completes).
        Caller holds ``self._cond``."""
        backlog = len(self._queue) + self._active
        per_query = self._latency_ema_s or 0.5
        return round(max(0.05, backlog * per_query / self.config.max_workers), 3)

    def _cancel_queued(self, ticket: QueryTicket, reason: str) -> None:
        """Complete a cancelled ticket that is still waiting in the
        admission queue: remove it, release its slot, fail it typed.
        Running tickets are untouched — they observe their scope at the
        next cooperative checkpoint."""
        removed = False
        with self._cond:
            if ticket in self._queue:
                self._queue.remove(ticket)
                self._tenants[ticket.tenant].inflight -= 1
                self._g_queue_depth.set(len(self._queue))
                removed = True
                self._cond.notify_all()
        if removed:
            self._m_cancelled.inc()
            ticket._emit("cancelled", reason=reason)
            ticket.future.set_exception(
                QueryCancelled(
                    f"query {ticket.query_id} cancelled before it started"
                    + (f": {reason}" if reason else ""),
                    query_id=ticket.query_id,
                    reason=reason,
                )
            )

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------

    def _luna(self) -> Luna:
        """This worker thread's private Luna facade (lazily built).

        Rebuilt when the optimizer epoch rolls: each worker's optimizer
        is pinned to the epoch's frozen statistics snapshot, while the
        live store (shared) keeps accumulating observations.
        """
        with self._optimizer_lock:
            epoch = self._optimizer_epoch
            snapshot = self._stats_snapshot
        luna = getattr(self._luna_local, "luna", None)
        if luna is None or getattr(self._luna_local, "epoch", -1) != epoch:
            from ..optimizer import CostBasedOptimizer

            luna = Luna(
                self.context,
                planner_model=self.config.planner_model,
                policy=self.config.policy,
                error_policy=self.config.error_policy,
                stats_store=self.stats_store,
                optimizer=CostBasedOptimizer(
                    self.config.policy, stats=snapshot, registry=self.registry
                ),
            )
            self._luna_local.luna = luna
            self._luna_local.epoch = epoch
        return luna

    def optimizer_fingerprint(self) -> str:
        """The cache-key component carrying this epoch's optimizer
        decisions: policy name + frozen statistics fingerprint."""
        with self._optimizer_lock:
            return f"{self.config.policy}:{self._stats_snapshot.fingerprint()}"

    def refresh_optimizer(self) -> str:
        """Roll the optimizer epoch: re-snapshot the live statistics.

        Queries served after the refresh optimize against everything
        learned so far (and cache under the new fingerprint); queries
        in flight keep their epoch's snapshot. Returns the new
        fingerprint.
        """
        snapshot = self.stats_store.snapshot()
        with self._optimizer_lock:
            self._optimizer_epoch += 1
            self._stats_snapshot = snapshot
            return f"{self.config.policy}:{snapshot.fingerprint()}"

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    # Bounded wait: a missed notify (or a cancellation
                    # racing shutdown) can't wedge a worker forever.
                    self._cond.wait(timeout=0.5)
                if not self._queue:
                    return  # closed and drained
                ticket = self._queue.pop(0)
                self._active += 1
                self._g_queue_depth.set(len(self._queue))
                self._g_active.set(self._active)
            try:
                self._process(ticket)
            finally:
                with self._cond:
                    self._active -= 1
                    self._tenants[ticket.tenant].inflight -= 1
                    self._g_active.set(self._active)
                    self._cond.notify_all()

    def _process(self, ticket: QueryTicket) -> None:
        """Run one admitted query end to end; never raises."""
        started = time.perf_counter()
        scope = ticket.scope
        # Pre-start lifecycle check: queue time counts against the
        # budget, so a query whose deadline expired (or that was
        # cancelled) while queued fails typed without burning a worker.
        try:
            scope.check()
        except QueryCancelled as exc:
            self._m_cancelled.inc()
            ticket._emit("cancelled", reason=scope.cancel_reason)
            ticket.future.set_exception(exc)
            return
        except DeadlineExceeded as exc:
            self._fail_deadline(ticket, exc)
            return
        tracer = self.tracer
        serve_span: Optional[Span] = None
        if tracer is not None:
            serve_span = tracer.start_span(
                "serve:query",
                kind="serve",
                parent=None,
                tenant=ticket.tenant,
                session=ticket.session_id or "",
                question=ticket.question,
                index=ticket.index,
                query_id=ticket.query_id,
                request_id=ticket.request_id,
            )
        try:
            with attach_scope(scope):
                if tracer is not None and serve_span is not None:
                    with tracer.attach(serve_span):
                        served = self._serve(ticket, serve_span, started)
                else:
                    served = self._serve(ticket, None, started)
        except BaseException as exc:  # noqa: BLE001 - fail the ticket, not the worker
            if tracer is not None and serve_span is not None:
                tracer.finish(
                    serve_span,
                    status="error",
                    error=f"{type(exc).__name__}: {exc}",
                )
            if isinstance(exc, QueryCancelled):
                self._m_cancelled.inc()
                ticket._emit("cancelled", reason=scope.cancel_reason)
                ticket.future.set_exception(exc)
                return
            if isinstance(exc, DeadlineExceeded):
                self._fail_deadline(ticket, exc)
                return
            with self._accounts_lock:
                self.tenant(ticket.tenant).failed += 1
            self._m_failed.inc()
            ticket._emit("failed", error=f"{type(exc).__name__}: {exc}")
            ticket.future.set_exception(exc)
            return
        # A deadline that expired mid-execution under a non-fatal error
        # policy degrades operators instead of raising; surface that as a
        # typed-partial completion so callers and metrics can tell.
        if any("DeadlineExceeded" in err for err in served.result.trace.errors):
            served.deadline_exceeded = True
            self._m_deadline_exceeded.inc()
            ticket._emit(
                "deadline_degraded",
                budget_s=scope.deadline.budget_s if scope.deadline else 0.0,
            )
        if tracer is not None and serve_span is not None:
            serve_span.set_attributes(
                plan_cache=served.plan_cache,
                result_cache=served.result_cache,
                cost_usd=served.cost_usd,
                saved_usd=served.saved_usd,
            )
            tracer.finish(serve_span)
            served.serve_trace_id = serve_span.trace_id
        with self._accounts_lock:
            self.tenant(ticket.tenant).completed += 1
        self._m_completed.inc()
        self._h_latency.observe(served.latency_s * 1000.0)
        with self._cond:
            self._latency_ema_s = (
                served.latency_s
                if self._latency_ema_s == 0.0
                else 0.8 * self._latency_ema_s + 0.2 * served.latency_s
            )
        if ticket.session is not None:
            preview = repr(served.answer)
            ticket.session.record(
                SessionEntry(
                    question=ticket.question,
                    index=ticket.index,
                    answer_preview=preview[:64] + ("..." if len(preview) > 64 else ""),
                    plan_cache=served.plan_cache,
                    result_cache=served.result_cache,
                    cost_usd=served.cost_usd,
                    saved_usd=served.saved_usd,
                    trace_id=served.serve_trace_id,
                    supporting_documents=served.result.trace.supporting_documents(),
                )
            )
        ticket._emit("completed", answer=repr(served.answer)[:64])
        ticket.future.set_result(served)

    def _fail_deadline(self, ticket: QueryTicket, exc: DeadlineExceeded) -> None:
        """Terminal handling for a query whose budget ran out before any
        partial answer could be assembled."""
        if exc.retry_after_s <= 0.0:
            with self._cond:
                exc.retry_after_s = self._retry_after_locked()
        self._m_deadline_exceeded.inc()
        with self._accounts_lock:
            self.tenant(ticket.tenant).failed += 1
        self._m_failed.inc()
        ticket._emit(
            "failed",
            error=f"DeadlineExceeded: {exc}",
            retry_after_s=exc.retry_after_s,
        )
        ticket.future.set_exception(exc)

    # ------------------------------------------------------------------

    def _serve(
        self, ticket: QueryTicket, serve_span: Optional[Span], started: float
    ) -> ServedResult:
        luna = self._luna()
        catalog = self.context.catalog
        index_obj = catalog.get(ticket.index)
        secondary_objs = [catalog.get(name) for name in ticket.secondary]
        charges = {"cost": 0.0, "saved": 0.0}

        if ticket.follow_up:
            result = self._serve_follow_up(luna, ticket, index_obj, charges)
            plan_outcome = result_outcome = "bypass"
        else:
            plan_state = {"outcome": None}

            def compute_result() -> LunaResult:
                entry = self._obtain_plan(
                    luna, ticket, index_obj, secondary_objs, plan_state, charges
                )
                ticket._emit("executing")
                self._m_executions.inc()
                result = luna.execute_plan(
                    ticket.question, ticket.index, entry.hydrate()
                )
                self._charge_execution(ticket.tenant, result, charges)
                return result

            rkey = result_cache_key(
                ticket.question,
                index_obj,
                secondary_objs,
                optimizer_fingerprint=self.optimizer_fingerprint(),
            )
            # reelect_on: if the single-flight leader's query is
            # cancelled, surviving followers re-elect a new leader
            # instead of inheriting a cancellation that isn't theirs.
            result, result_outcome = self.result_cache.get_or_compute(
                rkey, compute_result, reelect_on=(QueryCancelled,)
            )
            if result_outcome == HIT:
                self._m_result_hits.inc()
                self._credit_result_reuse(ticket, result, charges)
            elif result_outcome == COALESCED:
                self._m_result_coalesced.inc()
                self._credit_result_reuse(ticket, result, charges)
            else:
                self._m_result_misses.inc()
            # On result reuse the plan phase never ran: the cached answer
            # implicitly reused the cached plan.
            plan_outcome = plan_state["outcome"] or result_outcome

        latency = time.perf_counter() - started
        return ServedResult(
            query_id=ticket.query_id,
            question=ticket.question,
            index=ticket.index,
            tenant=ticket.tenant,
            session_id=ticket.session_id,
            result=result,
            plan_cache=plan_outcome,
            result_cache=result_outcome,
            cost_usd=charges["cost"],
            saved_usd=charges["saved"],
            latency_s=latency,
            request_id=ticket.request_id,
        )

    def _obtain_plan(
        self,
        luna: Luna,
        ticket: QueryTicket,
        index_obj: Any,
        secondary_objs: List[Any],
        plan_state: Dict[str, Any],
        charges: Dict[str, float],
    ) -> _PlanEntry:
        """Plan-cache lookup with single-flight planning on a miss."""
        ticket._emit("planning")

        def plan_checked() -> LogicalPlan:
            plan = luna.planner.plan(
                ticket.question, index_obj, secondary=secondary_objs
            )
            # The plan cache only admits plans that pass the static
            # checks: a planner bypassed or stubbed out upstream cannot
            # poison the cache with a plan that explodes at execution.
            known = {index_obj.name: index_obj.schema}
            known.update({s.name: s.schema for s in secondary_objs})
            ensure_valid_plan(plan, schema=index_obj.schema, known_indexes=known)
            return plan

        def compute_plan() -> _PlanEntry:
            self._m_plans_computed.inc()
            tracer = self.tracer
            if tracer is None:
                plan = plan_checked()
                return _PlanEntry(plan_json=plan.to_json(), cost_usd=0.0, llm_calls=0)
            # Planning runs in its own trace: with single-flight, one
            # planner run serves many queries, so its spans can't belong
            # to any single query's trace. The serve span links to it.
            plan_span = tracer.start_span(
                "plan:serve",
                kind="plan",
                parent=None,
                question=ticket.question,
                index=ticket.index,
            )
            try:
                with tracer.attach(plan_span):
                    plan = plan_checked()
            except BaseException as exc:
                tracer.finish(
                    plan_span, status="error", error=f"{type(exc).__name__}: {exc}"
                )
                raise
            tracer.finish(plan_span)
            plan_cost = CostAccount.from_spans(
                tracer.trace_spans(plan_span.trace_id)
            )
            return _PlanEntry(
                plan_json=plan.to_json(),
                cost_usd=plan_cost.cost_usd,
                llm_calls=plan_cost.llm_calls,
                plan_trace_id=plan_span.trace_id,
            )

        pkey = plan_cache_key(
            ticket.question,
            index_obj,
            secondary_objs,
            optimizer_fingerprint=self.optimizer_fingerprint(),
        )
        entry, outcome = self.plan_cache.get_or_compute(
            pkey, compute_plan, reelect_on=(QueryCancelled,)
        )
        plan_state["outcome"] = outcome
        if outcome == MISS:
            self._m_plan_misses.inc()
            charges["cost"] += entry.cost_usd
            with self._accounts_lock:
                self.tenant(ticket.tenant).account.operator(
                    "(planning)"
                ).cost_usd += entry.cost_usd
        else:
            if outcome == HIT:
                self._m_plan_hits.inc()
            else:
                self._m_plan_coalesced.inc()
            ticket._emit("plan_cache_hit", outcome=outcome)
            if entry.cost_usd > 0:
                charges["saved"] += entry.cost_usd
                self._m_saved_usd.inc(entry.cost_usd)
                with self._accounts_lock:
                    self.tenant(ticket.tenant).account.record_saving(
                        "(plan-cache)", entry.cost_usd
                    )
        return entry

    def _charge_execution(
        self, tenant: str, result: LunaResult, charges: Dict[str, float]
    ) -> None:
        """Book an executed query's cost account to its tenant."""
        account = result.trace.cost
        if account is None:
            # Untraced context: synthesize a one-row account from the
            # execution trace's aggregate numbers.
            account = CostAccount()
            record = account.operator("(query)")
            record.cost_usd = result.trace.total_cost_usd()
            record.llm_calls = result.trace.total_llm_calls()
        charges["cost"] += account.cost_usd
        with self._accounts_lock:
            self.tenant(tenant).account.merge(account)

    def _credit_result_reuse(
        self, ticket: QueryTicket, result: LunaResult, charges: Dict[str, float]
    ) -> None:
        """Book a result-cache hit as dollars saved, not spent."""
        ticket._emit("result_cache_hit")
        cost = result.trace.cost
        saved = cost.cost_usd if cost is not None else result.trace.total_cost_usd()
        if saved > 0:
            charges["saved"] += saved
            self._m_saved_usd.inc(saved)
            with self._accounts_lock:
                self.tenant(ticket.tenant).account.record_saving(
                    "(result-cache)", saved
                )

    def _serve_follow_up(
        self,
        luna: Luna,
        ticket: QueryTicket,
        index_obj: Any,
        charges: Dict[str, float],
    ) -> LunaResult:
        """Plan against the session's previous answer's documents.

        Follow-ups are conversation-specific (their source is the prior
        answer's provenance), so they bypass both caches.
        """
        assert ticket.session is not None
        doc_ids = ticket.session.last_supporting_documents()
        if not doc_ids:
            raise ServingError(
                "follow-up needs a previous answer with document provenance"
            )
        ticket._emit("planning")
        self._m_plans_computed.inc()
        plan = luna.planner.plan(ticket.question, index_obj)
        for node in plan.nodes:
            if node.operation == "QueryIndex":
                node.operation = "FromDocuments"
                node.params = {"index": ticket.index, "doc_ids": list(doc_ids)}
                node.description = (
                    f"Start from the {len(doc_ids)} records of the previous answer"
                )
        plan.validate()
        ticket._emit("executing")
        self._m_executions.inc()
        result = luna.execute_plan(ticket.question, ticket.index, plan)
        self._charge_execution(ticket.tenant, result, charges)
        return result

    # ------------------------------------------------------------------
    # Lifecycle and status
    # ------------------------------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every admitted query has finished. Returns False
        on timeout (queries keep running)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while self._queue or self._active:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._cond.wait(timeout=remaining)
        return True

    def close(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Shut down. ``drain=True`` completes every admitted query
        first; ``drain=False`` fails queued-but-unstarted queries with
        :class:`ServiceClosed`. Either way no ticket's future is lost."""
        cancelled: List[QueryTicket] = []
        with self._cond:
            if not self._closed:
                self._closed = True
                if not drain:
                    cancelled = self._queue[:]
                    self._queue.clear()
                    for ticket in cancelled:
                        self._tenants[ticket.tenant].inflight -= 1
                        self._m_cancelled.inc()
                    self._g_queue_depth.set(0)
                self._cond.notify_all()
        for ticket in cancelled:
            ticket.scope.cancel("service closed")
            ticket._emit("cancelled")
            ticket.future.set_exception(
                ServiceClosed("service closed before this query started")
            )
        for worker in self._workers:
            worker.join(timeout=timeout)
        if self.config.optimizer_stats_path is not None:
            # Persist learned operator statistics across restarts.
            self.stats_store.save()
        if self._owned_cluster is not None:
            self._owned_cluster.close()
            if getattr(self.context, "cluster", None) is self._owned_cluster:
                self.context.cluster = None
            self._owned_cluster = None

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def stats(self) -> Dict[str, Any]:
        """Point-in-time service status: traffic, caches, tenants."""
        with self._cond:
            queue_depth = len(self._queue)
            active = self._active
            peak = self._peak_queue_depth
            tenants = {name: t.as_dict() for name, t in sorted(self._tenants.items())}
        payload: Dict[str, Any] = {
            "submitted": int(self._m_submitted.value()),
            "admitted": int(self._m_admitted.value()),
            "rejected": int(self._m_rejected.value()),
            "completed": int(self._m_completed.value()),
            "failed": int(self._m_failed.value()),
            "cancelled": int(self._m_cancelled.value()),
            "deadline_exceeded": int(self._m_deadline_exceeded.value()),
            "queue_depth": queue_depth,
            "peak_queue_depth": peak,
            "active_queries": active,
            "plans_computed": int(self._m_plans_computed.value()),
            "executions": int(self._m_executions.value()),
            "plan_cache": self.plan_cache.stats(),
            "result_cache": self.result_cache.stats(),
            "saved_usd": round(self._m_saved_usd.value(), 6),
            "tenants": tenants,
            "optimizer": {
                "policy": self.config.policy,
                "epoch": self._optimizer_epoch,
                "fingerprint": self.optimizer_fingerprint(),
                "stats_entries": len(self.stats_store),
            },
        }
        cluster = getattr(self.context, "cluster", None)
        if cluster is not None:
            payload["cluster"] = cluster.stats()
        return payload
