"""Serving sessions, tenants and quotas.

The paper frames Luna as a *conversational* service: users pose a
question, inspect the answer, and refine ("of those, how many were in
Alaska?"). A :class:`Session` is one such conversation — an ordered log
of served queries whose provenance enables follow-ups — owned by a
:class:`Tenant`, which carries the admission quota and the long-lived
:class:`~repro.observability.CostAccount` the service charges (and
credits cache savings to).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..observability.cost import CostAccount


@dataclass(frozen=True)
class TenantQuota:
    """Admission limits for one tenant.

    ``max_inflight`` bounds queued-plus-running queries; past it the
    service sheds the tenant's submissions with
    :class:`~repro.serving.service.Overloaded` so one noisy tenant can't
    monopolize the shared queue.
    """

    max_inflight: int = 8


@dataclass
class Tenant:
    """Per-tenant serving state: quota, traffic counters, cost ledger."""

    name: str
    quota: TenantQuota = field(default_factory=TenantQuota)
    #: Queries currently admitted (queued or running).
    inflight: int = 0
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    #: Everything this tenant's queries spent and saved, aggregated
    #: across queries by operator (see CostAccount.merge).
    account: CostAccount = field(default_factory=CostAccount)

    def __post_init__(self) -> None:
        if not self.account.trace_id:
            self.account.trace_id = f"tenant:{self.name}"

    def as_dict(self) -> Dict[str, Any]:
        """Flat status view (stable keys)."""
        return {
            "tenant": self.name,
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "inflight": self.inflight,
            "cost_usd": round(self.account.cost_usd, 6),
            "saved_usd": round(self.account.saved_usd, 6),
        }


@dataclass
class SessionEntry:
    """One served query as remembered by its session."""

    question: str
    index: str
    answer_preview: str
    plan_cache: str
    result_cache: str
    cost_usd: float
    saved_usd: float
    trace_id: str
    #: Document ids supporting the answer — the provenance follow-up
    #: queries start from.
    supporting_documents: List[str] = field(default_factory=list)


class Session:
    """One conversation: an append-only log of served queries.

    Thread-safe — concurrent queries may record into one session, and
    :meth:`last_supporting_documents` gives follow-ups a stable snapshot.
    """

    def __init__(self, session_id: str, tenant: str, default_index: Optional[str] = None):
        self.session_id = session_id
        self.tenant = tenant
        self.default_index = default_index
        self._lock = threading.Lock()
        self._entries: List[SessionEntry] = []

    def record(self, entry: SessionEntry) -> None:
        """Append one served query to the conversation."""
        with self._lock:
            self._entries.append(entry)

    def entries(self) -> List[SessionEntry]:
        """Snapshot of the conversation so far."""
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def last(self) -> Optional[SessionEntry]:
        """The most recent served query, if any."""
        with self._lock:
            return self._entries[-1] if self._entries else None

    def last_supporting_documents(self) -> List[str]:
        """Provenance of the latest answer that has any (for follow-ups)."""
        with self._lock:
            for entry in reversed(self._entries):
                if entry.supporting_documents:
                    return list(entry.supporting_documents)
        return []

    def render(self) -> str:
        """Human-readable conversation transcript."""
        lines = [f"session {self.session_id} (tenant {self.tenant})"]
        for i, entry in enumerate(self.entries()):
            provenance = []
            if entry.plan_cache != "miss":
                provenance.append(f"plan:{entry.plan_cache}")
            if entry.result_cache != "miss":
                provenance.append(f"result:{entry.result_cache}")
            suffix = f" [{', '.join(provenance)}]" if provenance else ""
            lines.append(
                f"  #{i} [{entry.index}] {entry.question} -> "
                f"{entry.answer_preview} "
                f"(${entry.cost_usd:.4f} spent, ${entry.saved_usd:.4f} saved)"
                f"{suffix}"
            )
        return "\n".join(lines)
