"""Exception hierarchy for the LLM runtime.

Mirrors the failure modes of hosted LLM APIs so that the retry/repair
machinery in :mod:`repro.llm.client` exercises realistic code paths.
"""

from __future__ import annotations


class LLMError(Exception):
    """Base class for all LLM runtime errors."""


class TransientLLMError(LLMError):
    """A retryable server-side failure (5xx, connection reset, timeout)."""


class RateLimitError(TransientLLMError):
    """Too many requests; retry after backing off."""

    def __init__(self, message: str = "rate limited", retry_after_s: float = 1.0):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class LLMTimeoutError(TransientLLMError):
    """A request exceeded its deadline. Retryable like any transient fault."""

    def __init__(self, message: str = "request timed out", timeout_s: float = 0.0):
        super().__init__(message)
        self.timeout_s = timeout_s


class CircuitOpenError(LLMError):
    """The circuit breaker is open; the request was rejected without being
    sent. Deliberately *not* a :class:`TransientLLMError`: the whole point
    of the breaker is to fail fast instead of retrying into a dead backend.
    """


class ContextWindowExceededError(LLMError):
    """The prompt does not fit in the model's context window.

    Not retryable — the caller must shrink the prompt. The RAG-scaling
    experiments (C1) rely on this surfacing when context packing overflows.
    """

    def __init__(self, prompt_tokens: int, context_window: int):
        super().__init__(
            f"prompt of {prompt_tokens} tokens exceeds context window "
            f"of {context_window} tokens"
        )
        self.prompt_tokens = prompt_tokens
        self.context_window = context_window


class MalformedOutputError(LLMError):
    """The model's output could not be parsed as the requested format."""

    def __init__(self, message: str, raw_output: str = ""):
        super().__init__(message)
        self.raw_output = raw_output


class UnknownModelError(LLMError):
    """The requested model name is not registered."""
