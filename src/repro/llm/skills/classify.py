"""The ``classify`` skill: choose one category for a document.

Backs schema enrichment (e.g. assigning a ``cause_category``) and the
sentiment analyses the paper's marketing use case describes. Categories
that name a known concept are scored through the lexicon; unknown
categories fall back to keyword overlap with the category name.
"""

from __future__ import annotations

from typing import Dict, List

from .. import knowledge
from .common import Noise


def run_classify(sections: Dict[str, str], noise: Noise) -> str:
    """Choose the best-matching category for the document."""
    categories = _parse_categories(sections.get("categories", ""))
    document = sections.get("document", "")
    if not categories:
        return ""
    scored = [(c, _score(c, document)) for c in categories]
    # Stable winner: highest score, ties broken by category order.
    best = max(scored, key=lambda pair: pair[1])[0]
    if noise.slips(0.5) and len(categories) > 1:
        alternatives = [c for c in categories if c != best]
        best = noise.choice(alternatives)
    return best


def _parse_categories(raw: str) -> List[str]:
    parts = [p.strip() for p in raw.replace("\n", ",").split(",")]
    return [p for p in parts if p]


def _score(category: str, document: str) -> float:
    concepts = knowledge.match_concepts(category)
    norm_cat = knowledge.normalize(category).replace(" ", "_")
    if norm_cat in knowledge.CONCEPT_KEYWORDS:
        concepts = list(dict.fromkeys(concepts + [norm_cat]))
    if concepts:
        return float(
            sum(1 for c in concepts if knowledge.text_matches_concept(document, c))
        )
    cat_words = set(knowledge.normalize(category).split())
    doc_words = set(knowledge.normalize(document).split())
    return len(cat_words & doc_words) / max(len(cat_words), 1) * 0.5
