"""The ``extract_properties`` skill: schema-driven field extraction.

Reproduces the behaviour shown in the paper's Figure 4, where
``extract_properties`` with a JSON schema pulls ``us_state_abbrev``,
``probable_cause`` and ``weather_related`` out of an NTSB report.

Degradation model: on a slip the model either drops a field (returns
null) or — more damagingly — hallucinates a plausible-but-wrong value,
mirroring the two dominant LLM extraction failure modes.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from .. import knowledge
from ..errors import MalformedOutputError
from .common import Noise, extract_field

#: Difficulty weights: booleans derived from concepts slip more often than
#: verbatim metadata-line copies.
_FIELD_DIFFICULTY = {"bool": 0.6, "boolean": 0.6, "string": 0.25, "int": 0.3,
                     "integer": 0.3, "float": 0.3, "number": 0.3}


def run_extract_properties(sections: Dict[str, str], noise: Noise) -> str:
    """Return a JSON object with one key per schema field."""
    try:
        schema: Dict[str, str] = json.loads(sections.get("schema", "{}"))
    except json.JSONDecodeError as exc:
        raise MalformedOutputError(f"unparseable schema section: {exc}") from exc
    document = sections.get("document", "")
    result: Dict[str, Any] = {}
    for field_name, field_type in schema.items():
        value = extract_field(field_name, str(field_type), document)
        weight = _FIELD_DIFFICULTY.get(str(field_type).lower(), 0.3)
        if noise.slips(weight):
            value = _degrade(field_name, str(field_type), value, noise)
        result[field_name] = value
    return json.dumps(result)


def _degrade(field_name: str, field_type: str, value: Any, noise: Noise) -> Any:
    """Produce an erroneous value for a field the model slipped on."""
    mode = noise.choice(["drop", "wrong", "wrong"])
    if mode == "drop":
        return None
    field_type = field_type.lower()
    if field_type in ("bool", "boolean"):
        return (not value) if isinstance(value, bool) else noise.choice([True, False])
    if field_type in ("int", "integer"):
        base = value if isinstance(value, int) else 0
        return base + noise.choice([-2, -1, 1, 2])
    if field_type in ("float", "number"):
        base = value if isinstance(value, (int, float)) else 0.0
        return round(base * noise.choice([0.5, 0.9, 1.1, 2.0]) + 1.0, 2)
    if "state" in field_name.lower():
        return noise.choice(sorted(knowledge.STATE_ABBREVS))
    if isinstance(value, str) and value:
        # Truncated extraction: the model grabbed only part of the span.
        words = value.split()
        return " ".join(words[: max(1, len(words) // 2)])
    return None
