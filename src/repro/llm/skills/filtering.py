"""The ``filter`` skill: yes/no semantic condition evaluation.

Backs ``llm_filter`` (Sycamore) and ``LlmFilter`` (Luna). The oracle
decision comes from the concept lexicon; noise flips verdicts with a
probability scaled by model quality, so cheap models produce visibly
noisier filters — the trade-off Luna's optimizer navigates (C4 bench).
"""

from __future__ import annotations

from typing import Dict

from ..knowledge import condition_holds
from .common import Noise

#: Per-document verdict difficulty. Clear-cut documents are easy for
#: instruction-tuned models; this weight puts sim-large near 99.4%
#: verdict accuracy, sim-medium near 98%, and sim-small near 96% — noisy
#: enough that cheap models visibly hurt exact counts over a corpus, as
#: the optimizer bench (C4) requires.
_FILTER_DIFFICULTY = 0.12


def run_filter(sections: Dict[str, str], noise: Noise) -> str:
    """Answer 'yes'/'no' for the condition against the document."""
    condition = sections.get("condition", "")
    document = sections.get("document", "")
    verdict = condition_holds(condition, document)
    if noise.slips(_FILTER_DIFFICULTY):
        verdict = not verdict
    return "yes" if verdict else "no"
