"""Task skills of the simulated LLM backend.

Each skill implements one prompt task (see :mod:`repro.llm.prompts`):
given the parsed prompt sections it produces the completion text a
competent model would return. Quality degradation is injected by the
caller (:class:`repro.llm.simulated.SimulatedLLM`) through the
:class:`~repro.llm.skills.common.Noise` helper passed to each skill.
"""

from .common import Noise
from .classify import run_classify
from .entities import run_extract_entities
from .extraction import run_extract_properties
from .filtering import run_filter
from .planning import run_plan_query
from .qa import run_answer_question
from .summarize import run_summarize, run_summarize_collection

SKILLS = {
    "extract_entities": run_extract_entities,
    "extract_properties": run_extract_properties,
    "filter": run_filter,
    "summarize": run_summarize,
    "summarize_collection": run_summarize_collection,
    "plan_query": run_plan_query,
    "answer_question": run_answer_question,
    "classify": run_classify,
}

__all__ = ["Noise", "SKILLS"]
