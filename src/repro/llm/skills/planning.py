"""The ``plan_query`` skill: natural language -> logical query plan.

This is the simulated stand-in for the planner LLM of §6: "Luna uses an
LLM to interpret a user question and decompose it to a DAG of data
processing operations ... The LLM generates the plan in JSON format".

The skill is a rule-based semantic parser over the question, constrained
to the operator vocabulary and data schema passed in the prompt (exactly
the information the real planner prompt carries). It emits a JSON list of
nodes; node ``i`` is referenced by other nodes through ``inputs`` and by
``Math`` expressions through ``#i``.

Like a real planner LLM it has failure modes: ambiguous questions can be
mapped to a plausible-but-unintended plan, and low-quality models slip on
filter placement or aggregation fields. The Luna accuracy benchmark (E2)
measures end-to-end correctness through these failure modes.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Optional, Tuple

from .. import knowledge
from .common import Noise

_PERCENT_RE = re.compile(
    r"what\s+percent(?:age)?\s+of\s+(?P<whole>.+?)\s+(?:were|was|are|is|had|involved)"
    r"\s+(?:due\s+to\s+|caused\s+by\s+|attributed\s+to\s+)?(?P<part>.+?)\s*\??$",
    re.IGNORECASE,
)
_COUNT_RE = re.compile(r"^\s*how\s+many\s+(?P<rest>.+?)\s*\??$", re.IGNORECASE)
_TOP_GROUP_RE = re.compile(
    r"which\s+(?P<n>\d+|two|three|four|five)?\s*(?P<group>\w+)\s+(?:had|has|saw|recorded)\s+the\s+(?P<dir>most|fewest|highest|lowest)"
    r"(?:\s+number\s+of)?\s+(?P<rest>.+?)\s*\??$",
    re.IGNORECASE,
)

_NUMBER_WORDS = {"two": 2, "three": 3, "four": 4, "five": 5}
_AGG_RE = re.compile(
    r"what\s+(?:was|is|were)\s+the\s+(?P<func>total|average|avg|mean|sum|maximum|max|minimum|min|median)\s+"
    r"(?P<field>[\w\s]+?)\s+(?:of|for|across)\s+(?P<rest>.+?)\s*\??$",
    re.IGNORECASE,
)
_GROUP_BY_RE = re.compile(
    r"\s*,?\s*(?:per|by|for each|broken down by|grouped by)\s+(?P<group>\w+)\s*$",
    re.IGNORECASE,
)
_YEAR_RANGE_RE = re.compile(
    r"\b(?:between|from)\s+(?P<a>19\d{2}|20\d{2})\s+(?:and|to|through)\s+(?P<b>19\d{2}|20\d{2})\b",
    re.IGNORECASE,
)
_LIST_RE = re.compile(
    r"^\s*(?:list|name|which|what)\s+(?:are\s+the\s+|the\s+)?(?P<what>[\w\s]+?)"
    r"\s+(?:of\s+)?(?:that|whose|with|where|which|who)\s+(?P<rest>.+?)\s*\??$",
    re.IGNORECASE,
)
_SUMMARIZE_RE = re.compile(
    r"^\s*summariz?e\s+(?P<rest>.+?)\s*\.?\s*$", re.IGNORECASE
)
_YEAR_RE = re.compile(r"\b(19\d{2}|20\d{2})\b")

_FUNC_ALIASES = {
    "total": "sum", "sum": "sum", "average": "avg", "avg": "avg", "mean": "avg",
    "maximum": "max", "max": "max", "minimum": "min", "min": "min", "median": "median",
}

#: Subject nouns that denote the dataset rather than a condition.
_DATASET_NOUNS = frozenset(
    """incident incidents report reports accident accidents document documents
    record records company companies filing filings earnings those these
    them of""".split()
)


def run_plan_query(sections: Dict[str, str], noise: Noise) -> str:
    """Parse the question into a JSON logical plan."""
    question = sections.get("question", "").strip()
    schema = _parse_schema(sections.get("schema", "{}"))
    allowed = _parse_operators(sections.get("operators", ""))
    secondary = _parse_secondary(sections.get("secondary", ""))
    builder = _PlanBuilder(schema, allowed)

    # Data-integration pattern (paper §1): "... and their competitors"
    # joins the unstructured analysis against a structured database.
    question, join_request = _peel_join_suffix(question, secondary, builder)

    parsed = (
        _try_percentage(question, builder)
        or _try_top_group(question, builder)
        or _try_aggregate(question, builder)
        or _try_count(question, builder)
        or _try_summarize(question, builder)
        or _try_superlative_list(question, builder)
        or _try_list(question, builder)
    )
    if not parsed:
        _fallback_rag(question, builder)

    if join_request is not None and builder.supports("Join"):
        _append_join(builder, *join_request)

    plan = builder.nodes
    plan = _maybe_misplan(plan, noise)
    return json.dumps(plan)


# ----------------------------------------------------------------------
# Prompt-section parsing
# ----------------------------------------------------------------------


def _parse_schema(raw: str) -> Dict[str, Any]:
    try:
        schema = json.loads(raw)
    except json.JSONDecodeError:
        schema = {}
    if not isinstance(schema, dict):
        schema = {}
    schema.setdefault("index", "default")
    schema.setdefault("fields", {})
    return schema


def _parse_operators(raw: str) -> List[str]:
    names = re.findall(r"\b([A-Z][A-Za-z]+)\b", raw)
    return list(dict.fromkeys(names))


def _parse_secondary(raw: str) -> List[Dict[str, Any]]:
    """Secondary data sources available for joins, if the prompt lists any."""
    if not raw.strip():
        return []
    try:
        payload = json.loads(raw)
    except json.JSONDecodeError:
        return []
    if isinstance(payload, dict):
        payload = [payload]
    return [p for p in payload if isinstance(p, dict) and "index" in p]


_JOIN_SUFFIX_RE = re.compile(
    r"^(?P<base>.+?),?\s+(?:and|along with|together with)\s+(?:list\s+|show\s+)?their\s+"
    r"(?P<noun>[a-z_ ]+?)\s*[.?]*\s*$",
    re.IGNORECASE,
)


def _peel_join_suffix(
    question: str, secondary: List[Dict[str, Any]], builder: _PlanBuilder
) -> tuple:
    """Split "... and their <noun>" when a secondary source can serve it.

    Returns (remaining question, join_request or None); the join request
    is (secondary index name, join key field, target field).
    """
    match = _JOIN_SUFFIX_RE.match(question.strip())
    if match is None or not secondary:
        return question, None
    noun = match.group("noun").strip().lower().replace(" ", "_")
    primary_fields = set(builder.schema.get("fields", {}))
    for source in secondary:
        fields = set(source.get("fields", {}))
        target = _matching_field(noun, fields)
        if target is None:
            continue
        join_keys = sorted(
            f
            for f in primary_fields & fields
            if f.lower() in ("company", "ticker", "report_id", "name", "id", "state")
        )
        if not join_keys:
            join_keys = sorted(primary_fields & (fields - {target}))
        if not join_keys:
            continue
        return match.group("base"), (str(source["index"]), join_keys[0], target)
    return question, None


def _matching_field(noun: str, fields: set) -> Optional[str]:
    singular = noun.rstrip("s")
    for field in sorted(fields):
        lowered = field.lower()
        if noun in lowered or singular in lowered:
            return field
    return None


def _append_join(builder: _PlanBuilder, index: str, key: str, target: str) -> None:
    """Join the current plan tail against a secondary index."""
    left = len(builder.nodes) - 1
    # Joins need document sets: if the plan ended with a projection, join
    # from the node the projection read.
    if builder.nodes[left]["operation"] == "Project":
        left = builder.nodes[left]["inputs"][0]
    right = builder.add(
        "QueryIndex", f"Read the '{index}' database", [], index=index, query=None
    )
    joined = builder.add(
        "Join",
        f"Join on {key} against '{index}'",
        [left, right],
        left_on=key,
        right_on=key,
    )
    builder.add(
        "Project",
        f"List each {key} with its {target}",
        [joined],
        fields=[key, f"right.{target}"],
    )


# ----------------------------------------------------------------------
# Plan assembly
# ----------------------------------------------------------------------


class _PlanBuilder:
    """Accumulates plan nodes, constrained to the allowed operator set."""

    def __init__(self, schema: Dict[str, Any], allowed: List[str]):
        self.schema = schema
        self.allowed = allowed or None  # None -> no restriction information
        self.nodes: List[Dict[str, Any]] = []

    def supports(self, operation: str) -> bool:
        """True when the operator is in the allowed vocabulary."""
        return self.allowed is None or operation in self.allowed

    def add(self, operation: str, description: str, inputs: List[int], **fields: Any) -> int:
        """Append a node and return its index."""
        node: Dict[str, Any] = {
            "operation": operation,
            "description": description,
            "inputs": inputs,
        }
        node.update(fields)
        self.nodes.append(node)
        return len(self.nodes) - 1

    def scan(self, query: Optional[str] = None) -> int:
        """Add the plan's QueryIndex source node."""
        index = self.schema.get("index", "default")
        description = f"Read all records from the '{index}' index"
        if query:
            description = f"Retrieve records matching '{query}' from '{index}'"
        return self.add("QueryIndex", description, [], index=index, query=query)

    def field_of_kind(self, *keywords: str) -> Optional[str]:
        """Schema field best matching the keywords.

        Most keyword hits win; ties break toward the field with fewer
        unmatched name tokens, so "revenue" resolves to ``revenue_musd``
        rather than ``revenue_growth_pct``.
        """
        best: Optional[str] = None
        best_score = 0.0
        for name in self.schema.get("fields", {}):
            lowered = name.lower()
            hits = sum(1 for kw in keywords if kw and kw.lower() in lowered)
            if hits == 0:
                continue
            extra_tokens = max(len(re.split(r"[_\s]+", lowered)) - hits, 0)
            score = hits - 0.1 * extra_tokens
            if score > best_score:
                best = name
                best_score = score
        return best

    def apply_conditions(self, source: int, conditions: str) -> int:
        """Chain Basic/Llm filters for each condition clause onto ``source``."""
        current = source
        for clause in _split_clauses(conditions):
            current = self._apply_clause(current, clause)
        return current

    def _apply_clause(self, source: int, clause: str) -> int:
        clause = clause.strip()
        if not clause or _is_dataset_noun_phrase(clause):
            return source

        range_match = _YEAR_RANGE_RE.search(clause)
        year_field = self.field_of_kind("year", "date")
        if range_match and year_field and self.supports("BasicFilter"):
            low, high = sorted((int(range_match.group("a")), int(range_match.group("b"))))
            source = self.add(
                "BasicFilter",
                f"Keep records with {year_field} >= {low}",
                [source],
                field=year_field,
                op="ge",
                value=low,
            )
            source = self.add(
                "BasicFilter",
                f"Keep records with {year_field} <= {high}",
                [source],
                field=year_field,
                op="le",
                value=high,
            )
            clause = _YEAR_RANGE_RE.sub(" ", clause)
            clause = re.sub(r"\b(in|during|of)\s*$", "", clause.strip())
            if not clause.strip() or _is_dataset_noun_phrase(clause):
                return source

        year_match = _YEAR_RE.search(clause)
        if year_match and year_field and self.supports("BasicFilter"):
            year = int(year_match.group(1))
            value: Any = year
            if "date" in year_field.lower() and "year" not in year_field.lower():
                # Filter dates by string prefix on the ISO year.
                source = self.add(
                    "BasicFilter",
                    f"Keep records whose {year_field} falls in {year}",
                    [source],
                    field=year_field,
                    op="contains",
                    value=str(year),
                )
            else:
                source = self.add(
                    "BasicFilter",
                    f"Keep records with {year_field} = {year}",
                    [source],
                    field=year_field,
                    op="eq",
                    value=value,
                )
            clause = _YEAR_RE.sub(" ", clause)
            clause = re.sub(r"\b(in|during|of)\s*$", "", clause.strip())
            if not clause.strip() or _is_dataset_noun_phrase(clause):
                return source

        state = _state_in_clause(clause)
        state_field = self.field_of_kind("state")
        if state is not None and state_field and self.supports("BasicFilter"):
            source = self.add(
                "BasicFilter",
                f"Keep records located in {state}",
                [source],
                field=state_field,
                op="eq",
                value=state,
            )
            clause = _strip_location(clause)
            if not clause or _is_dataset_noun_phrase(clause):
                return source

        sector = _sector_in_clause(clause)
        sector_field = self.field_of_kind("sector", "industry")
        if sector is not None and sector_field and self.supports("BasicFilter"):
            source = self.add(
                "BasicFilter",
                f"Keep records in the {sector} sector",
                [source],
                field=sector_field,
                op="eq",
                value=sector,
            )
            clause = _strip_sector(clause)
            if not clause or _is_dataset_noun_phrase(clause):
                return source

        if self.supports("LlmFilter"):
            return self.add(
                "LlmFilter",
                f"Semantically keep records that are {clause}",
                [source],
                condition=clause,
            )
        return source


def _split_clauses(conditions: str) -> List[str]:
    # "caused by wind in Alaska in 2023" -> condition + location + year.
    text = conditions.strip().rstrip("?.")
    clauses_first: List[str] = []
    # Year ranges contain "and"; peel them whole before the and-split.
    range_match = _YEAR_RANGE_RE.search(text)
    if range_match is not None:
        clauses_first.append(range_match.group(0))
        text = (text[: range_match.start()] + " " + text[range_match.end():]).strip()
        text = re.sub(r"\b(happened|occurred|took place|in|during)\s*$", "", text).strip()
        if not text:
            return clauses_first
    parts = clauses_first + re.split(r"\s+and\s+|,\s*", text, flags=re.IGNORECASE)
    clauses: List[str] = []
    for part in parts:
        if _YEAR_RANGE_RE.search(part):
            # Keep year ranges intact; _apply_clause turns them into a
            # ge/le filter pair.
            clauses.append(part)
            continue
        # Peel trailing "in <year>" / "in <State>" into their own clauses.
        year = _YEAR_RE.search(part)
        state = _state_in_clause(part)
        core = part
        if year:
            clauses.append(year.group(1))
            core = core.replace(year.group(1), " ")
            core = re.sub(r"\b(in|during)\s*$", " ", core.strip())
        if state:
            match = re.search(
                r"\bin\s+((?:[A-Z][a-z]+)(?:\s+[A-Z][a-z]+)?)", core
            )
            if match:
                clauses.append(f"in {match.group(1)}")
                core = core.replace(match.group(0), " ")
        core = core.strip()
        if core:
            clauses.append(core)
    return clauses


def _is_dataset_noun_phrase(clause: str) -> bool:
    words = knowledge.normalize(clause).split()
    meaningful = [w for w in words if w not in ("the", "all", "these", "those")]
    return bool(meaningful) and all(w in _DATASET_NOUNS for w in meaningful)


def _state_in_clause(clause: str) -> Optional[str]:
    match = re.search(r"\bin\s+((?:[A-Z][a-z]+)(?:\s+[A-Z][a-z]+)?)", clause)
    if match and match.group(1) in knowledge.US_STATES:
        return knowledge.US_STATES[match.group(1)]
    return None


def _sector_in_clause(clause: str) -> Optional[str]:
    match = re.search(r"\bin\s+the\s+([\w& -]+?)\s+(?:sector|market|industry)", clause, re.IGNORECASE)
    if match:
        return match.group(1).strip()
    return None


def _strip_location(clause: str) -> str:
    """Remove an 'in <State>' phrase whose state was turned into a filter."""
    stripped = re.sub(
        r"\bin\s+(?:[A-Z][a-z]+)(?:\s+[A-Z][a-z]+)?\b", " ", clause, count=1
    )
    return " ".join(stripped.split())


def _strip_sector(clause: str) -> str:
    """Remove an 'in the <X> sector/market' phrase turned into a filter."""
    stripped = re.sub(
        r"\bin\s+the\s+[\w& -]+?\s+(?:sector|market|industry)\b",
        " ",
        clause,
        count=1,
        flags=re.IGNORECASE,
    )
    return " ".join(stripped.split())


# ----------------------------------------------------------------------
# Question templates
# ----------------------------------------------------------------------


def _try_percentage(question: str, builder: _PlanBuilder) -> bool:
    match = _PERCENT_RE.search(question.strip())
    if match is None:
        return False
    whole, part = match.group("whole"), match.group("part")
    base = builder.scan()
    denom_src = builder.apply_conditions(base, whole)
    denom = builder.add("Count", "Count the matching records", [denom_src])
    numer_src = builder.apply_conditions(denom_src, part)
    numer = builder.add("Count", "Count the subset of interest", [numer_src])
    builder.add(
        "Math",
        "Compute the percentage",
        [denom, numer],
        expression=f"100 * #{numer} / #{denom}",
    )
    return True


def _try_count(question: str, builder: _PlanBuilder) -> bool:
    match = _COUNT_RE.search(question)
    if match is None:
        return False
    rest = match.group("rest")
    rest = re.sub(
        r"\b(caused by|due to|attributed to|involving|involved|that involved|"
        r"that were|were|was|are|is|happened|occurred|took place)\b",
        " ",
        rest,
        flags=re.IGNORECASE,
    )
    rest = " ".join(rest.split())
    base = builder.scan()
    filtered = builder.apply_conditions(base, rest)
    builder.add("Count", "Count the matching records", [filtered])
    return True


def _try_top_group(question: str, builder: _PlanBuilder) -> bool:
    match = _TOP_GROUP_RE.search(question)
    if match is None:
        return False
    group_noun = match.group("group").lower()
    direction = match.group("dir").lower()
    rest = match.group("rest")
    n_raw = (match.group("n") or "").strip().lower()
    k = _NUMBER_WORDS.get(n_raw, int(n_raw) if n_raw.isdigit() else 1)
    field = builder.field_of_kind(group_noun) or builder.field_of_kind(
        group_noun.rstrip("s")
    )
    if field is None:
        return False
    base = builder.scan()
    filtered = builder.apply_conditions(base, rest)
    builder.add(
        "TopK",
        f"Find the top {k} {group_noun} by {direction} matching records",
        [filtered],
        field=field,
        k=k,
        descending=direction in ("most", "highest"),
    )
    return True


def _try_aggregate(question: str, builder: _PlanBuilder) -> bool:
    match = _AGG_RE.search(question)
    if match is None:
        return False
    func = _FUNC_ALIASES.get(match.group("func").lower())
    field_phrase = match.group("field").strip().lower()
    rest = match.group("rest")
    if func is None:
        return False
    group_by = None
    group_match = _GROUP_BY_RE.search(rest)
    if group_match is not None:
        group_by = builder.field_of_kind(group_match.group("group").lower())
        if group_by is not None:
            rest = rest[: group_match.start()].strip()
    field = builder.field_of_kind(*field_phrase.split())
    if field is None:
        return False
    base = builder.scan()
    filtered = builder.apply_conditions(base, rest)
    params = {"func": func, "field": field}
    description = f"Compute the {func} of {field} over the matching records"
    if group_by is not None:
        params["group_by"] = group_by
        description += f", grouped by {group_by}"
    builder.add("Aggregate", description, [filtered], **params)
    return True


def _try_summarize(question: str, builder: _PlanBuilder) -> bool:
    match = _SUMMARIZE_RE.search(question)
    if match is None:
        return False
    rest = match.group("rest")
    rest = re.sub(
        r"\b(involving|involved|about|regarding|related to|concerning)\b",
        " ",
        rest,
        flags=re.IGNORECASE,
    )
    base = builder.scan()
    filtered = builder.apply_conditions(base, rest)
    builder.add("Summarize", "Summarize the matching records", [filtered])
    return True


_SUPERLATIVE_RE = re.compile(
    r"^\s*(?:list|name|show|what are|which are)\s+the\s+"
    r"(?P<sup>fastest growing|slowest growing|largest|biggest|smallest|top|"
    r"most profitable|least profitable)\s+"
    r"(?P<what>[\w\s]+?)(?P<ctx>\s+in\s+.+?)?\s*[.?]*\s*$",
    re.IGNORECASE,
)

#: superlative -> (field keywords, descending order)
_SUPERLATIVES = {
    "fastest growing": (("growth",), True),
    "slowest growing": (("growth",), False),
    "largest": (("revenue", "size", "total"), True),
    "biggest": (("revenue", "size", "total"), True),
    "smallest": (("revenue", "size", "total"), False),
    "top": (("revenue", "growth"), True),
    "most profitable": (("eps", "profit", "income"), True),
    "least profitable": (("eps", "profit", "income"), False),
}


def _try_superlative_list(question: str, builder: _PlanBuilder, k: int = 5) -> bool:
    """"List the fastest growing companies in the BNPL market" (paper §1)."""
    match = _SUPERLATIVE_RE.match(question)
    if match is None:
        return False
    keywords, descending = _SUPERLATIVES[match.group("sup").lower()]
    rank_field = builder.field_of_kind(*keywords)
    name_field = builder.field_of_kind("company", "name", "title", "id")
    if rank_field is None or name_field is None:
        return False
    base = builder.scan()
    filtered = base
    context_phrase = match.group("ctx") or ""
    if context_phrase.strip():
        filtered = builder.apply_conditions(base, context_phrase.strip())
    ordered = builder.add(
        "Sort",
        f"Order by {rank_field} ({'descending' if descending else 'ascending'})",
        [filtered],
        field=rank_field,
        descending=descending,
    )
    limited = builder.add("Limit", f"Keep the top {k}", [ordered], k=k)
    builder.add(
        "Project",
        f"List the {name_field} of the top records",
        [limited],
        fields=[name_field],
    )
    return True


def _try_list(question: str, builder: _PlanBuilder) -> bool:
    match = _LIST_RE.search(question)
    if match is None:
        return False
    what = match.group("what").strip().lower()
    rest = match.group("rest")
    # "companies whose CEO recently changed" -> project the name field.
    target_field = None
    for noun in what.split():
        noun = noun.rstrip("s")
        if noun in _DATASET_NOUNS or noun in ("company", "incident"):
            target_field = builder.field_of_kind("name", "company", "title", "id")
            break
        candidate = builder.field_of_kind(noun)
        if candidate:
            target_field = candidate
            break
    if target_field is None:
        target_field = builder.field_of_kind("name", "company", "title", "id")
    if target_field is None:
        return False
    base = builder.scan()
    filtered = builder.apply_conditions(base, rest)
    builder.add(
        "Project",
        f"List the {target_field} of the matching records",
        [filtered],
        fields=[target_field],
    )
    return True


def _fallback_rag(question: str, builder: _PlanBuilder) -> None:
    """Point questions fall back to retrieve-and-summarize."""
    base = builder.scan(query=question)
    top = builder.add("Limit", "Keep the most relevant records", [base], k=5)
    builder.add(
        "Summarize",
        "Answer from the retrieved records",
        [top],
        question=question,
    )


# ----------------------------------------------------------------------
# Planner noise
# ----------------------------------------------------------------------


def _maybe_misplan(plan: List[Dict[str, Any]], noise: Noise) -> List[Dict[str, Any]]:
    """Inject a planner slip: drop a filter or garble a condition.

    Weight is low — planner prompts are few and high-stakes, and the paper
    attributes Luna's misses mostly to *ambiguity*, which the template
    parser reproduces structurally, not to random noise.
    """
    if not noise.slips(0.3):
        return plan
    filters = [i for i, n in enumerate(plan) if n["operation"] in ("LlmFilter", "BasicFilter")]
    if not filters:
        return plan
    victim = noise.choice(filters)
    node = plan[victim]
    if node["operation"] == "LlmFilter" and not noise.slips(0.5):
        # Over-generalize the condition (wind -> weather), a classic
        # misreading of user intent.
        concepts = knowledge.match_concepts(node.get("condition", ""))
        if "wind" in concepts:
            node = dict(node, condition="caused by weather")
            plan = plan[:victim] + [node] + plan[victim + 1 :]
            return plan
    # Drop the filter entirely, splicing its input through to consumers.
    source = node["inputs"][0] if node["inputs"] else None
    if source is None:
        return plan
    new_plan = []
    for i, n in enumerate(plan):
        if i == victim:
            new_plan.append(dict(n, operation="Identity", description="(no-op)"))
            continue
        new_plan.append(dict(n, inputs=[source if j == victim else j for j in n["inputs"]]))
    return new_plan
