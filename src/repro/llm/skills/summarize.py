"""Summarization skills: single-document and collection-level.

The simulated summarizer is extractive: it scores sentences by content
density (numbers, domain keywords, position) and returns the top ones in
document order. Collection summarization concatenates per-document key
sentences and prefixes a coverage line, which keeps the output auditable
— a grader can check that the facts in the summary exist in the input.
"""

from __future__ import annotations

import re
from typing import Dict, List

from .. import knowledge
from .common import Noise

_SENTENCE_RE = re.compile(r"(?<=[.!?])\s+")

_KEY_TERMS = frozenset(
    kw
    for keywords in knowledge.CONCEPT_KEYWORDS.values()
    for kw in keywords
    if " " not in kw
)


def _split_sentences(text: str) -> List[str]:
    flat = " ".join(text.split())
    if not flat:
        return []
    return [s.strip() for s in _SENTENCE_RE.split(flat) if s.strip()]


def _score_sentence(sentence: str, position: int, total: int) -> float:
    words = knowledge.normalize(sentence).split()
    if not words:
        return 0.0
    keyword_hits = sum(1 for w in words if w in _KEY_TERMS)
    has_number = 1.0 if re.search(r"\d", sentence) else 0.0
    # Lead bias: openers usually carry the thesis of a report section.
    lead_bonus = 1.0 - (position / max(total, 1)) * 0.5
    return keyword_hits * 2.0 + has_number + lead_bonus


def summarize_text(text: str, max_sentences: int = 3) -> str:
    """Deterministic extractive summary of ``text``."""
    sentences = _split_sentences(text)
    if not sentences:
        return ""
    scored = sorted(
        range(len(sentences)),
        key=lambda i: _score_sentence(sentences[i], i, len(sentences)),
        reverse=True,
    )
    chosen = sorted(scored[:max_sentences])
    return " ".join(sentences[i] for i in chosen)


def run_summarize(sections: Dict[str, str], noise: Noise) -> str:
    """Extractive summary of one document."""
    document = sections.get("document", "")
    max_sentences = _parse_max_sentences(sections, default=3)
    summary = summarize_text(document, max_sentences=max_sentences)
    if noise.slips(0.3) and summary:
        # A sloppy model over-compresses, losing tail facts.
        summary = _split_sentences(summary)[0]
    return summary


def run_summarize_collection(sections: Dict[str, str], noise: Noise) -> str:
    """Per-document synthesis across a document collection."""
    documents = sections.get("documents", "")
    parts = [p.strip() for p in documents.split("\n---\n") if p.strip()]
    max_sentences = _parse_max_sentences(sections, default=1)
    lines = [f"Synthesis of {len(parts)} documents:"]
    for part in parts:
        summary = summarize_text(part, max_sentences=max_sentences)
        if summary:
            lines.append(f"- {summary}")
    if noise.slips(0.3) and len(lines) > 2:
        # A sloppy model silently drops a source from the synthesis.
        lines.pop(noise.rng.randrange(1, len(lines)))
    return "\n".join(lines)


def _parse_max_sentences(sections: Dict[str, str], default: int) -> int:
    raw = sections.get("max_sentences", "").strip()
    if raw.isdigit() and int(raw) > 0:
        return int(raw)
    return default
