"""The ``answer_question`` skill: grounded QA over retrieved context.

This backs the RAG baseline's generation step. Crucially, it is *honest*
about grounding: the answer is synthesised only from the supplied context
passages. That is exactly why the RAG baseline fails on sweep-and-harvest
questions in the C1/C2 benchmarks — when the relevant facts are not in
the retrieved snippets, no amount of generation can recover them, which
is the paper's central argument (§2).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from .. import knowledge
from .common import Noise
from .summarize import summarize_text

_DONT_KNOW = "I do not know based on the provided context."


def run_answer_question(sections: Dict[str, str], noise: Noise) -> str:
    """Answer the question from the provided context only."""
    question = sections.get("question", "")
    context = sections.get("context", "")
    passages = [p.strip() for p in context.split("\n---\n") if p.strip()]
    if not passages:
        return _DONT_KNOW

    answer = _answer(question, passages)
    if answer is None:
        return _DONT_KNOW
    if noise.slips(0.4):
        answer = _degrade_answer(answer, passages, noise)
    return answer


def _answer(question: str, passages: List[str]) -> Optional[str]:
    norm_q = knowledge.normalize(question)
    joined = "\n".join(passages)

    if _is_counting_question(norm_q):
        # A grounded model can only count what it can see: the number of
        # matching retrieved passages. This under-counts whenever the
        # corpus has more matches than the retriever returned.
        concepts = knowledge.match_concepts(question)
        if concepts:
            matches = sum(
                1
                for p in passages
                if all(knowledge.text_matches_concept(p, c) for c in concepts)
            )
        else:
            matches = sum(
                1 for p in passages if knowledge.condition_holds(question, p)
            )
        return str(matches)

    if _is_percentage_question(norm_q):
        parts = _split_percentage_question(question)
        if parts is not None:
            whole_cond, part_cond = parts
            if knowledge.match_concepts(whole_cond):
                whole = [p for p in passages if knowledge.condition_holds(whole_cond, p)]
            else:
                # "percent of incidents ..." — the whole is the dataset.
                whole = list(passages)
            part = [p for p in whole if knowledge.condition_holds(part_cond, p)]
            if not whole:
                return None
            return f"{100.0 * len(part) / len(whole):.1f}%"

    if norm_q.startswith(("which state", "what state")):
        counts: Dict[str, int] = {}
        for passage in passages:
            state = knowledge.find_state(passage)
            if state is not None:
                counts[state] = counts.get(state, 0) + 1
        if counts:
            return max(sorted(counts), key=lambda s: counts[s])
        return None

    # Point lookup: find the passage most relevant to the question and
    # extract the sentence that best covers the question's content words.
    best = _most_relevant_passage(norm_q, passages)
    if best is None:
        return None
    sentence = _best_sentence(norm_q, best)
    if sentence is None:
        return summarize_text(best, max_sentences=1) or None
    return sentence


def _is_counting_question(norm_q: str) -> bool:
    return norm_q.startswith("how many") or " number of " in f" {norm_q} "


def _is_percentage_question(norm_q: str) -> bool:
    return "percent" in norm_q or "%" in norm_q


def _split_percentage_question(question: str) -> Optional[tuple]:
    match = re.search(
        r"percent(?:age)?\s+of\s+(.+?)\s+(?:were|are|was|is)\s+(.+?)\??$",
        question,
        re.IGNORECASE,
    )
    if match is None:
        return None
    return match.group(1), match.group(2)


def _most_relevant_passage(norm_q: str, passages: List[str]) -> Optional[str]:
    q_words = set(norm_q.split())
    best, best_score = None, 0
    for passage in passages:
        p_words = set(knowledge.normalize(passage).split())
        score = len(q_words & p_words)
        if score > best_score:
            best, best_score = passage, score
    return best


def _best_sentence(norm_q: str, passage: str) -> Optional[str]:
    q_words = {w for w in norm_q.split() if len(w) > 3}
    best, best_score = None, 0
    for sentence in re.split(r"(?<=[.!?])\s+", passage):
        s_words = set(knowledge.normalize(sentence).split())
        score = len(q_words & s_words)
        if score > best_score:
            best, best_score = sentence.strip(), score
    return best


def _degrade_answer(answer: str, passages: List[str], noise: Noise) -> str:
    """A slipping model garbles numbers or drifts off-passage."""
    number = re.search(r"-?\d+(?:\.\d+)?", answer)
    if number is not None:
        wrong = float(number.group()) + noise.choice([-2, -1, 1, 2])
        if wrong == int(wrong):
            wrong_text = str(int(wrong))
        else:
            wrong_text = f"{wrong:.1f}"
        return answer[: number.start()] + wrong_text + answer[number.end() :]
    other = noise.choice(passages)
    return summarize_text(other, max_sentences=1) or answer
