"""Shared helpers for simulated-LLM skills: noise injection and field
extraction from rendered document text.
"""

from __future__ import annotations

import random
import re
from typing import Any, List, Optional

from .. import knowledge


class Noise:
    """Deterministic error injection scaled by model quality.

    A model of quality ``q`` makes a mistake on a unit-weight decision with
    probability ``1 - q``. The RNG is seeded per-call from the (model,
    prompt, seed) triple, so identical calls always fail — or succeed —
    identically, which keeps tests and benchmarks reproducible.
    """

    def __init__(self, quality: float, rng: random.Random):
        if not 0.0 <= quality <= 1.0:
            raise ValueError(f"quality must be in [0, 1], got {quality}")
        self.quality = quality
        self.rng = rng

    def slips(self, weight: float = 1.0) -> bool:
        """True when the model errs on a decision of the given difficulty."""
        p_err = min(1.0, (1.0 - self.quality) * weight)
        return self.rng.random() < p_err

    def choice(self, options: List[Any]) -> Any:
        """Uniform choice from options (noise channel)."""
        return self.rng.choice(options)


_LABEL_LINE_RE = re.compile(r"^\s*([A-Za-z][A-Za-z0-9 /()'_-]{0,48}):\s*(.+?)\s*$")


def label_lines(text: str) -> List[tuple]:
    """All 'Label: value' lines in the text, as (label, value) pairs."""
    pairs = []
    for line in text.splitlines():
        match = _LABEL_LINE_RE.match(line)
        if match:
            pairs.append((match.group(1).strip(), match.group(2).strip()))
    return pairs


def _name_tokens(name: str) -> List[str]:
    return [t for t in re.split(r"[_\s/-]+", name.lower()) if t]


_GENERIC_TOKENS = {"us", "is", "of", "the", "a", "abbrev", "abbreviation", "name"}


def find_labeled_value(field_name: str, text: str) -> Optional[str]:
    """Value of the label line best matching a schema field name.

    Matching is by token overlap between the field name and the label
    ("incident_date" matches "Date", "us_state_abbrev" matches "State").
    """
    field_tokens = set(_name_tokens(field_name)) - _GENERIC_TOKENS
    if not field_tokens:
        return None
    best_value: Optional[str] = None
    best_score = 0.0
    for label, value in label_lines(text):
        lab_tokens = set(_name_tokens(label)) - _GENERIC_TOKENS
        if not lab_tokens:
            continue
        overlap = field_tokens & lab_tokens
        if not overlap:
            continue
        score = len(overlap) / max(len(field_tokens | lab_tokens), 1)
        if score > best_score:
            best_score = score
            best_value = value
    return best_value


def _coerce(value: str, field_type: str) -> Any:
    """Coerce an extracted string to the schema's declared type."""
    field_type = field_type.lower()
    if field_type in ("int", "integer"):
        match = re.search(r"-?\d+", value.replace(",", ""))
        return int(match.group()) if match else None
    if field_type in ("float", "number", "double"):
        match = re.search(r"-?\d+(?:\.\d+)?", value.replace(",", ""))
        return float(match.group()) if match else None
    if field_type in ("bool", "boolean"):
        lowered = value.strip().lower()
        if lowered in ("true", "yes", "1"):
            return True
        if lowered in ("false", "no", "0"):
            return False
        return None
    return value


def extract_field(field_name: str, field_type: str, text: str) -> Any:
    """Extract one schema field from rendered document text.

    Strategy mirrors what an instruction-following LLM does with these
    documents: prefer explicit metadata lines, then fall back to
    type-specific heuristics over the prose (dates, states, booleans
    derived from domain concepts, cause sentences, sentiment).
    """
    name = field_name.lower()

    if "probable_cause" in name or name.endswith("cause") or name == "cause":
        # Cause statements are multi-line paragraphs; the full-sentence
        # extractor must win over the single-line label matcher.
        cause = _cause_sentence(text)
        if cause is not None:
            return cause

    labeled = find_labeled_value(field_name, text)
    if labeled is not None:
        if "state" in name:
            state = knowledge.find_state(labeled)
            if state is not None:
                return state
        if "date" in name:
            date = knowledge.find_date(labeled)
            if date is not None:
                return date
        coerced = _coerce(labeled, field_type)
        if coerced is not None:
            return coerced

    if "state" in name:
        return knowledge.find_state(text)
    if "year" in name:
        return knowledge.find_year(text)
    if "date" in name:
        return knowledge.find_date(text)
    if "sentiment" in name:
        return knowledge.sentiment_of(text)
    if field_type.lower() in ("bool", "boolean"):
        return _boolean_from_concepts(name, text)
    if field_type.lower() in ("int", "integer", "float", "number"):
        # Try the most specific name token first: in "injuries_fatal" the
        # qualifier ("fatal") locates the right row, while the container
        # word ("injuries") would match a section header or caption.
        primary = [t for t in reversed(_name_tokens(field_name)) if len(t) > 2]
        for token in primary:
            value = knowledge.find_number_after(text, token)
            if value is not None:
                if field_type.lower() in ("int", "integer"):
                    return int(value)
                return value
    return None


def _cause_sentence(text: str) -> Optional[str]:
    match = re.search(r"probable cause[^:\n]{0,40}:\s*", text, re.IGNORECASE)
    if match:
        # Accumulate wrapped lines until the statement's sentence ends.
        tail = text[match.end():]
        collected: List[str] = []
        for line in tail.splitlines():
            line = line.strip()
            if not line:
                break
            collected.append(line)
            if line.endswith("."):
                break
        if collected:
            return " ".join(" ".join(collected).split())
    # Fall back to the classic NTSB phrasing inside prose.
    match = re.search(r"(The pilot's failure[^.]*\.)", text)
    if match:
        return match.group(1)
    return None


def _boolean_from_concepts(field_name: str, text: str) -> Optional[bool]:
    """Booleans like ``weather_related`` derive from the concept lexicon."""
    phrase = field_name.replace("_", " ")
    concepts = knowledge.match_concepts(phrase)
    if concepts:
        return any(knowledge.text_matches_concept(text, c) for c in concepts)
    for token in _name_tokens(field_name):
        if token in ("related", "is", "was", "has"):
            continue
        if token in knowledge.CONCEPT_KEYWORDS:
            return knowledge.text_matches_concept(text, token)
    return None
