"""The ``extract_entities`` skill: entity/relation triples from text.

Backs the pay-as-you-go knowledge-graph construction the paper discusses
(§7): entities and typed relations are pulled from each document so
Sycamore can assert them into the graph store with provenance. Like a
real extraction model, the skill recognises the entity types of our
domains — companies, sectors, executives, aircraft, locations, causes —
and emits JSON triples; under noise it drops or garbles relations.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List

from .. import knowledge
from .common import Noise, find_labeled_value


def run_extract_entities(sections: Dict[str, str], noise: Noise) -> str:
    """Return a JSON list of {subject, predicate, object} triples."""
    document = sections.get("document", "")
    triples: List[Dict[str, str]] = []
    triples.extend(_company_triples(document))
    triples.extend(_incident_triples(document))
    if noise.slips(0.5) and triples:
        # A sloppy model drops a relation.
        triples.pop(noise.rng.randrange(len(triples)))
    if noise.slips(0.5) and triples:
        # ...or hallucinates a spurious sector/location link.
        victim = noise.choice(triples)
        triples.append(
            {
                "subject": victim["subject"],
                "predicate": "related_to",
                "object": noise.choice(["unknown", "misc", "general"]),
            }
        )
    return json.dumps(triples)


def _company_triples(text: str) -> List[Dict[str, str]]:
    company = find_labeled_value("company", text)
    if company is None:
        return []
    triples = []
    sector = find_labeled_value("sector", text)
    if sector:
        triples.append({"subject": company, "predicate": "in_sector", "object": sector})
    ceo = find_labeled_value("chief_executive_officer", text) or find_labeled_value(
        "ceo", text
    )
    if ceo:
        triples.append({"subject": company, "predicate": "led_by", "object": ceo})
    ticker = find_labeled_value("ticker", text)
    if ticker:
        triples.append({"subject": company, "predicate": "trades_as", "object": ticker})
    if knowledge.text_matches_concept(text, "ceo_change"):
        triples.append(
            {"subject": company, "predicate": "had_event", "object": "ceo_change"}
        )
    sentiment = knowledge.sentiment_of(text)
    if sentiment != "neutral":
        triples.append(
            {"subject": company, "predicate": "sentiment", "object": sentiment}
        )
    return triples


_REPORT_ID_RE = re.compile(r"\b(NTSB-\d{4}-\d{3,6})\b")


def _incident_triples(text: str) -> List[Dict[str, str]]:
    match = _REPORT_ID_RE.search(text)
    if match is None:
        return []
    report_id = match.group(1)
    triples = []
    state = knowledge.find_state(text)
    if state:
        triples.append(
            {"subject": report_id, "predicate": "occurred_in", "object": state}
        )
    aircraft = find_labeled_value("aircraft", text)
    if aircraft:
        triples.append(
            {"subject": report_id, "predicate": "involved_aircraft", "object": aircraft}
        )
    for concept in ("wind", "icing", "mechanical", "pilot_error", "bird_strike"):
        if knowledge.text_matches_concept(text, concept):
            triples.append(
                {"subject": report_id, "predicate": "has_factor", "object": concept}
            )
    date = knowledge.find_date(text)
    if date:
        triples.append(
            {"subject": report_id, "predicate": "occurred_on", "object": date}
        )
    return triples
