"""Reliability layer over any LLM backend.

Sycamore "handles retries and model-specific details like parsing the
output as JSON" (§5.2). This module is that layer: exponential-backoff
retry (with optional jitter, a per-run retry budget and per-request
timeouts) for transient failures, a circuit breaker that fails fast
during backend brownouts, JSON-mode completion with output repair, a
bounded LRU response cache, an optional rate limiter, and a batch API
used by the execution engine to parallelize per-document LLM transforms.
"""

from __future__ import annotations

import contextvars
import json
import random
import re
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..lifecycle.deadline import check_scope, remaining_budget
from ..observability.metrics import MetricsRegistry, get_registry
from ..observability.tracing import Span, Tracer
from .base import LLMClient, LLMResponse, get_model_spec
from .cost import CostTracker
from .errors import (
    CircuitOpenError,
    LLMTimeoutError,
    MalformedOutputError,
    RateLimitError,
    TransientLLMError,
)


def repair_json(text: str) -> Any:
    """Parse model output as JSON, tolerating the usual LLM damage.

    Tries, in order: direct parse; stripping Markdown code fences;
    extracting the outermost ``{...}`` or ``[...]`` span; removing
    trailing commas; and closing unbalanced brackets/braces on truncated
    output. Raises :class:`MalformedOutputError` when nothing works.
    """
    candidates = [text]
    fenced = re.search(r"```(?:json)?\s*(.*?)```", text, re.DOTALL)
    if fenced:
        candidates.append(fenced.group(1))
    for opener, closer in (("{", "}"), ("[", "]")):
        start = text.find(opener)
        end = text.rfind(closer)
        if start != -1 and end > start:
            candidates.append(text[start : end + 1])
        if start != -1:
            candidates.append(_close_brackets(text[start:]))
    for candidate in candidates:
        for attempt in (candidate, re.sub(r",\s*([}\]])", r"\1", candidate)):
            try:
                return json.loads(attempt)
            except (json.JSONDecodeError, ValueError):
                continue
    raise MalformedOutputError("could not parse output as JSON", raw_output=text)


def _close_brackets(fragment: str) -> str:
    """Best-effort completion of a truncated JSON fragment."""
    stack: List[str] = []
    in_string = False
    escaped = False
    string_start = -1
    for position, ch in enumerate(fragment):
        if escaped:
            escaped = False
            continue
        if ch == "\\":
            escaped = True
            continue
        if ch == '"':
            in_string = not in_string
            if in_string:
                string_start = position
            continue
        if in_string:
            continue
        if ch in "{[":
            stack.append("}" if ch == "{" else "]")
        elif ch in "}]" and stack:
            stack.pop()
    repaired = fragment
    if in_string:
        # The cut fell inside a string. If that string is an object *key*
        # (preceded by '{' or ','), drop it — a quote-closed key with no
        # value is still invalid. A cut *value* (preceded by ':') can be
        # closed in place. Inside an array, closing in place is valid too.
        before = fragment[:string_start].rstrip()
        if before.endswith(("{", ",")) and (stack and stack[-1] == "}"):
            repaired = before
        else:
            repaired += '"'
    # Drop a dangling comma/colon left at the end.
    repaired = re.sub(r"[,:]\s*$", "", repaired)
    return repaired + "".join(reversed(stack))


class RateLimiter:
    """Token-bucket rate limiter (requests per second).

    Disabled limiters cost nothing. The clock is injectable so tests can
    drive it deterministically. The lock is held only long enough to
    *reserve* a slot — the sleep itself happens outside it, so concurrent
    waiters queue up behind the bucket, not behind one sleeping thread.
    """

    def __init__(
        self,
        requests_per_second: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        sleeper: Callable[[float], None] = time.sleep,
    ):
        self.rate = requests_per_second
        self._clock = clock
        self._sleeper = sleeper
        self._lock = threading.Lock()
        self._allowance = requests_per_second or 0.0
        self._last = clock()

    def acquire(self) -> None:
        """Block (via the sleeper) until a request slot is available."""
        if self.rate is None:
            return
        with self._lock:
            now = self._clock()
            self._allowance = min(
                self.rate, self._allowance + (now - self._last) * self.rate
            )
            self._last = now
            if self._allowance >= 1.0:
                self._allowance -= 1.0
                wait = 0.0
            else:
                # Reserve the next slot: account for the tokens that will
                # have accrued by the end of the wait, then go to sleep
                # WITHOUT the lock so other threads can reserve after us.
                wait = (1.0 - self._allowance) / self.rate
                self._allowance = 0.0
                self._last = now + wait
        if wait > 0.0:
            self._sleeper(wait)


class CircuitBreaker:
    """Failure-rate circuit breaker: closed → open → half-open → closed.

    *Closed*: requests flow; ``failure_threshold`` consecutive failures
    trip the breaker. *Open*: requests are rejected instantly (no backend
    call, no backoff) until ``recovery_time_s`` has elapsed. *Half-open*:
    one probe request is let through; success closes the breaker, failure
    re-opens it for another recovery window.

    Thread-safe; the clock is injectable for deterministic tests.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_time_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.recovery_time_s = recovery_time_s
        self._clock = clock
        self._lock = threading.Lock()
        self.state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        # Counters surfaced for observability.
        self.times_opened = 0
        self.rejections = 0

    def allow(self) -> bool:
        """Whether a request may proceed right now (claims the half-open
        probe slot when applicable)."""
        with self._lock:
            if self.state == self.OPEN:
                if self._clock() - self._opened_at >= self.recovery_time_s:
                    self.state = self.HALF_OPEN
                    self._probe_in_flight = False
                else:
                    self.rejections += 1
                    return False
            if self.state == self.HALF_OPEN:
                if self._probe_in_flight:
                    self.rejections += 1
                    return False
                self._probe_in_flight = True
            return True

    def record_success(self) -> None:
        """Note a successful backend call."""
        with self._lock:
            self.state = self.CLOSED
            self._consecutive_failures = 0
            self._probe_in_flight = False

    def record_failure(self) -> None:
        """Note a failed backend call; may trip the breaker."""
        with self._lock:
            if self.state == self.HALF_OPEN:
                self._trip()
                return
            self._consecutive_failures += 1
            if (
                self.state == self.CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._trip()

    def _trip(self) -> None:
        self.state = self.OPEN
        self._opened_at = self._clock()
        self._consecutive_failures = 0
        self._probe_in_flight = False
        self.times_opened += 1


class ReliableLLM(LLMClient):
    """Retry + circuit-breaker + cache + JSON-mode wrapper around a backend.

    All LLM-powered transforms talk to the backend through this class so
    that retries, caching and throttling behave uniformly.

    Parameters
    ----------
    max_retries:
        Retries per request for transient failures.
    backoff_base_s / backoff_jitter:
        Exponential backoff base and jitter fraction in [0, 1]: each sleep
        is scaled by ``1 - jitter*u`` with ``u`` drawn from a seeded RNG,
        decorrelating concurrent retriers. Default 0 (deterministic).
    retry_budget:
        Optional cap on *total* retries across the life of this client —
        a run-level budget so a brownout cannot multiply per-request
        retries across thousands of documents. When exhausted, transient
        failures are raised immediately.
    request_timeout_s:
        Optional per-request deadline. A backend call whose wall-clock
        duration exceeds it raises :class:`LLMTimeoutError` (retryable).
    total_timeout_s:
        Optional *overall* wall-clock budget for one logical request
        across **all** attempts and backoff sleeps. Without it, the
        worst case is ``attempts × (request_timeout_s + backoff)`` —
        per-attempt timeouts silently compound. With it, backoff sleeps
        are clamped to the remaining budget and a request whose budget
        is exhausted raises :class:`LLMTimeoutError` instead of starting
        another attempt (counted separately as ``overall_timeouts``).
    circuit_breaker:
        Optional :class:`CircuitBreaker`. Consecutive backend failures
        open it; while open, calls fail fast with
        :class:`CircuitOpenError` instead of burning retries.
    cache_max_entries:
        LRU bound on the response cache (default 4096 entries).
    batch_pool_workers:
        Size of the long-lived thread pool shared by every parallel
        :meth:`complete_many` call (one pool per client, not per batch).
    tracker:
        Optional :class:`~repro.llm.cost.CostTracker`. Cache hits are
        recorded into it (``cached=True`` — zero dollars, full tokens)
        so per-query accounting stays conservative; real backend calls
        are recorded by the backend itself. Defaults to the backend's
        own ``tracker`` attribute when it has one.
    tracer:
        Optional :class:`~repro.observability.Tracer`. When set, every
        ``complete`` call runs inside an ``llm_request`` span carrying
        model, token, dollar and retry attributes.
    registry:
        :class:`~repro.observability.MetricsRegistry` to publish
        reliability counters into (default: the process registry).
    """

    def __init__(
        self,
        backend: LLMClient,
        max_retries: int = 4,
        backoff_base_s: float = 0.05,
        backoff_jitter: float = 0.0,
        cache_enabled: bool = True,
        cache_max_entries: int = 4096,
        rate_limiter: Optional[RateLimiter] = None,
        retry_budget: Optional[int] = None,
        request_timeout_s: Optional[float] = None,
        total_timeout_s: Optional[float] = None,
        circuit_breaker: Optional[CircuitBreaker] = None,
        sleeper: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
        jitter_seed: int = 0,
        batch_pool_workers: int = 16,
        tracker: Optional[CostTracker] = None,
        tracer: Optional[Tracer] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        if batch_pool_workers < 1:
            raise ValueError("batch_pool_workers must be >= 1")
        if not 0.0 <= backoff_jitter <= 1.0:
            raise ValueError("backoff_jitter must be in [0, 1]")
        if cache_max_entries < 1:
            raise ValueError("cache_max_entries must be >= 1")
        self.backend = backend
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_jitter = backoff_jitter
        self.cache_enabled = cache_enabled
        self.cache_max_entries = cache_max_entries
        self.rate_limiter = rate_limiter or RateLimiter(None)
        self.retry_budget = retry_budget
        self.request_timeout_s = request_timeout_s
        self.total_timeout_s = total_timeout_s
        self.circuit_breaker = circuit_breaker
        self._sleeper = sleeper
        self._clock = clock
        self._jitter_rng = random.Random(jitter_seed)
        self._cache: "OrderedDict[Tuple[str, str, Optional[int]], LLMResponse]" = (
            OrderedDict()
        )
        self._cache_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self.batch_pool_workers = batch_pool_workers
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self.retries_performed = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0
        self.timeouts = 0
        self.overall_timeouts = 0
        self.budget_exhaustions = 0
        self.tracker = tracker if tracker is not None else getattr(
            backend, "tracker", None
        )
        self.tracer = tracer
        self.registry = registry if registry is not None else get_registry()
        reg = self.registry
        self._m_requests = reg.counter("llm.requests")
        self._m_retries = reg.counter("llm.retries")
        self._m_cache_hits = reg.counter("llm.cache_hits")
        self._m_cache_misses = reg.counter("llm.cache_misses")
        self._m_cache_evictions = reg.counter("llm.cache_evictions")
        self._m_timeouts = reg.counter("llm.timeouts")
        self._m_overall_timeouts = reg.counter("llm.overall_timeouts")
        self._m_budget_exhaustions = reg.counter("llm.budget_exhaustions")
        self._m_circuit_rejections = reg.counter("llm.circuit_rejections")
        self._m_input_tokens = reg.counter("llm.input_tokens")
        self._m_output_tokens = reg.counter("llm.output_tokens")
        self._m_cost_usd = reg.counter("llm.cost_usd")
        self._m_saved_usd = reg.counter("llm.saved_usd")
        self._m_latency = reg.histogram("llm.virtual_latency_s")

    def metrics(self) -> Dict[str, int]:
        """Reliability counters (retries, cache traffic, breaker state)."""
        with self._counter_lock:
            counters = {
                "retries_performed": self.retries_performed,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "cache_evictions": self.cache_evictions,
                "timeouts": self.timeouts,
                "overall_timeouts": self.overall_timeouts,
                "budget_exhaustions": self.budget_exhaustions,
            }
        counters["cache_size"] = self.cache_size()
        if self.circuit_breaker is not None:
            counters["circuit_rejections"] = self.circuit_breaker.rejections
            counters["circuit_times_opened"] = self.circuit_breaker.times_opened
        return counters

    def complete(
        self,
        prompt: str,
        model: str = "sim-large",
        max_output_tokens: Optional[int] = None,
        temperature: float = 0.0,
    ) -> LLMResponse:
        """Generate a completion for the prompt (see LLMClient)."""
        if self.tracer is None:
            return self._complete(prompt, model, max_output_tokens, temperature, None)
        with self.tracer.span(
            f"llm:{model}", kind="llm_request", model=model
        ) as span:
            return self._complete(prompt, model, max_output_tokens, temperature, span)

    def _complete(
        self,
        prompt: str,
        model: str,
        max_output_tokens: Optional[int],
        temperature: float,
        span: Optional[Span],
    ) -> LLMResponse:
        key = (model, prompt, max_output_tokens)
        cacheable = self.cache_enabled and temperature == 0.0
        if cacheable:
            with self._cache_lock:
                hit = self._cache.get(key)
                if hit is not None:
                    self._cache.move_to_end(key)
            with self._counter_lock:
                if hit is not None:
                    self.cache_hits += 1
                else:
                    self.cache_misses += 1
            if hit is not None:
                self._m_cache_hits.inc()
                replay = LLMResponse(
                    text=hit.text,
                    model=hit.model,
                    usage=hit.usage,
                    latency_s=0.0,
                    cached=True,
                )
                # A cache hit is still a request the query paid tokens
                # for: record it (at zero simulated dollars) so per-query
                # accounting is conservative and savings are reportable.
                if self.tracker is not None:
                    self.tracker.record(
                        replay.model, replay.usage, 0.0, cached=True
                    )
                self._account(span, replay, retries=0)
                return replay
            self._m_cache_misses.inc()

        last_error: Optional[Exception] = None
        retries_used = 0
        overall_started = self._clock()
        for attempt in range(self.max_retries + 1):
            # Cooperative lifecycle checkpoint: a cancelled or expired
            # query stops retrying here with its typed error instead of
            # burning the remaining attempts.
            check_scope()
            if attempt > 0:
                self._check_overall(overall_started, last_error)
            self.rate_limiter.acquire()
            if self.circuit_breaker is not None and not self.circuit_breaker.allow():
                self._m_circuit_rejections.inc()
                raise CircuitOpenError(
                    "circuit breaker is open; request rejected without retry"
                ) from last_error
            started = self._clock()
            try:
                response = self.backend.complete(
                    prompt,
                    model=model,
                    max_output_tokens=max_output_tokens,
                    temperature=temperature,
                )
                self._enforce_timeout(started)
            except RateLimitError as exc:
                last_error = exc
                self._note_failure()
                self._spend_retry(exc)
                retries_used += 1
                self._sleep_backoff(
                    max(exc.retry_after_s, self._backoff(attempt)), overall_started
                )
            except TransientLLMError as exc:
                last_error = exc
                self._note_failure()
                self._spend_retry(exc)
                retries_used += 1
                self._sleep_backoff(self._backoff(attempt), overall_started)
            else:
                if self.circuit_breaker is not None:
                    self.circuit_breaker.record_success()
                break
        else:
            raise TransientLLMError(
                f"giving up after {self.max_retries + 1} attempts"
            ) from last_error

        if cacheable:
            evicted = 0
            with self._cache_lock:
                self._cache[key] = response
                self._cache.move_to_end(key)
                while len(self._cache) > self.cache_max_entries:
                    self._cache.popitem(last=False)
                    evicted += 1
            if evicted:
                # Counters have their own lock; updating them after the
                # cache lock is released avoids nested lock acquisition.
                with self._counter_lock:
                    self.cache_evictions += evicted
                self._m_cache_evictions.inc(evicted)
        self._account(span, response, retries=retries_used)
        return response

    def _account(
        self, span: Optional[Span], response: LLMResponse, retries: int
    ) -> None:
        """Publish one served response into the registry (and its span)."""
        usage = response.usage
        try:
            spec = get_model_spec(response.model)
            full_cost = spec.cost_usd(usage.input_tokens, usage.output_tokens)
        except Exception:  # unknown model: no price card
            full_cost = 0.0
        cost = 0.0 if response.cached else full_cost
        saved = full_cost if response.cached else 0.0
        self._m_requests.inc()
        self._m_input_tokens.inc(usage.input_tokens)
        self._m_output_tokens.inc(usage.output_tokens)
        self._m_cost_usd.inc(cost)
        if saved:
            self._m_saved_usd.inc(saved)
        self._m_latency.observe(response.latency_s)
        if span is not None:
            span.set_attributes(
                input_tokens=usage.input_tokens,
                output_tokens=usage.output_tokens,
                cost_usd=cost,
                saved_usd=saved,
                cached=response.cached,
                retries=retries,
            )

    def complete_json(
        self,
        prompt: str,
        model: str = "sim-large",
        max_output_tokens: Optional[int] = None,
        json_retries: int = 2,
    ) -> Any:
        """Complete and parse the output as JSON, retrying malformed output.

        Retries bypass the response cache (a cached malformed answer would
        never heal) and nudge the temperature so a stochastic backend can
        produce different output.
        """
        last_error: Optional[MalformedOutputError] = None
        for attempt in range(json_retries + 1):
            temperature = 0.0 if attempt == 0 else 0.1
            response = self.complete(
                prompt,
                model=model,
                max_output_tokens=max_output_tokens,
                temperature=temperature,
            )
            try:
                return repair_json(response.text)
            except MalformedOutputError as exc:
                last_error = exc
                self._drop_cached(model, prompt, max_output_tokens)
        assert last_error is not None
        raise last_error

    def complete_many(
        self,
        prompts: List[str],
        model: str = "sim-large",
        max_output_tokens: Optional[int] = None,
        parallelism: int = 8,
        return_exceptions: bool = False,
    ) -> "List[LLMResponse | Exception]":
        """Batch completion preserving input order.

        Duplicate prompts within the batch are collapsed into one
        upstream call whose response is fanned back out to every
        position. Parallel batches share one long-lived thread pool
        (sized by ``batch_pool_workers``) instead of constructing and
        tearing down an executor per call; ``parallelism <= 1`` keeps the
        fully sequential path. With ``return_exceptions`` a failed
        completion occupies its slot as the exception instance instead of
        aborting the whole batch.
        """
        if not prompts:
            return []

        def one(prompt: str) -> "LLMResponse | Exception":
            try:
                return self.complete(
                    prompt, model=model, max_output_tokens=max_output_tokens
                )
            except Exception as exc:  # noqa: BLE001 - isolate per prompt
                if return_exceptions:
                    return exc
                raise

        unique: List[str] = []
        slot_of: Dict[str, int] = {}
        for prompt in prompts:
            if prompt not in slot_of:
                slot_of[prompt] = len(unique)
                unique.append(prompt)
        if parallelism <= 1 or len(unique) == 1:
            unique_results = [one(prompt) for prompt in unique]
        else:
            # Carry the caller's contextvars (the ambient trace span)
            # into the pool — one Context copy per task, because a single
            # Context cannot be entered concurrently.
            pool = self._batch_pool()
            futures = [
                pool.submit(contextvars.copy_context().run, one, prompt)
                for prompt in unique
            ]
            unique_results = [future.result() for future in futures]
        return [unique_results[slot_of[prompt]] for prompt in prompts]

    def _batch_pool(self) -> ThreadPoolExecutor:
        """The shared executor behind parallel ``complete_many`` calls."""
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.batch_pool_workers,
                    thread_name_prefix="repro-llm-batch",
                )
            return self._pool

    def close(self) -> None:
        """Release the shared batch pool (idempotent)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def cache_size(self) -> int:
        """Number of cached responses."""
        with self._cache_lock:
            return len(self._cache)

    def clear_cache(self) -> None:
        """Drop all cached responses."""
        with self._cache_lock:
            self._cache.clear()

    # ------------------------------------------------------------------

    def _enforce_timeout(self, started: float) -> None:
        if self.request_timeout_s is None:
            return
        elapsed = self._clock() - started
        if elapsed > self.request_timeout_s:
            with self._counter_lock:
                self.timeouts += 1
            self._m_timeouts.inc()
            raise LLMTimeoutError(
                f"request took {elapsed:.3f}s (deadline {self.request_timeout_s}s)",
                timeout_s=self.request_timeout_s,
            )

    def _overall_remaining(self, overall_started: float) -> Optional[float]:
        """Wall-clock budget left for this logical request (all attempts)."""
        if self.total_timeout_s is None:
            return None
        return self.total_timeout_s - (self._clock() - overall_started)

    def _check_overall(
        self, overall_started: float, cause: Optional[Exception]
    ) -> None:
        """Refuse to start another attempt past the overall budget."""
        remaining = self._overall_remaining(overall_started)
        if remaining is not None and remaining <= 0:
            with self._counter_lock:
                self.overall_timeouts += 1
            self._m_overall_timeouts.inc()
            elapsed = self._clock() - overall_started
            raise LLMTimeoutError(
                f"overall budget of {self.total_timeout_s}s exhausted "
                f"({elapsed:.3f}s across attempts)",
                timeout_s=float(self.total_timeout_s or 0.0),
            ) from cause

    def _sleep_backoff(self, delay: float, overall_started: float) -> None:
        """Backoff clamped so sleeps never outlive the overall budget or
        the ambient query deadline (the compounding-timeout fix)."""
        remaining = self._overall_remaining(overall_started)
        if remaining is not None:
            delay = min(delay, max(remaining, 0.0))
        budget = remaining_budget()
        if budget is not None:
            delay = min(delay, budget)
        if delay > 0:
            self._sleeper(delay)

    def _note_failure(self) -> None:
        if self.circuit_breaker is not None:
            self.circuit_breaker.record_failure()

    def _spend_retry(self, cause: Exception) -> None:
        """Charge one retry against the run budget, or give up."""
        with self._counter_lock:
            if (
                self.retry_budget is not None
                and self.retries_performed >= self.retry_budget
            ):
                self.budget_exhaustions += 1
                self._m_budget_exhaustions.inc()
                raise TransientLLMError(
                    f"retry budget of {self.retry_budget} exhausted"
                ) from cause
            self.retries_performed += 1
        self._m_retries.inc()

    def _drop_cached(self, model: str, prompt: str, max_output_tokens: Optional[int]) -> None:
        with self._cache_lock:
            self._cache.pop((model, prompt, max_output_tokens), None)

    def _backoff(self, attempt: int) -> float:
        delay = self.backoff_base_s * (2**attempt)
        if self.backoff_jitter > 0.0:
            with self._counter_lock:
                u = self._jitter_rng.random()
            delay *= 1.0 - self.backoff_jitter * u
        return delay
