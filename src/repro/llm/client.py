"""Reliability layer over any LLM backend.

Sycamore "handles retries and model-specific details like parsing the
output as JSON" (§5.2). This module is that layer: exponential-backoff
retry for transient failures, JSON-mode completion with output repair,
a response cache, an optional rate limiter, and a batch API used by the
execution engine to parallelize per-document LLM transforms.
"""

from __future__ import annotations

import json
import re
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Tuple

from .base import LLMClient, LLMResponse
from .errors import MalformedOutputError, RateLimitError, TransientLLMError


def repair_json(text: str) -> Any:
    """Parse model output as JSON, tolerating the usual LLM damage.

    Tries, in order: direct parse; stripping Markdown code fences;
    extracting the outermost ``{...}`` or ``[...]`` span; removing
    trailing commas; and closing unbalanced brackets/braces on truncated
    output. Raises :class:`MalformedOutputError` when nothing works.
    """
    candidates = [text]
    fenced = re.search(r"```(?:json)?\s*(.*?)```", text, re.DOTALL)
    if fenced:
        candidates.append(fenced.group(1))
    for opener, closer in (("{", "}"), ("[", "]")):
        start = text.find(opener)
        end = text.rfind(closer)
        if start != -1 and end > start:
            candidates.append(text[start : end + 1])
        if start != -1:
            candidates.append(_close_brackets(text[start:]))
    for candidate in candidates:
        for attempt in (candidate, re.sub(r",\s*([}\]])", r"\1", candidate)):
            try:
                return json.loads(attempt)
            except (json.JSONDecodeError, ValueError):
                continue
    raise MalformedOutputError("could not parse output as JSON", raw_output=text)


def _close_brackets(fragment: str) -> str:
    """Best-effort completion of a truncated JSON fragment."""
    stack: List[str] = []
    in_string = False
    escaped = False
    string_start = -1
    for position, ch in enumerate(fragment):
        if escaped:
            escaped = False
            continue
        if ch == "\\":
            escaped = True
            continue
        if ch == '"':
            in_string = not in_string
            if in_string:
                string_start = position
            continue
        if in_string:
            continue
        if ch in "{[":
            stack.append("}" if ch == "{" else "]")
        elif ch in "}]" and stack:
            stack.pop()
    repaired = fragment
    if in_string:
        # The cut fell inside a string. If that string is an object *key*
        # (preceded by '{' or ','), drop it — a quote-closed key with no
        # value is still invalid. A cut *value* (preceded by ':') can be
        # closed in place.
        before = fragment[:string_start].rstrip()
        if before.endswith(("{", ",")):
            repaired = before
        else:
            repaired += '"'
    # Drop a dangling comma/colon left at the end.
    repaired = re.sub(r"[,:]\s*$", "", repaired)
    return repaired + "".join(reversed(stack))


class RateLimiter:
    """Token-bucket rate limiter (requests per second).

    Disabled limiters cost nothing. The clock is injectable so tests can
    drive it deterministically.
    """

    def __init__(
        self,
        requests_per_second: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        sleeper: Callable[[float], None] = time.sleep,
    ):
        self.rate = requests_per_second
        self._clock = clock
        self._sleeper = sleeper
        self._lock = threading.Lock()
        self._allowance = requests_per_second or 0.0
        self._last = clock()

    def acquire(self) -> None:
        """Block (via the sleeper) until a request slot is available."""
        if self.rate is None:
            return
        with self._lock:
            now = self._clock()
            self._allowance = min(
                self.rate, self._allowance + (now - self._last) * self.rate
            )
            self._last = now
            if self._allowance < 1.0:
                wait = (1.0 - self._allowance) / self.rate
                self._sleeper(wait)
                self._last = self._clock()
                self._allowance = 0.0
            else:
                self._allowance -= 1.0


class ReliableLLM(LLMClient):
    """Retry + cache + JSON-mode wrapper around a raw backend.

    All LLM-powered transforms talk to the backend through this class so
    that retries, caching and throttling behave uniformly.
    """

    def __init__(
        self,
        backend: LLMClient,
        max_retries: int = 4,
        backoff_base_s: float = 0.05,
        cache_enabled: bool = True,
        rate_limiter: Optional[RateLimiter] = None,
        sleeper: Callable[[float], None] = time.sleep,
    ):
        self.backend = backend
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.cache_enabled = cache_enabled
        self.rate_limiter = rate_limiter or RateLimiter(None)
        self._sleeper = sleeper
        self._cache: Dict[Tuple[str, str, Optional[int]], LLMResponse] = {}
        self._cache_lock = threading.Lock()
        self.retries_performed = 0

    def complete(
        self,
        prompt: str,
        model: str = "sim-large",
        max_output_tokens: Optional[int] = None,
        temperature: float = 0.0,
    ) -> LLMResponse:
        """Generate a completion for the prompt (see LLMClient)."""
        key = (model, prompt, max_output_tokens)
        if self.cache_enabled and temperature == 0.0:
            with self._cache_lock:
                hit = self._cache.get(key)
            if hit is not None:
                return LLMResponse(
                    text=hit.text,
                    model=hit.model,
                    usage=hit.usage,
                    latency_s=0.0,
                    cached=True,
                )

        last_error: Optional[Exception] = None
        for attempt in range(self.max_retries + 1):
            self.rate_limiter.acquire()
            try:
                response = self.backend.complete(
                    prompt,
                    model=model,
                    max_output_tokens=max_output_tokens,
                    temperature=temperature,
                )
                break
            except RateLimitError as exc:
                last_error = exc
                self.retries_performed += 1
                self._sleeper(max(exc.retry_after_s, self._backoff(attempt)))
            except TransientLLMError as exc:
                last_error = exc
                self.retries_performed += 1
                self._sleeper(self._backoff(attempt))
        else:
            raise TransientLLMError(
                f"giving up after {self.max_retries + 1} attempts"
            ) from last_error

        if self.cache_enabled and temperature == 0.0:
            with self._cache_lock:
                self._cache[key] = response
        return response

    def complete_json(
        self,
        prompt: str,
        model: str = "sim-large",
        max_output_tokens: Optional[int] = None,
        json_retries: int = 2,
    ) -> Any:
        """Complete and parse the output as JSON, retrying malformed output.

        Retries bypass the response cache (a cached malformed answer would
        never heal) and nudge the temperature so a stochastic backend can
        produce different output.
        """
        last_error: Optional[MalformedOutputError] = None
        for attempt in range(json_retries + 1):
            temperature = 0.0 if attempt == 0 else 0.1
            response = self.complete(
                prompt,
                model=model,
                max_output_tokens=max_output_tokens,
                temperature=temperature,
            )
            try:
                return repair_json(response.text)
            except MalformedOutputError as exc:
                last_error = exc
                self._drop_cached(model, prompt, max_output_tokens)
        assert last_error is not None
        raise last_error

    def complete_many(
        self,
        prompts: List[str],
        model: str = "sim-large",
        max_output_tokens: Optional[int] = None,
        parallelism: int = 8,
    ) -> List[LLMResponse]:
        """Batch completion preserving input order."""
        if not prompts:
            return []
        if parallelism <= 1 or len(prompts) == 1:
            return [
                self.complete(p, model=model, max_output_tokens=max_output_tokens)
                for p in prompts
            ]
        with ThreadPoolExecutor(max_workers=parallelism) as pool:
            return list(
                pool.map(
                    lambda p: self.complete(
                        p, model=model, max_output_tokens=max_output_tokens
                    ),
                    prompts,
                )
            )

    def cache_size(self) -> int:
        """Number of cached responses."""
        with self._cache_lock:
            return len(self._cache)

    def clear_cache(self) -> None:
        """Drop all cached responses."""
        with self._cache_lock:
            self._cache.clear()

    def _drop_cached(self, model: str, prompt: str, max_output_tokens: Optional[int]) -> None:
        with self._cache_lock:
            self._cache.pop((model, prompt, max_output_tokens), None)

    def _backoff(self, attempt: int) -> float:
        return self.backoff_base_s * (2**attempt)
