"""The simulated LLM backend.

This is the repository's substitute for hosted models (see DESIGN.md §1).
It is a *deterministic* language model: the same (model, prompt, seed)
triple always yields the same completion. Competence comes from the task
skills in :mod:`repro.llm.skills`; fallibility comes from a per-call
noise channel scaled by the model tier's quality score, plus optional
transport-level failure injection (rate limits, transient errors,
malformed output) so the retry stack sees realistic weather.

Why this preserves the paper's behaviour: every system-level mechanism —
prompt assembly, context windows, retries, JSON repair, caching, batching,
cost accounting, and the quality/cost trade-off between model tiers — is
exercised by real code; only the internals of "the model" are synthetic.
"""

from __future__ import annotations

import hashlib
import random
import threading
import time
from typing import Optional

from .base import LLMClient, LLMResponse, Usage, get_model_spec
from .cost import CostTracker
from .errors import ContextWindowExceededError, RateLimitError, TransientLLMError
from .prompts import parse_task_prompt
from .skills import SKILLS, Noise
from .skills.summarize import summarize_text
from .tokens import count_tokens, truncate_to_tokens


def _stable_seed(*parts: str) -> int:
    digest = hashlib.sha256("\x1f".join(parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class SimulatedLLM(LLMClient):
    """Deterministic multi-tier simulated language model.

    Parameters
    ----------
    seed:
        Global seed mixed into every per-call RNG.
    failure_rate:
        Probability that a call fails with a transient transport error
        (drawn per *attempt*, so retries eventually succeed).
    rate_limit_every:
        If set, every Nth call raises :class:`RateLimitError` (a blunt but
        deterministic way to exercise backoff logic).
    malformed_rate:
        Probability that a structurally-valid completion is truncated into
        malformed output (also per-attempt, so JSON-repair retries work).
    tracker:
        Optional :class:`CostTracker` ledger to record usage into.
    real_latency_scale:
        Fraction of the model's *virtual* latency to actually sleep per
        call (default 0: calls return immediately). Scale-out experiments
        set a small value so calls are network-bound the way hosted-API
        calls are, letting pipeline parallelism genuinely overlap them.
    """

    def __init__(
        self,
        seed: int = 0,
        failure_rate: float = 0.0,
        rate_limit_every: Optional[int] = None,
        malformed_rate: float = 0.0,
        tracker: Optional[CostTracker] = None,
        real_latency_scale: float = 0.0,
    ):
        self.seed = seed
        self.failure_rate = failure_rate
        self.rate_limit_every = rate_limit_every
        self.malformed_rate = malformed_rate
        self.tracker = tracker
        self.real_latency_scale = real_latency_scale
        self._lock = threading.Lock()
        self._calls = 0
        self._attempt_rng = random.Random(seed ^ 0x5EED)

    @property
    def calls(self) -> int:
        """Total completion calls served so far."""
        return self._calls

    def complete(
        self,
        prompt: str,
        model: str = "sim-large",
        max_output_tokens: Optional[int] = None,
        temperature: float = 0.0,
    ) -> LLMResponse:
        """Generate a completion for the prompt (see LLMClient)."""
        spec = get_model_spec(model)
        input_tokens = count_tokens(prompt)
        if input_tokens > spec.context_window:
            raise ContextWindowExceededError(input_tokens, spec.context_window)

        with self._lock:
            self._calls += 1
            call_number = self._calls
            transport_draw = self._attempt_rng.random()
            malformed_draw = self._attempt_rng.random()

        if self.rate_limit_every and call_number % self.rate_limit_every == 0:
            raise RateLimitError(retry_after_s=0.01)
        if transport_draw < self.failure_rate:
            raise TransientLLMError("simulated upstream failure")

        text = self._generate(prompt, model, spec.quality, temperature)
        if malformed_draw < self.malformed_rate and text:
            text = text[: max(1, len(text) * 2 // 3)]
        if max_output_tokens is not None:
            text = truncate_to_tokens(text, max_output_tokens)

        usage = Usage(
            input_tokens=input_tokens,
            output_tokens=count_tokens(text),
            calls=1,
        )
        latency = spec.latency_s(usage.input_tokens, usage.output_tokens)
        if self.real_latency_scale > 0.0:
            time.sleep(latency * self.real_latency_scale)
        response = LLMResponse(text=text, model=model, usage=usage, latency_s=latency)
        if self.tracker is not None:
            self.tracker.record(model, usage, latency, spec=spec)
        return response

    def _generate(self, prompt: str, model: str, quality: float, temperature: float) -> str:
        """Produce the completion text for one prompt."""
        seed_parts = [str(self.seed), model, prompt]
        if temperature > 0.0:
            # Non-zero temperature de-correlates repeated sampling.
            with self._lock:
                seed_parts.append(str(self._calls))
        rng = random.Random(_stable_seed(*seed_parts))
        noise = Noise(quality=quality, rng=rng)
        try:
            task, sections = parse_task_prompt(prompt)
        except Exception:
            # Free-form prompt: behave like a generic instruct model and
            # return a concise restatement of the prompt's content.
            return summarize_text(prompt, max_sentences=2) or prompt[:200]
        skill = SKILLS.get(task)
        if skill is None:
            return summarize_text(sections.get("document", prompt), max_sentences=2)
        return skill(sections, noise)
