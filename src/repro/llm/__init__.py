"""LLM runtime: model specs, simulated backend, reliability layer, cost ledger.

Typical wiring::

    from repro.llm import CostTracker, ReliableLLM, SimulatedLLM

    tracker = CostTracker()
    llm = ReliableLLM(SimulatedLLM(seed=7, tracker=tracker))
    response = llm.complete(prompt, model="sim-large")

All Sycamore LLM transforms and Luna operators accept any
:class:`LLMClient`, so a hosted backend can be dropped in by implementing
``complete``.
"""

from .base import DEFAULT_MODELS, LLMClient, LLMResponse, ModelSpec, Usage, get_model_spec
from .client import CircuitBreaker, RateLimiter, ReliableLLM, repair_json
from .cost import CallRecord, CostSummary, CostTracker
from .errors import (
    CircuitOpenError,
    ContextWindowExceededError,
    LLMError,
    LLMTimeoutError,
    MalformedOutputError,
    RateLimitError,
    TransientLLMError,
    UnknownModelError,
)
from .prompts import (
    ANSWER_QUESTION,
    CLASSIFY_TEXT,
    EXTRACT_ENTITIES,
    EXTRACT_PROPERTIES,
    FILTER_DOCUMENT,
    PLAN_QUERY,
    PromptTemplate,
    SUMMARIZE_COLLECTION,
    SUMMARIZE_DOCUMENT,
    append_section,
    parse_task_prompt,
    render_task_prompt,
    split_into_chunks,
)
from .simulated import SimulatedLLM
from .tokens import count_tokens, truncate_to_tokens

__all__ = [
    "ANSWER_QUESTION",
    "CLASSIFY_TEXT",
    "CallRecord",
    "CircuitBreaker",
    "CircuitOpenError",
    "ContextWindowExceededError",
    "CostSummary",
    "CostTracker",
    "DEFAULT_MODELS",
    "EXTRACT_ENTITIES",
    "EXTRACT_PROPERTIES",
    "FILTER_DOCUMENT",
    "LLMClient",
    "LLMError",
    "LLMResponse",
    "LLMTimeoutError",
    "MalformedOutputError",
    "ModelSpec",
    "PLAN_QUERY",
    "PromptTemplate",
    "RateLimitError",
    "RateLimiter",
    "ReliableLLM",
    "SUMMARIZE_COLLECTION",
    "SUMMARIZE_DOCUMENT",
    "SimulatedLLM",
    "TransientLLMError",
    "UnknownModelError",
    "Usage",
    "append_section",
    "count_tokens",
    "get_model_spec",
    "parse_task_prompt",
    "render_task_prompt",
    "repair_json",
    "split_into_chunks",
    "truncate_to_tokens",
]
