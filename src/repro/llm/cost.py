"""Cost and virtual-latency accounting across LLM calls.

Luna's optimizer (paper §6.1) "makes trade-offs based on cost vs
efficiency". The :class:`CostTracker` is the ledger those trade-offs are
measured against: every call is recorded with its model, token usage,
dollar cost and virtual latency, and benches report the aggregates.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .base import ModelSpec, Usage, get_model_spec


@dataclass
class CallRecord:
    """One completion call as seen by the ledger."""

    model: str
    input_tokens: int
    output_tokens: int
    cost_usd: float
    latency_s: float
    cached: bool = False
    tag: str = ""


@dataclass
class CostSummary:
    """Aggregate view over a set of call records."""

    calls: int = 0
    cached_calls: int = 0
    input_tokens: int = 0
    output_tokens: int = 0
    cost_usd: float = 0.0
    latency_s: float = 0.0

    @property
    def total_tokens(self) -> int:
        """Input plus output tokens."""
        return self.input_tokens + self.output_tokens


class CostTracker:
    """Thread-safe ledger of LLM usage.

    Calls may be tagged (e.g. with the query-plan operator that issued
    them) so per-operator traces can show where the money went.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: List[CallRecord] = []

    def record(
        self,
        model: str,
        usage: Usage,
        latency_s: float,
        cached: bool = False,
        tag: str = "",
        spec: Optional[ModelSpec] = None,
    ) -> CallRecord:
        """Record one call. Cached calls cost nothing and take no time."""
        spec = spec or get_model_spec(model)
        cost = 0.0 if cached else spec.cost_usd(usage.input_tokens, usage.output_tokens)
        record = CallRecord(
            model=model,
            input_tokens=usage.input_tokens,
            output_tokens=usage.output_tokens,
            cost_usd=cost,
            latency_s=0.0 if cached else latency_s,
            cached=cached,
            tag=tag,
        )
        with self._lock:
            self._records.append(record)
        return record

    def records(self) -> List[CallRecord]:
        """A snapshot list of all recorded entries."""
        with self._lock:
            return list(self._records)

    def reset(self) -> None:
        """Discard all recorded entries."""
        with self._lock:
            self._records.clear()

    def summary(self, tag: Optional[str] = None, model: Optional[str] = None) -> CostSummary:
        """Aggregate, optionally filtered by tag and/or model."""
        result = CostSummary()
        for record in self.records():
            if tag is not None and record.tag != tag:
                continue
            if model is not None and record.model != model:
                continue
            result.calls += 1
            if record.cached:
                result.cached_calls += 1
            result.input_tokens += record.input_tokens
            result.output_tokens += record.output_tokens
            result.cost_usd += record.cost_usd
            result.latency_s += record.latency_s
        return result

    def by_model(self) -> Dict[str, CostSummary]:
        """Per-model aggregate summaries."""
        models = {record.model for record in self.records()}
        return {name: self.summary(model=name) for name in sorted(models)}

    def by_tag(self) -> Dict[str, CostSummary]:
        """Per-tag aggregate summaries."""
        tags = {record.tag for record in self.records()}
        return {name: self.summary(tag=name) for name in sorted(tags)}
