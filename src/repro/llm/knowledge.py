"""The simulated models' world knowledge.

A hosted LLM brings pretraining knowledge: it knows that "wind" is an
environmental factor, that "headcount reduction" is negative sentiment,
and what the US state abbreviations are. The simulated backend needs the
same knowledge in explicit form. This module is that knowledge: concept
lexicons for the domains the paper's use cases cover (NTSB aviation
incidents, financial earnings reports), plus small general-purpose
utilities (negation handling, sentiment scoring, state names).

The lexicon is intentionally imperfect in the same way embedding/LLM
matching is imperfect: concepts overlap (a "gusty wind" incident matches
both *wind* and *environmental*), and texts that merely mention a keyword
in passing can false-positive. Benchmarks measure accuracy *through* this
imperfection rather than assuming an oracle.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, List, Optional, Tuple

# ----------------------------------------------------------------------
# Concept lexicon
# ----------------------------------------------------------------------

#: concept -> keywords whose presence in a text indicates the concept.
#: Multi-word keywords are matched as phrases.
CONCEPT_KEYWORDS: Dict[str, FrozenSet[str]] = {
    # Aviation incident causes (NTSB domain).
    "wind": frozenset(
        {"wind", "gust", "gusty", "crosswind", "tailwind", "windshear", "wind shear"}
    ),
    "icing": frozenset({"icing", "ice accumulation", "iced", "frost", "freezing rain"}),
    "turbulence": frozenset({"turbulence", "turbulent"}),
    "low_visibility": frozenset(
        {"fog", "low visibility", "poor visibility", "haze", "obscured", "whiteout"}
    ),
    "thunderstorm": frozenset({"thunderstorm", "lightning", "convective activity"}),
    "environmental": frozenset(
        {
            "wind",
            "gust",
            "gusty",
            "crosswind",
            "tailwind",
            "windshear",
            "wind shear",
            "icing",
            "ice accumulation",
            "frost",
            "freezing rain",
            "turbulence",
            "turbulent",
            "fog",
            "low visibility",
            "poor visibility",
            "haze",
            "whiteout",
            "thunderstorm",
            "lightning",
            "convective activity",
            "weather",
            "snow",
            "rain",
            "density altitude",
        }
    ),
    "weather": frozenset(
        {
            "weather",
            "wind",
            "gust",
            "icing",
            "fog",
            "thunderstorm",
            "snow",
            "rain",
            "turbulence",
            "freezing rain",
            "lightning",
            "crosswind",
            "windshear",
            "wind shear",
            "low visibility",
        }
    ),
    "engine_failure": frozenset(
        {
            "engine failure",
            "total loss of engine power",
            "malfunction within the engine",
            "fatigue crack",
        }
    ),
    "mechanical": frozenset(
        {
            "engine failure",
            "mechanical",
            "malfunction",
            "fuel contamination",
            "loss of engine power",
            "landing gear collapsed",
            "landing gear malfunction",
            "electrical failure",
            "component failure",
            "fatigue crack",
            "oil starvation",
        }
    ),
    "pilot_error": frozenset(
        {
            "pilot's failure",
            "pilots failure",
            "improper",
            "misjudged",
            "failure to maintain",
            "inadequate preflight",
            "spatial disorientation",
            "loss of control",
            "fuel exhaustion",
            "delayed decision",
            "exceeded the airplane's capability",
        }
    ),
    "bird_strike": frozenset({"bird strike", "struck a bird", "flock of birds"}),
    "fuel": frozenset(
        {"fuel exhaustion", "fuel contamination", "fuel starvation", "water in the fuel"}
    ),
    "fatal": frozenset({"fatal", "fatally injured", "fatalities", "killed"}),
    "substantial_damage": frozenset({"substantial damage", "substantially damaged"}),
    "landing": frozenset({"landing", "touchdown", "approach for landing", "runway"}),
    "takeoff": frozenset({"takeoff", "departure", "initial climb"}),
    # Financial / earnings domain.
    "ceo_change": frozenset(
        {
            "new chief executive",
            "new ceo",
            "ceo transition",
            "appointed as chief executive",
            "appointed chief executive",
            "ceo stepped down",
            "succeeds",
            "chief executive officer transition",
        }
    ),
    "revenue_growth": frozenset(
        {"revenue grew", "revenue growth", "revenue increased", "revenue rose"}
    ),
    "revenue_decline": frozenset(
        {"revenue declined", "revenue fell", "revenue decreased", "revenue dropped"}
    ),
    "guidance_raised": frozenset({"raised guidance"}),
    "guidance_lowered": frozenset({"lowered guidance"}),
    "positive_outlook": frozenset(
        {
            "raised guidance",
            "strong demand",
            "record revenue",
            "optimistic",
            "exceeded expectations",
            "robust growth",
            "margin expansion",
        }
    ),
    "negative_outlook": frozenset(
        {
            "lowered guidance",
            "weak demand",
            "headcount reduction",
            "missed expectations",
            "margin compression",
            "restructuring charges",
            "cautious outlook",
        }
    ),
}

#: Phrases in a user condition that map to a concept. Checked longest-first.
CONCEPT_ALIASES: Dict[str, str] = {
    "caused by wind": "wind",
    "due to wind": "wind",
    "wind": "wind",
    "gust": "wind",
    "windshear": "wind",
    "icing": "icing",
    "ice": "icing",
    "turbulence": "turbulence",
    "fog": "low_visibility",
    "visibility": "low_visibility",
    "thunderstorm": "thunderstorm",
    "lightning": "thunderstorm",
    "environmental factors": "environmental",
    "environmentally caused": "environmental",
    "environmental": "environmental",
    "weather related": "weather",
    "weather-related": "weather",
    "weather": "weather",
    "mechanical failure": "mechanical",
    "mechanical": "mechanical",
    "engine failure": "engine_failure",
    "engine failures": "engine_failure",
    "pilot error": "pilot_error",
    "pilot's failure": "pilot_error",
    "human error": "pilot_error",
    "bird strike": "bird_strike",
    "bird": "bird_strike",
    "fuel": "fuel",
    "fatal": "fatal",
    "fatalities": "fatal",
    "substantial damage": "substantial_damage",
    "landing": "landing",
    "takeoff": "takeoff",
    "ceo changed": "ceo_change",
    "ceo change": "ceo_change",
    "new ceo": "ceo_change",
    "ceo recently changed": "ceo_change",
    "chief executive changed": "ceo_change",
    "raised guidance": "guidance_raised",
    "raised their guidance": "guidance_raised",
    "guidance raised": "guidance_raised",
    "lowered guidance": "guidance_lowered",
    "lowered their guidance": "guidance_lowered",
    "guidance lowered": "guidance_lowered",
    "cut guidance": "guidance_lowered",
    "revenue growth": "revenue_growth",
    "growing revenue": "revenue_growth",
    "revenue declined": "revenue_decline",
    "shrinking revenue": "revenue_decline",
    "positive outlook": "positive_outlook",
    "positive sentiment": "positive_outlook",
    "optimistic": "positive_outlook",
    "negative outlook": "negative_outlook",
    "negative sentiment": "negative_outlook",
    "pessimistic": "negative_outlook",
}

_NEGATION_MARKERS = ("not ", "no ", "without ", "never ", "excluding ")


def normalize(text: str) -> str:
    """Lowercase and collapse whitespace/punctuation for matching."""
    return re.sub(r"[^a-z0-9%$.\s-]", " ", text.lower()).strip()


def match_concepts(condition: str) -> List[str]:
    """Concepts referenced by a natural-language condition.

    Aliases are matched longest-first so "environmental factors" wins over
    the bare "environmental" and a "caused by wind" condition maps to
    *wind*, not *weather*.
    """
    norm = normalize(condition)
    found: List[str] = []
    for alias in sorted(CONCEPT_ALIASES, key=len, reverse=True):
        if alias in norm:
            concept = CONCEPT_ALIASES[alias]
            if concept not in found:
                found.append(concept)
            norm = norm.replace(alias, " ")
    return found


def text_matches_concept(text: str, concept: str) -> bool:
    """True if the text contains any keyword of the concept."""
    keywords = CONCEPT_KEYWORDS.get(concept)
    if keywords is None:
        return False
    norm = " " + normalize(text) + " "
    for keyword in keywords:
        if " " in keyword:
            if keyword in norm:
                return True
        elif re.search(rf"\b{re.escape(keyword)}\b", norm):
            return True
    return False


def condition_holds(condition: str, text: str) -> bool:
    """Evaluate a natural-language yes/no condition against a text.

    This is the semantic primitive behind the simulated ``llm_filter``.
    Handles simple negation ("not caused by weather") and conjunction
    ("wind and landing"). Conditions that reference no known concept fall
    back to keyword containment of the condition's content words.
    """
    norm_condition = normalize(condition)
    negated = any(marker in f" {norm_condition} " for marker in _NEGATION_MARKERS)
    concepts = match_concepts(condition)
    if concepts:
        if " or " in norm_condition and len(concepts) > 1:
            result = any(text_matches_concept(text, c) for c in concepts)
        else:
            result = all(text_matches_concept(text, c) for c in concepts)
    else:
        result = _content_words_present(norm_condition, text)
    return (not result) if negated else result


_STOPWORDS = frozenset(
    """a an and are as at be by caused due for from has have in incident
    incidents involve involved involving is it of on or report reports that
    the this to was were where which with document documents not no
    company companies""".split()
)


def _content_words_present(condition: str, text: str) -> bool:
    words = [w for w in condition.split() if w not in _STOPWORDS and len(w) > 2]
    if not words:
        return False
    norm_text = " " + normalize(text) + " "
    hits = sum(1 for w in words if re.search(rf"\b{re.escape(w)}\b", norm_text))
    return hits >= max(1, (len(words) + 1) // 2)


# ----------------------------------------------------------------------
# Sentiment
# ----------------------------------------------------------------------


def sentiment_of(text: str) -> str:
    """Crude document sentiment: 'positive', 'negative' or 'neutral'."""
    positive = sum(
        1 for kw in CONCEPT_KEYWORDS["positive_outlook"] if kw in normalize(text)
    )
    negative = sum(
        1 for kw in CONCEPT_KEYWORDS["negative_outlook"] if kw in normalize(text)
    )
    if positive > negative:
        return "positive"
    if negative > positive:
        return "negative"
    return "neutral"


# ----------------------------------------------------------------------
# US states (for location extraction)
# ----------------------------------------------------------------------

US_STATES: Dict[str, str] = {
    "Alabama": "AL", "Alaska": "AK", "Arizona": "AZ", "Arkansas": "AR",
    "California": "CA", "Colorado": "CO", "Connecticut": "CT", "Delaware": "DE",
    "Florida": "FL", "Georgia": "GA", "Hawaii": "HI", "Idaho": "ID",
    "Illinois": "IL", "Indiana": "IN", "Iowa": "IA", "Kansas": "KS",
    "Kentucky": "KY", "Louisiana": "LA", "Maine": "ME", "Maryland": "MD",
    "Massachusetts": "MA", "Michigan": "MI", "Minnesota": "MN", "Mississippi": "MS",
    "Missouri": "MO", "Montana": "MT", "Nebraska": "NE", "Nevada": "NV",
    "New Hampshire": "NH", "New Jersey": "NJ", "New Mexico": "NM", "New York": "NY",
    "North Carolina": "NC", "North Dakota": "ND", "Ohio": "OH", "Oklahoma": "OK",
    "Oregon": "OR", "Pennsylvania": "PA", "Rhode Island": "RI", "South Carolina": "SC",
    "South Dakota": "SD", "Tennessee": "TN", "Texas": "TX", "Utah": "UT",
    "Vermont": "VT", "Virginia": "VA", "Washington": "WA", "West Virginia": "WV",
    "Wisconsin": "WI", "Wyoming": "WY",
}

STATE_ABBREVS: FrozenSet[str] = frozenset(US_STATES.values())


def find_state(text: str) -> Optional[str]:
    """Extract a US state abbreviation mentioned in the text, if any.

    Prefers a ", XX" location pattern (as in "Anchorage, AK"), then full
    state names, then a bare standalone abbreviation.
    """
    match = re.search(r",\s*([A-Z]{2})\b", text)
    if match and match.group(1) in STATE_ABBREVS:
        return match.group(1)
    for name, abbrev in US_STATES.items():
        if re.search(rf"\b{re.escape(name)}\b", text):
            return abbrev
    match = re.search(r"\b([A-Z]{2})\b", text)
    if match and match.group(1) in STATE_ABBREVS:
        return match.group(1)
    return None


# ----------------------------------------------------------------------
# Dates and numbers
# ----------------------------------------------------------------------

_MONTHS = (
    "January", "February", "March", "April", "May", "June", "July",
    "August", "September", "October", "November", "December",
)
_MONTH_INDEX = {name.lower(): i + 1 for i, name in enumerate(_MONTHS)}

_DATE_RE = re.compile(
    r"\b(" + "|".join(_MONTHS) + r")\s+(\d{1,2}),\s*(\d{4})\b", re.IGNORECASE
)


def find_date(text: str) -> Optional[str]:
    """Extract the first 'Month D, YYYY' date as ISO 'YYYY-MM-DD'."""
    match = _DATE_RE.search(text)
    if match is None:
        return None
    month = _MONTH_INDEX[match.group(1).lower()]
    day = int(match.group(2))
    year = int(match.group(3))
    if not 1 <= day <= 31:
        return None
    return f"{year:04d}-{month:02d}-{day:02d}"


def find_year(text: str) -> Optional[int]:
    """Extract a 4-digit year (1900-2099), preferring one inside a date."""
    date = find_date(text)
    if date is not None:
        return int(date[:4])
    match = re.search(r"\b(19\d{2}|20\d{2})\b", text)
    return int(match.group(1)) if match else None


def find_number_after(text: str, label: str) -> Optional[float]:
    """Extract the first number following a label phrase (case-insensitive).

    Numbers that belong to caption ordinals ("Table 1.", "Figure 2.") are
    skipped — a careful reader does not take a caption number for a data
    value.
    """
    pattern = re.escape(label) + r"[^0-9\-+]{0,40}?(-?\d[\d,]*\.?\d*)"
    for match in re.finditer(pattern, text, re.IGNORECASE):
        gap = match.group(0)[: match.start(1) - match.start(0)]
        if re.search(r"\b(table|figure|fig\.?)\s*$", gap, re.IGNORECASE):
            continue
        if gap.count("\n") > 1:
            # The number lives in a different block than the label —
            # too far away to be this label's value.
            continue
        try:
            return float(match.group(1).replace(",", ""))
        except ValueError:
            continue
    return None


def extract_percentage(text: str) -> Optional[float]:
    """Extract the first percentage figure ("12.5%" or "12.5 percent")."""
    match = re.search(r"(-?\d+(?:\.\d+)?)\s*(?:%|percent)", text, re.IGNORECASE)
    return float(match.group(1)) if match else None
