"""Prompt construction and the structured task-prompt format.

Every LLM-powered transform in this stack builds its prompt through
:func:`render_task_prompt`. The prompt contains human-readable
instructions (what a hosted model would act on) *and* machine-parseable
section markers. The simulated models dispatch on the markers; a real
backend would simply ignore them. This keeps the whole prompt pipeline —
construction, token counting, context-window checks, caching keys —
identical regardless of backend.

Format::

    <<TASK:extract_properties>>
    <<SECTION:instructions>>
    Extract the following fields ...
    <<SECTION:schema>>
    {"us_state": "string", ...}
    <<SECTION:document>>
    ...document text...
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Tuple

from .errors import MalformedOutputError

_TASK_RE = re.compile(r"^<<TASK:([a-z0-9_]+)>>[ \t]*\r?$", re.MULTILINE)
_SECTION_RE = re.compile(r"^<<SECTION:([a-z0-9_]+)>>[ \t]*\r?$", re.MULTILINE)


def render_task_prompt(task: str, sections: Dict[str, str]) -> str:
    """Serialise a task name and named sections into one prompt string."""
    if not re.fullmatch(r"[a-z0-9_]+", task):
        raise ValueError(f"invalid task name: {task!r}")
    parts = [f"<<TASK:{task}>>"]
    for name, body in sections.items():
        if not re.fullmatch(r"[a-z0-9_]+", name):
            raise ValueError(f"invalid section name: {name!r}")
        parts.append(f"<<SECTION:{name}>>")
        parts.append(body.rstrip("\n"))
    return "\n".join(parts)


#: Untrusted text that *starts a line* with a marker could close its
#: own section and open a new one — prompt injection against the
#: structured format above. :func:`neutralize_markers` defuses exactly
#: that shape and nothing else.
_INJECTED_MARKER_RE = re.compile(r"^<<(TASK|SECTION):", re.MULTILINE)


def neutralize_markers(text: str) -> str:
    """Escape line-initial ``<<TASK:``/``<<SECTION:`` markers in
    untrusted text before it is interpolated into a prompt.

    ``<<SECTION:`` becomes ``<\\<SECTION:`` — no longer a marker (the
    parsers match ``^<<`` exactly) but still legible to a model. Text
    without line-initial markers passes through byte-identical, so
    prompt bytes, token counts, and cache keys are unchanged for every
    document that is not actively attempting injection. This is the
    sanitizer the ``prompt-taint`` whole-program lint requires between
    untrusted text (document bodies, gateway request input) and prompt
    construction; see docs/ANALYSIS.md.
    """
    return _INJECTED_MARKER_RE.sub(r"<\\<\1:", text)


def append_section(prefix: str, name: str, body: str) -> str:
    """Append one section to a prompt prefix built by render_task_prompt.

    Byte-for-byte equivalent to having passed the section to
    :func:`render_task_prompt` directly, so cache and dedup keys match.
    Used to hoist the static part of per-document prompts out of hot
    loops (the document text is always the final section).
    """
    if not re.fullmatch(r"[a-z0-9_]+", name):
        raise ValueError(f"invalid section name: {name!r}")
    body = body.rstrip("\n")
    return f"{prefix}\n<<SECTION:{name}>>\n{body}"


def parse_task_prompt(prompt: str) -> Tuple[str, Dict[str, str]]:
    """Recover (task, sections) from a prompt built by render_task_prompt."""
    task_match = _TASK_RE.search(prompt)
    if task_match is None:
        raise MalformedOutputError("prompt has no <<TASK:...>> marker", prompt)
    task = task_match.group(1)
    sections: Dict[str, str] = {}
    matches = list(_SECTION_RE.finditer(prompt))
    for i, match in enumerate(matches):
        start = match.end()
        end = matches[i + 1].start() if i + 1 < len(matches) else len(prompt)
        sections[match.group(1)] = prompt[start:end].strip("\n")
    return task, sections


@dataclass(frozen=True)
class PromptTemplate:
    """A reusable prompt with ``{placeholder}`` slots.

    Used by the ``llm_query`` transform (paper §5.2): "the prompt can be
    parameterized by the content of the document and/or the properties of
    the document".
    """

    task: str
    instructions: str
    required_fields: Tuple[str, ...] = ()

    def render(self, **fields: str) -> str:
        """Render the template with the given section fields."""
        missing = [name for name in self.required_fields if name not in fields]
        if missing:
            raise ValueError(f"missing prompt fields: {missing}")
        sections = {"instructions": self.instructions}
        sections.update({name: str(value) for name, value in fields.items()})
        return render_task_prompt(self.task, sections)


# ----------------------------------------------------------------------
# Built-in templates used by Sycamore transforms and Luna operators.
# ----------------------------------------------------------------------

EXTRACT_PROPERTIES = PromptTemplate(
    task="extract_properties",
    instructions=(
        "You are extracting structured metadata from a document. "
        "Given the JSON schema below, return a single JSON object whose "
        "keys are exactly the schema's field names with values taken from "
        "the document. Use null for fields that cannot be determined."
    ),
    required_fields=("schema", "document"),
)

FILTER_DOCUMENT = PromptTemplate(
    task="filter",
    instructions=(
        "You are deciding whether a document satisfies a condition. "
        "Read the condition and the document, then answer with exactly "
        "one word: 'yes' or 'no'."
    ),
    required_fields=("condition", "document"),
)

SUMMARIZE_DOCUMENT = PromptTemplate(
    task="summarize",
    instructions=(
        "Summarize the document below in at most the requested number of "
        "sentences, preserving the key facts."
    ),
    required_fields=("document",),
)

SUMMARIZE_COLLECTION = PromptTemplate(
    task="summarize_collection",
    instructions=(
        "You are given summaries or excerpts of several documents. Produce "
        "one coherent synthesis covering the main themes."
    ),
    required_fields=("documents",),
)

PLAN_QUERY = PromptTemplate(
    task="plan_query",
    instructions=(
        "You are a query planner for an unstructured-analytics system. "
        "Given a natural-language question, a data schema, and the "
        "available operators, produce a query plan as a JSON list of "
        "operator nodes. Each node has 'operation', 'description', "
        "'inputs' (list of node indexes) and operator-specific fields."
    ),
    required_fields=("question", "schema", "operators"),
)

ANSWER_QUESTION = PromptTemplate(
    task="answer_question",
    instructions=(
        "Answer the question using only the provided context passages. "
        "If the context does not contain the answer, say you do not know."
    ),
    required_fields=("question", "context"),
)

EXTRACT_ENTITIES = PromptTemplate(
    task="extract_entities",
    instructions=(
        "Extract entities and their relations from the document as a JSON "
        "list of objects with keys 'subject', 'predicate' and 'object'. "
        "Use short canonical predicates."
    ),
    required_fields=("document",),
)

CLASSIFY_TEXT = PromptTemplate(
    task="classify",
    instructions=(
        "Classify the document into exactly one of the provided categories. "
        "Reply with the category name only."
    ),
    required_fields=("categories", "document"),
)


def split_into_chunks(text: str, chunk_tokens: int, overlap_tokens: int = 0) -> List[str]:
    """Word-boundary chunking used for prompt packing and RAG ingestion."""
    if chunk_tokens <= 0:
        raise ValueError("chunk_tokens must be positive")
    if overlap_tokens < 0 or overlap_tokens >= chunk_tokens:
        raise ValueError("overlap_tokens must be in [0, chunk_tokens)")
    words = text.split()
    if not words:
        return []
    # count_tokens >= word count, so chunk_tokens words never exceed budget.
    step = max(chunk_tokens - overlap_tokens, 1)
    chunks = []
    for start in range(0, len(words), step):
        chunk_words = words[start : start + chunk_tokens]
        chunks.append(" ".join(chunk_words))
        if start + chunk_tokens >= len(words):
            break
    return chunks
