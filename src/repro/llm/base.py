"""Core LLM abstractions: model specs, responses, and the client protocol.

The paper's optimizer (§6.1) chooses between models of different cost and
quality — "GPT-4 versus Llama 7B". We model that axis explicitly with
:class:`ModelSpec`: each registered model has a quality score, per-token
pricing, latency characteristics and a context window. The simulated
models degrade output fidelity according to their quality score, so the
cost/quality trade-off the optimizer navigates is real.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional

from .errors import UnknownModelError


@dataclass(frozen=True)
class ModelSpec:
    """Static description of one model offering.

    ``quality`` in [0, 1] drives the simulated error rate (1.0 = oracle).
    Prices are dollars per million tokens, the unit hosted APIs bill in.
    ``latency_base_s`` + ``latency_per_1k_tokens_s`` define the virtual
    latency model used by the cost tracker.
    """

    name: str
    quality: float
    input_price_per_mtok: float
    output_price_per_mtok: float
    context_window: int
    latency_base_s: float = 0.2
    latency_per_1k_tokens_s: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.quality <= 1.0:
            raise ValueError(f"quality must be in [0, 1], got {self.quality}")
        if self.context_window <= 0:
            raise ValueError("context_window must be positive")

    def cost_usd(self, input_tokens: int, output_tokens: int) -> float:
        """Dollar cost of one call at this model's prices."""
        return (
            input_tokens * self.input_price_per_mtok
            + output_tokens * self.output_price_per_mtok
        ) / 1_000_000.0

    def latency_s(self, input_tokens: int, output_tokens: int) -> float:
        """Virtual wall-clock latency of one call."""
        return (
            self.latency_base_s
            + (input_tokens + output_tokens) / 1000.0 * self.latency_per_1k_tokens_s
        )


#: The built-in model tiers. ``sim-large`` stands in for a frontier model
#: (GPT-4-class pricing and quality), ``sim-small`` for a cheap open model
#: (Llama-7B-class), ``sim-medium`` in between. ``sim-oracle`` is a
#: zero-noise tier used by tests that need deterministic perfection.
DEFAULT_MODELS: Dict[str, ModelSpec] = {
    "sim-large": ModelSpec(
        name="sim-large",
        quality=0.95,
        input_price_per_mtok=10.0,
        output_price_per_mtok=30.0,
        context_window=128_000,
        latency_base_s=0.6,
        latency_per_1k_tokens_s=1.2,
    ),
    "sim-medium": ModelSpec(
        name="sim-medium",
        quality=0.85,
        input_price_per_mtok=1.0,
        output_price_per_mtok=3.0,
        context_window=32_000,
        latency_base_s=0.3,
        latency_per_1k_tokens_s=0.6,
    ),
    "sim-small": ModelSpec(
        name="sim-small",
        quality=0.70,
        input_price_per_mtok=0.1,
        output_price_per_mtok=0.3,
        context_window=8_000,
        latency_base_s=0.1,
        latency_per_1k_tokens_s=0.2,
    ),
    "sim-oracle": ModelSpec(
        name="sim-oracle",
        quality=1.0,
        input_price_per_mtok=10.0,
        output_price_per_mtok=30.0,
        context_window=1_000_000,
        latency_base_s=0.6,
        latency_per_1k_tokens_s=1.2,
    ),
}


def get_model_spec(name: str) -> ModelSpec:
    """Look up a built-in model spec by name."""
    try:
        return DEFAULT_MODELS[name]
    except KeyError:
        raise UnknownModelError(
            f"unknown model {name!r}; known: {sorted(DEFAULT_MODELS)}"
        ) from None


@dataclass
class Usage:
    """Token usage of one or more calls (additive)."""

    input_tokens: int = 0
    output_tokens: int = 0
    calls: int = 0

    @property
    def total_tokens(self) -> int:
        """Input plus output tokens."""
        return self.input_tokens + self.output_tokens

    def add(self, other: "Usage") -> None:
        """Accumulate another usage record into this one."""
        self.input_tokens += other.input_tokens
        self.output_tokens += other.output_tokens
        self.calls += other.calls


@dataclass
class LLMResponse:
    """The result of one completion call."""

    text: str
    model: str
    usage: Usage = field(default_factory=Usage)
    latency_s: float = 0.0
    cached: bool = False


class LLMClient(abc.ABC):
    """Protocol every LLM backend implements.

    ``complete`` is synchronous; batching and parallelism are layered on
    top by :class:`repro.llm.client.ReliableLLM` and the execution engine.
    """

    @abc.abstractmethod
    def complete(
        self,
        prompt: str,
        model: str = "sim-large",
        max_output_tokens: Optional[int] = None,
        temperature: float = 0.0,
    ) -> LLMResponse:
        """Generate a completion for ``prompt`` using ``model``."""
