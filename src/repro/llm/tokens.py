"""Deterministic approximate token counting.

Hosted models meter usage in tokens; the cost model (C4 optimizer bench)
and the context-window limits (C1 RAG-scaling bench) both need a stable
token count. We use the standard ~4-characters-per-token approximation,
refined by word boundaries, which tracks BPE tokenizers closely enough
for relative comparisons.
"""

from __future__ import annotations

import math

#: Average characters per token for English prose under BPE tokenizers.
CHARS_PER_TOKEN = 4.0


def count_tokens(text: str) -> int:
    """Approximate token count of ``text``.

    Uses max(words, chars/4): short texts with many small words tokenize
    near one token per word; long prose approaches the character ratio.
    Empty text counts as zero tokens.
    """
    if not text:
        return 0
    words = len(text.split())
    by_chars = math.ceil(len(text) / CHARS_PER_TOKEN)
    return max(words, by_chars)


def truncate_to_tokens(text: str, max_tokens: int) -> str:
    """Longest prefix of ``text`` whose token count is <= ``max_tokens``.

    Truncation happens on word boundaries so downstream keyword matching
    never sees half a word.
    """
    if max_tokens <= 0:
        return ""
    if count_tokens(text) <= max_tokens:
        return text
    words = text.split()
    lo, hi = 0, len(words)
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if count_tokens(" ".join(words[:mid])) <= max_tokens:
            lo = mid
        else:
            hi = mid - 1
    return " ".join(words[:lo])
