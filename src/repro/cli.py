"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``
    Build a synthetic NTSB corpus, run the Figure-3 ETL pipeline, and
    answer the paper's sample question (Figure 5) with a full explain.
``query``
    Ask an arbitrary natural-language question against a freshly-built
    corpus (``--dataset ntsb|earnings``).
``partition``
    Show the Aryn Partitioner's element inventory for one synthetic
    report (the Figure-2 view).
``chaos``
    Run a query while a seeded fault schedule batters the LLM backend
    (transient errors, rate limits, malformed output, an optional
    brownout window). Demonstrates failure containment: the run
    completes with a partial answer and a dead-letter report instead of
    crashing. All traffic flows through the shared request scheduler, so
    the report includes queue depth and dedup savings alongside the
    dead-letter counts. ``--kill-at N`` switches to the crash-recovery
    drill: a subprocess runs the query with a write-ahead journal and is
    killed hard right after node ``N`` checkpoints; the parent then
    resumes from the journal and verifies the resumed answer is
    byte-identical to an uninterrupted reference run while re-executing
    only the nodes past the last checkpoint. ``--workers N`` switches to
    the worker-kill drill: the query runs on an ``N``-worker cluster
    whose first shard is poisoned so its worker process dies mid-shard;
    the coordinator detects the death, retries the shard on a live peer,
    and the drill verifies the answer is byte-identical to a clean
    cluster run.
``cluster-stats``
    Run a query with a :class:`repro.cluster.ClusterCoordinator`
    attached to the context — so shardable LLM operators scatter across
    worker processes — and print the coordinator's shard/worker counters
    plus the ``cluster.*`` metrics registry.
``bench-shard``
    Run the sharding benchmark (single-process operator vs a 4-worker
    scatter/gather over the same corpus, byte-identity checked) and
    optionally write ``BENCH_sharding.json``.
``runtime-stats``
    Run the ETL build and a Luna query through the shared
    :class:`repro.runtime.RequestScheduler` and print its statistics —
    batch-size histogram, dedup hits, priority queue traffic, wait and
    service times.
``trace``
    Run a Luna query and print its span tree: query -> plan ->
    operators -> transforms -> LLM requests, each request line carrying
    its tokens, simulated dollars, cache/dedup provenance and scheduler
    batch link — plus the per-operator cost account. ``--json`` writes
    the same trace as a JSON document.
``metrics``
    Run the ETL build and a Luna query, then print the process-wide
    metrics registry (``--prefix`` filters, e.g. ``--prefix llm.``).
``serve``
    Stand up a :class:`repro.serving.QueryService` over a freshly-built
    corpus and serve questions through it — concurrently, with
    single-flight plan/result caching, per-tenant cost ledgers and
    admission control. ``--once`` runs a canned demonstration (repeated
    questions submitted concurrently, so the cache and coalescing
    behaviour is visible) and exits; otherwise questions are read from
    the command line or stdin.
``bench-serve``
    Run the serving benchmark (warm concurrent service vs cold
    sequential ``Luna.query`` loop, plus an overload/shedding phase) and
    optionally write ``BENCH_serving.json``.
``plan-explain``
    Run a query through the cost-based optimizer and print the
    optimizer report — the rewrites applied (predicate reorder,
    scan-filter folding, model selection, cascade annotation), the
    estimated cost before and after, and the actual cost observed —
    followed by the optimized plan. ``--policy cascade`` routes
    LLM filters/extracts through cheap-model-first cascades;
    ``--repeat N`` re-runs the question so the statistics store's
    learned selectivities feed back into later plans.
``lint``
    Run the project's static-analysis rules (``repro.analysis``) over
    source paths; exits non-zero on findings not in the committed
    baseline. ``--json`` emits a machine-readable report for CI,
    ``--sarif PATH`` a SARIF 2.1.0 log, ``--changed`` restricts the run
    to git-changed files, and ``--update-baseline`` rewrites the
    baseline (keeping justifications, dropping stale entries).
``xlint``
    Whole-program analysis (``repro.analysis.crossmod``): every module
    is parsed once into a project index, then interprocedural rules run
    over it — ``lock-order-inversion`` (cycles in the global
    lock-acquisition-order graph), ``future-escape`` (futures dropped
    across function/module boundaries), ``prompt-taint`` (untrusted
    text reaching prompt construction unsanitized), and
    ``event-loop-blocker`` (blocking primitives reachable from dispatch
    loops). ``--since REV`` scopes reporting to the touched call-graph
    slice; ``--runtime-report`` cross-checks the static lock graph
    against a ``repro.analysis.locksmith`` runtime observation report.
``plancheck``
    Statically validate a Luna logical-plan JSON file (or stdin) —
    structure, arity, references, and, with ``--schema``, field-level
    dataflow — printing the full issue report.

All commands are offline and deterministic for a given ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Optional

from . import ArynPartitioner, Luna, RequestScheduler, SycamoreContext
from .datagen import generate_earnings_corpus, generate_ntsb_corpus
from .faults import BrownoutWindow, FaultInjector, FaultSchedule
from .observability import get_registry, render_trace_tree, write_trace_json

_NTSB_SCHEMA = {
    "state": "string",
    "incident_year": "int",
    "weather_related": "bool",
    "injuries_fatal": "int",
}
_EARNINGS_SCHEMA = {
    "company": "string",
    "sector": "string",
    "revenue_musd": "float",
    "revenue_growth_pct": "float",
    "ceo_changed": "bool",
}


def _build_context(
    dataset: str,
    n_docs: int,
    seed: int,
    parallelism: int,
    scheduler: Optional[RequestScheduler] = None,
) -> SycamoreContext:
    ctx = SycamoreContext(parallelism=parallelism, seed=seed, scheduler=scheduler)
    if dataset == "ntsb":
        _, raws = generate_ntsb_corpus(n_docs, seed=seed)
        schema = _NTSB_SCHEMA
    else:
        _, raws = generate_earnings_corpus(n_docs, seed=seed)
        schema = _EARNINGS_SCHEMA
    (
        ctx.read.raw(raws)
        .partition(ArynPartitioner(seed=seed))
        .extract_properties(schema)
        .write.index(dataset)
    )
    return ctx


def _cmd_demo(args: argparse.Namespace) -> int:
    print(f"building {args.docs}-document NTSB corpus (seed {args.seed})...")
    ctx = _build_context("ntsb", args.docs, args.seed, args.parallelism)
    luna = Luna(ctx, policy=args.policy)
    result = luna.query(
        "What percent of environmentally caused incidents were due to wind?",
        index="ntsb",
    )
    print(result.explain())
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    print(f"building {args.docs}-document {args.dataset} corpus (seed {args.seed})...")
    ctx = _build_context(args.dataset, args.docs, args.seed, args.parallelism)
    luna = Luna(ctx, policy=args.policy)
    result = luna.query(args.question, index=args.dataset)
    if args.explain:
        print(result.explain())
    else:
        print("plan:")
        print(result.optimized_plan.to_natural_language())
        print(f"\nanswer: {result.answer}")
        print(
            f"(LLM calls: {result.trace.total_llm_calls()}, "
            f"cost: ${result.trace.total_cost_usd():.4f})"
        )
    return 0


def _print_scheduler_stats(scheduler: RequestScheduler) -> None:
    m = scheduler.metrics()
    histogram = m.pop("batch_size_histogram")
    print("scheduler:")
    print(
        f"  admitted: {m['admitted']} (interactive+bulk)  "
        f"rejected: {m['rejected']}  dedup hits: {m['dedup_hits']}  "
        f"(upstream calls saved: {m['dedup_hits']})"
    )
    print(
        f"  completed: {m['completed']}  failed: {m['failed']}  "
        f"cancelled: {m['cancelled']}  "
        f"queue depth now: interactive={m['queue_depth_interactive']} "
        f"bulk={m['queue_depth_bulk']} (peak {m['peak_queue_depth']})"
    )
    print(
        f"  batches: {m['batches_dispatched']} "
        f"(avg size {m['avg_batch_size']})  "
        f"avg wait: {m['avg_wait_ms']}ms  avg service: {m['avg_service_ms']}ms  "
        f"starvation promotions: {m['starvation_promotions']}"
    )
    sizes = ", ".join(f"{size}x{count}" for size, count in histogram.items())
    print(f"  batch-size histogram: {sizes or '(empty)'}")


def _make_scheduler(args: argparse.Namespace) -> RequestScheduler:
    return RequestScheduler(
        max_batch_size=args.batch_size,
        max_wait_ms=args.max_wait_ms,
        max_queue_depth=args.queue_depth,
    )


def _print_registry(prefix: str = "") -> None:
    """Print the process metrics registry (the unified telemetry view)."""
    snapshot: Dict[str, Any] = get_registry().snapshot(prefix)
    if not snapshot:
        print("  (no metrics recorded)")
        return
    for name in sorted(snapshot):
        value = snapshot[name]
        if isinstance(value, dict):  # histogram summary
            print(
                f"  {name}: count={value['count']} mean={value['mean']:.4f} "
                f"p50={value['p50']:.4f} p90={value['p90']:.4f} "
                f"p99={value['p99']:.4f} max={value['max']:.4f}"
            )
        else:
            print(f"  {name}: {value:g}")


def _cmd_chaos(args: argparse.Namespace) -> int:
    if args.kill_child is not None:
        return _chaos_kill_child(args)
    if args.kill_at is not None:
        return _chaos_recovery_drill(args)
    if args.workers is not None:
        return _chaos_worker_kill_drill(args)
    print(f"building {args.docs}-document {args.dataset} corpus (seed {args.seed})...")
    scheduler = _make_scheduler(args)
    ctx = _build_context(
        args.dataset, args.docs, args.seed, args.parallelism, scheduler=scheduler
    )

    brownouts = [args.brownout] if args.brownout else []
    try:
        schedule = FaultSchedule(
            seed=args.fault_seed,
            transient_rate=args.transient_rate,
            rate_limit_rate=args.rate_limit_rate,
            malformed_rate=args.malformed_rate,
            brownouts=tuple(brownouts),
        )
    except ValueError as exc:
        print(f"repro chaos: error: {exc}", file=sys.stderr)
        scheduler.close()
        return 2
    injector = FaultInjector(schedule)
    # Inject between the reliability layer and the backend: the ETL build
    # above ran clean; only query-time traffic sees the weather. The
    # scheduler sits *above* the reliability layer, so queued requests
    # ride out the storm behind retries and the circuit breaker.
    ctx.llm.backend = injector.wrap_llm(ctx.llm.backend)

    luna = Luna(ctx, policy=args.policy, error_policy="dead_letter")
    result = luna.query(args.question, index=args.dataset)
    print("plan:")
    print(result.optimized_plan.to_natural_language())
    print(f"\nanswer: {result.answer}")
    print(f"partial: {result.partial}")
    print(f"faults: {injector.report()}")
    print(
        f"dead-lettered: {result.trace.total_dead_lettered()}  "
        f"skipped: {result.trace.total_skipped()}  "
        f"degraded operators: {len(result.trace.errors)}"
    )
    for line in result.trace.errors:
        print(f"  - {line}")
    print(f"llm metrics: {ctx.llm.metrics()}")
    _print_scheduler_stats(scheduler)
    print("\nmetrics registry (llm/scheduler/faults):")
    for prefix in ("llm.", "scheduler.", "faults."):
        _print_registry(prefix)
    if args.trace_json:
        spans = ctx.tracer.trace_spans(result.trace.trace_id)
        path = write_trace_json(args.trace_json, spans, result.trace.cost)
        print(f"\ntrace JSON written to {path}")
    scheduler.close()
    return 0


def _canonical_answer(result: Any) -> str:
    """Byte-comparable form of a LunaResult: the answer plus the document
    provenance, canonically serialized."""
    import json as json_module

    return json_module.dumps(
        {
            "answer": result.answer,
            "supporting_documents": sorted(result.trace.supporting_documents()),
        },
        sort_keys=True,
        default=repr,
    )


def _chaos_kill_child(args: argparse.Namespace) -> int:
    """Hidden child mode of the recovery drill: run the query under a
    write-ahead journal and die hard (``os._exit``) immediately after the
    requested node's checkpoint reaches disk. Fault injection is off —
    the drill proves checkpoint/resume identity, and injected faults
    would shift the backend call schedule between runs."""
    import os

    from .lifecycle import QueryJournal

    kill_after = args.kill_child
    scheduler = _make_scheduler(args)
    ctx = _build_context(
        args.dataset, args.docs, args.seed, args.parallelism, scheduler=scheduler
    )
    journal = QueryJournal(args.journal_dir)
    original = journal.node_complete

    def crashing_node_complete(
        query_id: str, index: int, operation: str, value: Any
    ) -> None:
        original(query_id, index, operation, value)
        if index >= kill_after:
            print(
                f"[child] crash after node {index} ({operation}) checkpointed",
                flush=True,
            )
            os._exit(137)

    journal.node_complete = crashing_node_complete  # type: ignore[method-assign]
    luna = Luna(ctx, policy=args.policy, error_policy="dead_letter", journal=journal)
    luna.query(args.question, index=args.dataset, query_id=args.query_id)
    print("[child] query completed without reaching the kill point", flush=True)
    scheduler.close()
    return 3


def _chaos_recovery_drill(args: argparse.Namespace) -> int:
    """Orchestrate the kill/resume proof: reference run, crashed
    subprocess, journal resume, byte-identity check."""
    import os
    import subprocess

    from .lifecycle import QueryJournal

    print(
        f"chaos recovery drill: kill after node {args.kill_at}, "
        f"journal at {args.journal_dir}/"
    )
    print(f"building {args.docs}-document {args.dataset} corpus (seed {args.seed})...")
    scheduler = _make_scheduler(args)
    ctx = _build_context(
        args.dataset, args.docs, args.seed, args.parallelism, scheduler=scheduler
    )
    luna = Luna(ctx, policy=args.policy, error_policy="dead_letter")
    reference = luna.query(args.question, index=args.dataset)
    ref_bytes = _canonical_answer(reference)
    total_nodes = reference.trace.nodes_executed
    print(f"reference run: {total_nodes} node(s), answer: {reference.answer!r}")

    child_cmd = [
        sys.executable,
        "-m",
        "repro",
        "chaos",
        args.question,
        "--kill-child",
        str(args.kill_at),
        "--journal-dir",
        str(args.journal_dir),
        "--query-id",
        args.query_id,
        "--dataset",
        args.dataset,
        "--docs",
        str(args.docs),
        "--seed",
        str(args.seed),
        "--parallelism",
        str(args.parallelism),
        "--policy",
        args.policy,
    ]
    proc = subprocess.run(
        child_cmd, capture_output=True, text=True, env=dict(os.environ), timeout=600
    )
    for line in proc.stdout.splitlines():
        if line.startswith("[child]"):
            print(line)
    if proc.returncode != 137:
        print(
            f"drill failed: child exited {proc.returncode}, expected the "
            f"simulated crash (137)",
            file=sys.stderr,
        )
        if proc.stderr:
            print(proc.stderr, file=sys.stderr)
        scheduler.close()
        return 1

    journal = QueryJournal(args.journal_dir)
    state = journal.load(args.query_id)
    print(
        f"journal: {len(state.completed)} checkpointed node(s), "
        f"last checkpoint node {state.last_checkpoint}"
    )
    resumed_luna = Luna(
        ctx, policy=args.policy, error_policy="dead_letter", journal=journal
    )
    resumed = resumed_luna.resume(args.query_id)
    res_bytes = _canonical_answer(resumed)
    identical = res_bytes == ref_bytes
    print(
        f"resumed: {resumed.trace.nodes_replayed} node(s) replayed from the "
        f"journal, {resumed.trace.nodes_executed} re-executed"
    )
    print(f"resumed answer: {resumed.answer!r}")
    print(f"byte-identical to reference: {identical}")
    if args.trace_json:
        spans = ctx.tracer.trace_spans(resumed.trace.trace_id)
        path = write_trace_json(args.trace_json, spans, resumed.trace.cost)
        print(f"resume trace JSON written to {path}")
    scheduler.close()
    return 0 if identical else 1


def _chaos_worker_kill_drill(args: argparse.Namespace) -> int:
    """The cluster chaos drill: kill a worker process mid-shard and prove
    the coordinator's death detection + peer retry keeps the answer
    byte-identical to a clean cluster run."""
    from .cluster import ClusterConfig, ClusterCoordinator

    print(
        f"chaos worker-kill drill: {args.workers} workers, shard 0 poisoned "
        f"so its worker dies mid-shard..."
    )
    print(f"building {args.docs}-document {args.dataset} corpus (seed {args.seed})...")
    ctx = _build_context(args.dataset, args.docs, args.seed, args.parallelism)
    luna = Luna(ctx, policy=args.policy, error_policy="dead_letter")

    reference_config = ClusterConfig(n_workers=args.workers, seed=args.seed)
    with ClusterCoordinator(
        reference_config, tracer=ctx.tracer, registry=ctx.registry
    ) as reference_cluster:
        ctx.cluster = reference_cluster
        reference = luna.query(args.question, index=args.dataset)
    ref_bytes = _canonical_answer(reference)
    print(f"reference cluster run: answer {reference.answer!r}")

    chaos_config = ClusterConfig(
        n_workers=args.workers, seed=args.seed, chaos_kill_shard=0
    )
    with ClusterCoordinator(
        chaos_config, tracer=ctx.tracer, registry=ctx.registry
    ) as chaos_cluster:
        ctx.cluster = chaos_cluster
        result = luna.query(args.question, index=args.dataset)
        stats = chaos_cluster.stats()
    ctx.cluster = None
    res_bytes = _canonical_answer(result)
    identical = res_bytes == ref_bytes

    print(f"chaos run answer: {result.answer!r}")
    print(
        f"worker deaths: {stats['worker_deaths']}  "
        f"shard retries: {stats['shards']['retried']}  "
        f"shards completed: {stats['shards']['completed']}  "
        f"workers alive after heal: {stats['workers']['alive']}"
        f"/{stats['workers']['configured']}"
    )
    print(f"byte-identical to clean run: {identical}")
    print("\nmetrics registry (cluster):")
    _print_registry("cluster.")
    if args.trace_json:
        spans = ctx.tracer.trace_spans(result.trace.trace_id)
        path = write_trace_json(args.trace_json, spans, result.trace.cost)
        print(f"\ntrace JSON written to {path}")
    survived = identical and stats["worker_deaths"] >= 1
    if stats["worker_deaths"] < 1:
        print("drill failed: no worker death was observed", file=sys.stderr)
    return 0 if survived else 1


def _cmd_cluster_stats(args: argparse.Namespace) -> int:
    from .cluster import ClusterConfig, ClusterCoordinator

    print(f"building {args.docs}-document {args.dataset} corpus (seed {args.seed})...")
    ctx = _build_context(args.dataset, args.docs, args.seed, args.parallelism)
    config = ClusterConfig(
        n_workers=args.workers,
        shards_per_worker=args.shards_per_worker,
        seed=args.seed,
    )
    with ClusterCoordinator(
        config, tracer=ctx.tracer, registry=ctx.registry
    ) as cluster:
        ctx.cluster = cluster
        luna = Luna(ctx, policy=args.policy)
        result = luna.query(args.question, index=args.dataset)
        stats = cluster.stats()
    ctx.cluster = None
    print(f"\nanswer: {result.answer}")
    print(
        f"(LLM calls: {result.trace.total_llm_calls()}, "
        f"cost: ${result.trace.total_cost_usd():.4f})"
    )
    print(
        f"\ncluster: {stats['workers']['alive']}/{stats['workers']['configured']} "
        f"workers alive, {stats['shards']['per_segment']} shards per segment"
    )
    print(
        f"  segments: {stats['segments']}  "
        f"shards completed: {stats['shards']['completed']}  "
        f"reused: {stats['shards']['reused']}  "
        f"retried: {stats['shards']['retried']}  "
        f"worker deaths: {stats['worker_deaths']}"
    )
    tenant = stats["tenant"]
    print(
        f"  admission: {tenant['submitted']} segment(s) admitted, "
        f"{tenant['rejected']} shed (cluster_busy)"
    )
    print("\nmetrics registry (cluster):")
    _print_registry("cluster.")
    return 0


def _cmd_bench_shard(args: argparse.Namespace) -> int:
    import json as json_module

    from .cluster.bench import render_results, run_sharding_benchmark

    print(
        f"sharding benchmark: {args.docs} docs, {args.workers} workers x "
        f"{args.shards_per_worker} shards/worker "
        f"(latency scale {args.latency_scale})..."
    )
    results = run_sharding_benchmark(
        n_docs=args.docs,
        workers=args.workers,
        shards_per_worker=args.shards_per_worker,
        latency_scale=args.latency_scale,
        seed=args.seed,
    )
    print()
    print(render_results(results))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json_module.dump(results, handle, indent=2)
            handle.write("\n")
        print(f"\nresults written to {args.json}")
    return 0 if results["byte_identical"] else 1


def _cmd_runtime_stats(args: argparse.Namespace) -> int:
    print(f"building {args.docs}-document {args.dataset} corpus (seed {args.seed})...")
    scheduler = _make_scheduler(args)
    ctx = _build_context(
        args.dataset, args.docs, args.seed, args.parallelism, scheduler=scheduler
    )
    after_etl = scheduler.metrics()
    luna = Luna(ctx, policy=args.policy)
    result = luna.query(args.question, index=args.dataset)
    print(f"\nanswer: {result.answer}")
    print(
        f"\nETL (BULK) traffic: {after_etl['admitted']} requests in "
        f"{after_etl['batches_dispatched']} batches "
        f"(avg size {after_etl['avg_batch_size']})"
    )
    query_admitted = scheduler.metrics()["admitted"] - after_etl["admitted"]
    print(f"query (INTERACTIVE) traffic: {query_admitted} requests")
    versions = ", ".join(
        f"{name}@{version}" for name, version in sorted(ctx.catalog.versions().items())
    )
    print(
        f"catalog version: {ctx.catalog.version()} ({versions or 'no indexes'})"
    )
    _print_scheduler_stats(scheduler)
    print("\nmetrics registry (full):")
    _print_registry()
    scheduler.close()
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    print(f"building {args.docs}-document {args.dataset} corpus (seed {args.seed})...")
    scheduler = _make_scheduler(args)
    ctx = _build_context(
        args.dataset, args.docs, args.seed, args.parallelism, scheduler=scheduler
    )
    luna = Luna(ctx, policy=args.policy)
    result = luna.query(args.question, index=args.dataset)
    spans = ctx.tracer.trace_spans(result.trace.trace_id)
    print(f"\nanswer: {result.answer}")
    print(f"\ntrace {result.trace.trace_id} ({len(spans)} spans):")
    print(render_trace_tree(spans, max_spans=args.max_spans))
    if result.trace.cost is not None:
        print("\ncost account:")
        print(result.trace.cost.render())
    if args.json:
        path = write_trace_json(args.json, spans, result.trace.cost)
        print(f"\ntrace JSON written to {path}")
    scheduler.close()
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    print(f"building {args.docs}-document {args.dataset} corpus (seed {args.seed})...")
    scheduler = _make_scheduler(args)
    ctx = _build_context(
        args.dataset, args.docs, args.seed, args.parallelism, scheduler=scheduler
    )
    luna = Luna(ctx, policy=args.policy)
    result = luna.query(args.question, index=args.dataset)
    print(f"\nanswer: {result.answer}")
    prefix = args.prefix
    print(f"\nmetrics registry{f' (prefix {prefix!r})' if prefix else ''}:")
    _print_registry(prefix)
    scheduler.close()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serving import Overloaded, QueryService, ServiceConfig

    print(f"building {args.docs}-document {args.dataset} corpus (seed {args.seed})...")
    ctx = _build_context(args.dataset, args.docs, args.seed, args.parallelism)
    config = ServiceConfig(
        max_workers=args.workers,
        max_queue_depth=args.service_queue_depth,
        policy=args.policy,
    )
    if args.port is not None:
        return _serve_gateway(args, ctx, config)
    default_question = "How many incidents were caused by wind?"
    if args.once:
        # The canned demo: the same question submitted concurrently (one
        # plan, one execution, N answers), then a rephrasing (result-cache
        # hit) and a distinct question (a genuine miss).
        questions = [default_question] * 3 + [
            "how many incidents were caused by wind",
            "How many incidents had fatal injuries?",
        ]
    elif args.questions:
        questions = list(args.questions)
    else:
        questions = [line.strip() for line in sys.stdin if line.strip()]
        if not questions:
            questions = [default_question]
    with QueryService(ctx, config) as service:
        session = service.open_session(tenant=args.tenant, index=args.dataset)
        tickets = []
        for question in questions:
            try:
                tickets.append(service.submit(question, session=session))
            except Overloaded as exc:
                print(
                    f"  shed ({exc.reason}, retry after "
                    f"{exc.retry_after_s:.2f}s): {question}"
                )
        for ticket in tickets:
            served = ticket.result(timeout=300)
            print(
                f"[{served.query_id}] {served.question}\n"
                f"  answer: {served.answer}\n"
                f"  plan cache: {served.plan_cache}  "
                f"result cache: {served.result_cache}  "
                f"spent ${served.cost_usd:.4f}  saved ${served.saved_usd:.4f}  "
                f"{served.latency_s * 1000:.0f}ms"
            )
        print()
        print(session.render())
        stats = service.stats()
        print(
            f"\nservice: {stats['completed']} completed, "
            f"{stats['rejected']} shed, "
            f"{stats['plans_computed']} plans computed, "
            f"{stats['executions']} executions, "
            f"plan cache {stats['plan_cache']['hit_rate']:.0%} hit, "
            f"result cache {stats['result_cache']['hit_rate']:.0%} hit"
        )
        ledger = service.tenant_account(args.tenant)
        print(
            f"tenant {args.tenant!r}: spent ${ledger.cost_usd:.4f}, "
            f"saved ${ledger.saved_usd:.4f} via serving caches"
        )
    return 0


def _serve_gateway(args: argparse.Namespace, ctx: Any, config: Any) -> int:
    """``serve --port N``: a real HTTP server in front of QueryService.

    Binds (port 0 = ephemeral), optionally writes the bound port to
    ``--port-file`` so scripts can discover it, then blocks until
    SIGTERM/SIGINT and drains gracefully (every admitted query finishes
    before exit).
    """
    from .gateway import Gateway, GatewayConfig
    from .serving import QueryService

    tokens = dict(pair.split("=", 1) for pair in args.token or [])
    gateway = Gateway(
        QueryService(ctx, config),
        GatewayConfig(
            host=args.host,
            port=args.port,
            tokens=tokens or None,
            rate_per_s=args.rate,
            log_sink=print if args.access_log else None,
        ),
    ).start()
    gateway.install_signal_handlers()
    print(f"gateway listening on http://{gateway.host}:{gateway.port}")
    print(f"  POST /v1/query {{'question': ..., 'index': {args.dataset!r}}}")
    print("  GET  /ops/health /ops/metrics /ops/stats ...  (SIGTERM drains)")
    if args.port_file:
        from pathlib import Path

        Path(args.port_file).write_text(str(gateway.port), encoding="utf-8")
    try:
        gateway.wait_for_shutdown()
    finally:
        print("draining gateway...")
        gateway.close(drain=True)
        print("gateway closed")
    return 0


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    import json as json_module

    from .serving.bench import render_results, run_serving_benchmark

    print(
        f"serving benchmark: {args.docs} docs, {args.repeats} repeats, "
        f"{args.tenants} tenants, {args.workers} workers "
        f"(latency scale {args.latency_scale})..."
    )
    results = run_serving_benchmark(
        n_docs=args.docs,
        repeats=args.repeats,
        tenants=args.tenants,
        workers=args.workers,
        latency_scale=args.latency_scale,
        seed=args.seed,
    )
    print()
    print(render_results(results))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json_module.dump(results, handle, indent=2)
            handle.write("\n")
        print(f"\nresults written to {args.json}")
    return 0


def _cmd_partition(args: argparse.Namespace) -> int:
    _, raws = generate_ntsb_corpus(1, seed=args.seed)
    doc = ArynPartitioner(seed=args.seed).partition(raws[0])
    print(f"document {doc.doc_id}: {len(doc.elements)} elements")
    for element in doc.elements:
        preview = element.text_representation().replace("\n", " ")[:64]
        page = f"p{element.page}" if element.page is not None else "--"
        print(f"  [{page}] {element.type:<15} {preview}")
    return 0


def _parse_brownout(value: str) -> BrownoutWindow:
    start, sep, end = value.partition(":")
    try:
        if not sep:
            raise ValueError
        return BrownoutWindow(int(start), int(end))
    except ValueError as exc:
        detail = f" ({exc})" if str(exc) else ""
        raise argparse.ArgumentTypeError(
            f"expected START:END call-index window, e.g. 5:25; got {value!r}{detail}"
        ) from None


def _cmd_plan_explain(args: argparse.Namespace) -> int:
    from .optimizer import StatsStore

    print(f"building {args.docs}-document {args.dataset} corpus (seed {args.seed})...")
    ctx = _build_context(args.dataset, args.docs, args.seed, args.parallelism)
    stats = StatsStore(path=args.stats, registry=ctx.registry)
    luna = Luna(ctx, policy=args.policy, stats_store=stats)
    for run in range(max(1, args.repeat)):
        result = luna.query(args.question, index=args.dataset)
        if args.repeat > 1:
            print(f"\n=== run {run + 1}/{args.repeat} ===")
        report = result.trace.optimizer_report
        if report is not None:
            print()
            print(report.render())
        print("\noptimized plan:")
        print(result.optimized_plan.to_natural_language())
        print(f"\nanswer: {result.answer}")
        print(
            f"(LLM calls: {result.trace.total_llm_calls()}, "
            f"cost: ${result.trace.total_cost_usd():.4f})"
        )
    if args.stats:
        stats.save()
        print(f"\nstatistics saved to {args.stats}")
    return 0


def _git_changed_files(since: str = "HEAD") -> List[str]:
    """Python files touched since ``since`` (diff + untracked), for
    ``lint --changed`` / ``xlint --since``. Empty on any git failure."""
    import subprocess

    files: List[str] = []
    try:
        diff = subprocess.run(
            ["git", "diff", "--name-only", since, "--"],
            capture_output=True,
            text=True,
            check=True,
            timeout=30,
        ).stdout
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard"],
            capture_output=True,
            text=True,
            check=True,
            timeout=30,
        ).stdout
        for line in (diff + untracked).splitlines():
            line = line.strip()
            if line.endswith(".py"):
                files.append(line)
    except Exception as exc:  # pragma: no cover - no git / bad rev
        print(f"warning: could not determine changed files ({exc})", file=sys.stderr)
    return sorted(set(files))


def _cmd_lint(args: argparse.Namespace) -> int:
    import json as _json

    from .analysis import Baseline, RULES, lint_paths, write_baseline, write_sarif

    paths = args.paths or ["src"]
    if args.changed:
        changed = _git_changed_files(args.since or "HEAD")
        paths = [p for p in changed if _path_under_any(p, args.paths or ["src"])]
        if not paths:
            print("no changed python files to lint")
            return 0
    baseline = Baseline.load(args.baseline)
    report = lint_paths(paths, baseline=baseline)
    if args.write_baseline or args.update_baseline:
        accepted = report.findings + report.baselined
        write_baseline(args.baseline, accepted, justifications=baseline.justifications())
        dropped = len(report.stale)
        print(
            f"wrote {len(accepted)} finding(s) to {args.baseline}"
            + (f" (dropped {dropped} stale entr{'y' if dropped == 1 else 'ies'})" if dropped else "")
        )
        return 0
    if args.sarif:
        descriptions = {rule_id: rule.description for rule_id, rule in RULES.items()}
        write_sarif(args.sarif, report, tool_name="repro-lint", rule_descriptions=descriptions)
        print(f"wrote SARIF report to {args.sarif}", file=sys.stderr)
    if args.json:
        print(_json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    return 0 if report.ok else 1


def _path_under_any(path: str, roots: List[str]) -> bool:
    from pathlib import Path as _Path

    parts = _Path(path).parts
    for root in roots:
        root_parts = _Path(root).parts
        if parts[: len(root_parts)] == root_parts:
            return True
    return False


def _cmd_xlint(args: argparse.Namespace) -> int:
    import json as _json

    from .analysis import Baseline, write_baseline, write_sarif
    from .analysis.crossmod import XRULES, build_index, xlint_paths

    paths = args.paths or ["src/repro"]
    rules = args.rules.split(",") if args.rules else None
    baseline = Baseline.load(args.baseline)
    changed = None
    if args.since:
        changed = _git_changed_files(args.since)
        if not changed:
            print(f"no python files changed since {args.since}")
            return 0
    index = build_index(paths)
    report = xlint_paths(
        paths, rules=rules, baseline=baseline, changed_files=changed, index=index
    )
    if args.update_baseline:
        accepted = report.findings + report.baselined
        write_baseline(args.baseline, accepted, justifications=baseline.justifications())
        dropped = len(report.stale)
        print(
            f"wrote {len(accepted)} finding(s) to {args.baseline}"
            + (f" (dropped {dropped} stale entr{'y' if dropped == 1 else 'ies'})" if dropped else "")
        )
        return 0
    cross = None
    if args.runtime_report:
        from .analysis import locksmith
        from .analysis.crossmod import build_lock_graph

        runtime = locksmith.load_report(args.runtime_report)
        cross = locksmith.cross_check(build_lock_graph(index), runtime)
    if args.sarif:
        descriptions = {rule_id: rule.description for rule_id, rule in XRULES.items()}
        write_sarif(args.sarif, report, tool_name="repro-xlint", rule_descriptions=descriptions)
        print(f"wrote SARIF report to {args.sarif}", file=sys.stderr)
    if args.json:
        payload = report.to_dict()
        if cross is not None:
            payload["lock_cross_check"] = cross
        print(_json.dumps(payload, indent=2))
    else:
        print(report.render())
        if cross is not None:
            print()
            print(
                f"lock cross-check: {len(cross['confirmed'])} static cycle(s) "
                f"confirmed at runtime, {len(cross['static_only'])} static-only, "
                f"{len(cross['runtime_only'])} runtime-only inversion(s)"
            )
            for entry in cross["confirmed"]:
                print(f"  CONFIRMED cycle: {' -> '.join(entry['cycle'])}")
            for inv in cross["runtime_only"]:
                print(f"  runtime-only: {inv['a']} -> {inv['b']}")
    failed = bool(report.findings) or bool(cross and cross["runtime_only"])
    return 1 if failed else 0


def _cmd_plancheck(args: argparse.Namespace) -> int:
    import json as _json

    from .analysis import check_plan
    from .luna.operators import LogicalPlan, PlanValidationError

    if args.plan == "-":
        payload = sys.stdin.read()
    else:
        with open(args.plan, "r", encoding="utf-8") as handle:
            payload = handle.read()
    schema = None
    if args.schema:
        with open(args.schema, "r", encoding="utf-8") as handle:
            schema = _json.load(handle)
        # Accept both a bare field map and a schema_for_planner payload.
        if isinstance(schema, dict) and "fields" in schema:
            schema = schema["fields"]
    try:
        plan = LogicalPlan.from_json(payload)
    except (PlanValidationError, _json.JSONDecodeError) as exc:
        print(f"plan does not parse: {exc}")
        return 1
    report = check_plan(plan, schema=schema)
    if args.json:
        print(_json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser for the CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the Aryn LLM-powered unstructured analytics system",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--seed", type=int, default=0, help="corpus/model seed")
        p.add_argument("--docs", type=int, default=60, help="corpus size")
        p.add_argument("--parallelism", type=int, default=4)
        p.add_argument(
            "--policy",
            choices=("quality", "balanced", "cost", "cascade"),
            default="balanced",
            help="optimizer policy",
        )

    demo = sub.add_parser("demo", help="run the paper's Figure 3 + Figure 5 demo")
    common(demo)
    demo.set_defaults(handler=_cmd_demo)

    query = sub.add_parser("query", help="ask a natural-language question")
    common(query)
    query.add_argument("question", help="the natural-language question")
    query.add_argument(
        "--dataset", choices=("ntsb", "earnings"), default="ntsb"
    )
    query.add_argument(
        "--explain", action="store_true", help="print the full audit trail"
    )
    query.set_defaults(handler=_cmd_query)

    def scheduler_opts(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--batch-size", type=int, default=8, help="scheduler max batch size"
        )
        p.add_argument(
            "--max-wait-ms",
            type=float,
            default=2.0,
            help="micro-batch window in milliseconds",
        )
        p.add_argument(
            "--queue-depth",
            type=int,
            default=1024,
            help="per-priority admission bound",
        )

    chaos = sub.add_parser(
        "chaos", help="run a query under seeded fault injection"
    )
    common(chaos)
    scheduler_opts(chaos)
    chaos.add_argument(
        "question",
        nargs="?",
        default="How many incidents were caused by wind?",
        help="the natural-language question",
    )
    chaos.add_argument("--dataset", choices=("ntsb", "earnings"), default="ntsb")
    chaos.add_argument("--fault-seed", type=int, default=42, help="fault schedule seed")
    chaos.add_argument("--transient-rate", type=float, default=0.15)
    chaos.add_argument("--rate-limit-rate", type=float, default=0.05)
    chaos.add_argument("--malformed-rate", type=float, default=0.05)
    chaos.add_argument(
        "--brownout",
        type=_parse_brownout,
        default=None,
        metavar="START:END",
        help="call-index window of 100%% transient failures, e.g. 5:25",
    )
    chaos.add_argument(
        "--trace-json",
        default=None,
        metavar="PATH",
        help="write the chaos query's trace as a JSON document",
    )
    chaos.add_argument(
        "--kill-at",
        type=int,
        default=None,
        metavar="NODE",
        help="crash-recovery drill: kill a subprocess query right after "
        "this plan node checkpoints, resume from the journal, and "
        "verify the answer is byte-identical to an uninterrupted run",
    )
    chaos.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker-kill drill: run the query on an N-worker cluster with "
        "shard 0 poisoned so its worker dies mid-shard, and verify the "
        "retried answer is byte-identical to a clean cluster run",
    )
    chaos.add_argument("--kill-child", type=int, default=None, help=argparse.SUPPRESS)
    chaos.add_argument(
        "--journal-dir",
        default=".repro-journal",
        help="write-ahead journal directory for the recovery drill",
    )
    chaos.add_argument(
        "--query-id",
        default="chaos-drill",
        help="journal query id for the recovery drill",
    )
    chaos.set_defaults(handler=_cmd_chaos)

    runtime_stats = sub.add_parser(
        "runtime-stats",
        help="run ETL + a query through the request scheduler and report stats",
    )
    common(runtime_stats)
    scheduler_opts(runtime_stats)
    runtime_stats.add_argument(
        "question",
        nargs="?",
        default="How many incidents were caused by wind?",
        help="the natural-language question",
    )
    runtime_stats.add_argument(
        "--dataset", choices=("ntsb", "earnings"), default="ntsb"
    )
    runtime_stats.set_defaults(handler=_cmd_runtime_stats)

    trace = sub.add_parser(
        "trace",
        help="run a query and print its span tree with per-operator costs",
    )
    common(trace)
    scheduler_opts(trace)
    trace.add_argument(
        "question",
        nargs="?",
        default="How many incidents were caused by wind?",
        help="the natural-language question",
    )
    trace.add_argument("--dataset", choices=("ntsb", "earnings"), default="ntsb")
    trace.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the trace as a JSON document",
    )
    trace.add_argument(
        "--max-spans", type=int, default=400, help="tree-rendering span cap"
    )
    trace.set_defaults(handler=_cmd_trace)

    metrics = sub.add_parser(
        "metrics",
        help="run ETL + a query and print the process metrics registry",
    )
    common(metrics)
    scheduler_opts(metrics)
    metrics.add_argument(
        "question",
        nargs="?",
        default="How many incidents were caused by wind?",
        help="the natural-language question",
    )
    metrics.add_argument(
        "--dataset", choices=("ntsb", "earnings"), default="ntsb"
    )
    metrics.add_argument(
        "--prefix",
        default="",
        help="only print metrics whose name starts with this (e.g. llm.)",
    )
    metrics.set_defaults(handler=_cmd_metrics)

    serve = sub.add_parser(
        "serve",
        help="serve questions through the concurrent QueryService",
    )
    common(serve)
    serve.add_argument(
        "questions",
        nargs="*",
        help="questions to serve (default: read stdin, or --once demo)",
    )
    serve.add_argument("--dataset", choices=("ntsb", "earnings"), default="ntsb")
    serve.add_argument(
        "--once",
        action="store_true",
        help="run the canned cache/coalescing demonstration and exit",
    )
    serve.add_argument("--tenant", default="cli", help="tenant to serve as")
    serve.add_argument("--workers", type=int, default=4, help="service worker threads")
    serve.add_argument(
        "--service-queue-depth",
        type=int,
        default=32,
        help="admission bound (past it, submissions are shed)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=None,
        metavar="N",
        help="serve over HTTP on this port (0 = ephemeral) instead of "
        "answering in-process; SIGTERM drains gracefully",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port-file",
        default=None,
        metavar="PATH",
        help="write the bound port here once listening (for scripts)",
    )
    serve.add_argument(
        "--token",
        action="append",
        metavar="TOKEN=TENANT",
        help="enable bearer auth; repeatable credential table entries",
    )
    serve.add_argument(
        "--rate",
        type=float,
        default=0.0,
        metavar="R",
        help="per-tenant token-bucket rate limit (requests/s; 0 = off)",
    )
    serve.add_argument(
        "--access-log",
        action="store_true",
        help="print one structured access-log line per request",
    )
    serve.set_defaults(handler=_cmd_serve)

    bench_serve = sub.add_parser(
        "bench-serve",
        help="benchmark warm concurrent serving vs a cold sequential loop",
    )
    bench_serve.add_argument("--seed", type=int, default=13)
    bench_serve.add_argument("--docs", type=int, default=24, help="corpus size")
    bench_serve.add_argument(
        "--repeats", type=int, default=3, help="times each question is asked"
    )
    bench_serve.add_argument("--tenants", type=int, default=2)
    bench_serve.add_argument("--workers", type=int, default=4)
    bench_serve.add_argument(
        "--latency-scale",
        type=float,
        default=0.01,
        help="fraction of virtual LLM latency really slept",
    )
    bench_serve.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write the results JSON (e.g. BENCH_serving.json)",
    )
    bench_serve.set_defaults(handler=_cmd_bench_serve)

    cluster_stats = sub.add_parser(
        "cluster-stats",
        help="run a query over a worker cluster and report shard/worker stats",
    )
    common(cluster_stats)
    cluster_stats.add_argument(
        "question",
        nargs="?",
        default="How many incidents were caused by wind?",
        help="the natural-language question",
    )
    cluster_stats.add_argument(
        "--dataset", choices=("ntsb", "earnings"), default="ntsb"
    )
    cluster_stats.add_argument(
        "--workers", type=int, default=2, help="cluster worker processes"
    )
    cluster_stats.add_argument(
        "--shards-per-worker", type=int, default=2, help="shards per worker"
    )
    cluster_stats.set_defaults(handler=_cmd_cluster_stats)

    bench_shard = sub.add_parser(
        "bench-shard",
        help="benchmark sharded scatter/gather vs a single-process operator",
    )
    bench_shard.add_argument("--seed", type=int, default=0)
    bench_shard.add_argument(
        "--docs", type=int, default=5000, help="benchmark corpus size"
    )
    bench_shard.add_argument("--workers", type=int, default=4)
    bench_shard.add_argument("--shards-per-worker", type=int, default=2)
    bench_shard.add_argument(
        "--latency-scale",
        type=float,
        default=0.01,
        help="fraction of virtual LLM latency really slept",
    )
    bench_shard.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write the results JSON (e.g. BENCH_sharding.json)",
    )
    bench_shard.set_defaults(handler=_cmd_bench_shard)

    partition = sub.add_parser(
        "partition", help="show the partitioner's output for one report"
    )
    partition.add_argument("--seed", type=int, default=0)
    partition.set_defaults(handler=_cmd_partition)

    plan_explain = sub.add_parser(
        "plan-explain",
        help="run a query and print the cost-based optimizer's report",
    )
    common(plan_explain)
    plan_explain.add_argument(
        "question",
        nargs="?",
        default="How many incidents were caused by wind?",
        help="the natural-language question",
    )
    plan_explain.add_argument(
        "--dataset", choices=("ntsb", "earnings"), default="ntsb"
    )
    plan_explain.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="N",
        help="ask the question N times so learned statistics feed back",
    )
    plan_explain.add_argument(
        "--stats",
        default=None,
        metavar="PATH",
        help="statistics store file to load from / save to",
    )
    plan_explain.set_defaults(handler=_cmd_plan_explain)

    lint = sub.add_parser(
        "lint", help="run the project static-analysis rules over source paths"
    )
    lint.add_argument(
        "paths", nargs="*", help="files/directories to lint (default: src)"
    )
    lint.add_argument(
        "--json", action="store_true", help="emit a JSON report (for CI artifacts)"
    )
    lint.add_argument(
        "--baseline",
        default=".lint-baseline.json",
        help="baseline file of accepted findings (default: %(default)s)",
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept all current findings into the baseline and exit 0",
    )
    lint.add_argument(
        "--update-baseline",
        action="store_true",
        help=(
            "rewrite the baseline from current findings, preserving "
            "justifications and dropping stale entries"
        ),
    )
    lint.add_argument(
        "--changed",
        action="store_true",
        help="lint only python files changed in git (see --since)",
    )
    lint.add_argument(
        "--since",
        default=None,
        metavar="REV",
        help="git revision --changed diffs against (default: HEAD)",
    )
    lint.add_argument(
        "--sarif",
        default=None,
        metavar="PATH",
        help="also write a SARIF 2.1.0 report to PATH",
    )
    lint.set_defaults(handler=_cmd_lint)

    xlint = sub.add_parser(
        "xlint",
        help=(
            "whole-program analysis: lock-order inversions, future "
            "escapes, prompt taint, event-loop blockers"
        ),
    )
    xlint.add_argument(
        "paths", nargs="*", help="source roots to index (default: src/repro)"
    )
    xlint.add_argument(
        "--json", action="store_true", help="emit a JSON report (for CI artifacts)"
    )
    xlint.add_argument(
        "--baseline",
        default=".xlint-baseline.json",
        help="baseline file of accepted findings (default: %(default)s)",
    )
    xlint.add_argument(
        "--update-baseline",
        action="store_true",
        help=(
            "rewrite the baseline from current findings, preserving "
            "justifications and dropping stale entries"
        ),
    )
    xlint.add_argument(
        "--since",
        default=None,
        metavar="REV",
        help=(
            "report only findings in the call-graph slice touched since "
            "REV (the index still covers the whole program)"
        ),
    )
    xlint.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    xlint.add_argument(
        "--sarif",
        default=None,
        metavar="PATH",
        help="also write a SARIF 2.1.0 report to PATH",
    )
    xlint.add_argument(
        "--runtime-report",
        default=None,
        metavar="PATH",
        help=(
            "locksmith runtime report (JSON) to cross-check against the "
            "static lock-order graph"
        ),
    )
    xlint.set_defaults(handler=_cmd_xlint)

    plancheck = sub.add_parser(
        "plancheck", help="statically validate a Luna logical-plan JSON file"
    )
    plancheck.add_argument(
        "plan", help="path to the plan JSON ('-' reads stdin)"
    )
    plancheck.add_argument(
        "--schema",
        help="JSON file with the index field schema (enables field checks)",
    )
    plancheck.add_argument(
        "--json", action="store_true", help="emit the issue report as JSON"
    )
    plancheck.set_defaults(handler=_cmd_plancheck)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
