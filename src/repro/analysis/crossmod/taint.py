"""``prompt-taint``: untrusted text must not reach prompt assembly raw.

The source paper's trust model is blunt: document bodies are *data*,
but an LLM prompt is *code*. This stack's prompts are structured —
``<<TASK:...>>`` / ``<<SECTION:...>>`` markers that the simulated
models (and the parsers in :mod:`repro.llm.prompts`) dispatch on — so a
document whose text contains a line-initial marker can smuggle its own
sections into the prompt: classic prompt injection, one string-format
away. Gateway request bodies and query strings are the same class of
input arriving over the network.

**Sources** — untrusted text:

* ``.text`` / ``.text_representation()`` reads on docmodel
  ``Document``/``Element`` values (resolved by type where annotations
  allow, by receiver name — ``doc``, ``element``, ``chunk`` … — where
  they don't), and ``.properties`` lookups (property values were
  extracted *from* untrusted text by an LLM);
* ``str``-annotated parameters carrying user/document text by name
  (``question``, ``text``, ``body``, …);
* in the gateway package: parsed request bodies and query strings
  (``json.loads``, ``parse_qsl`` …) and everything subscripted out of
  them.

**Sinks** — prompt construction: section values handed to
``render_task_prompt`` / ``append_section`` / ``PromptTemplate.render``,
raw tainted strings passed to ``.complete*()``, plus any parameter of a
repro function that (by interprocedural summary) forwards into one of
those sinks.

**Sanitizer** — :func:`repro.llm.prompts.neutralize_markers` (and any
name in :data:`SANITIZERS`): escapes line-initial task/section markers
so untrusted text cannot close its section. Passing a value through a
sanitizer clears its taint.

**Escape hatch** — ``# repro: taint-safe[reason]`` on the sink line (or
the line above) accepts the flow; the written reason is mandatory — a
bare ``taint-safe`` tag is itself a finding (``unjustified-taint-safe``).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from ..engine import Finding
from .dataflow import own_nodes
from .index import FunctionInfo, ModuleInfo, ProjectIndex
from .runner import CrossRule, xregister

__all__ = ["PromptTaint", "UnjustifiedTaintSafe", "TAINT_SAFE_RE", "SANITIZERS"]

#: ``# repro: taint-safe[reason]`` — reason text is mandatory.
TAINT_SAFE_RE = re.compile(r"#\s*repro:\s*taint-safe(?:\[([^\]]*)\])?")

#: Declared sanitizers: routing untrusted text through one of these
#: clears its taint (see repro.llm.prompts.neutralize_markers).
SANITIZERS: FrozenSet[str] = frozenset(
    {"neutralize_markers", "fence_untrusted", "sanitize_untrusted"}
)

#: Attribute reads that yield untrusted text from a document-shaped value.
_TEXT_ATTRS = {"text", "raw_text", "binary_representation", "properties"}
_TEXT_METHODS = {"text_representation"}

#: Receiver names treated as document-shaped when types don't resolve.
_DOCISH_RE = re.compile(
    r"(?:^|_)(?:doc|document|docs|documents|element|elements|el|chunk|chunks|"
    r"passage|passages|record|records|row|rows)$"
)

#: docmodel classes whose instances carry untrusted text.
_TAINTED_CLASSES = ("repro.docmodel.document:", "repro.docmodel.elements:")

#: str parameters that carry user or document text by convention.
_TAINTED_PARAM_NAMES = {
    "question",
    "text",
    "body",
    "content",
    "passage",
    "snippet",
    "document_text",
    "raw",
    "raw_text",
    "condition",
}

#: Gateway calls whose results are network-controlled.
_GATEWAY_SOURCES = {"loads", "parse_qs", "parse_qsl", "unquote"}

#: The taint label for "definitely untrusted" (vs per-parameter labels).
_SRC = "src"

#: Known sink callables: qualname -> spec of which values are sunk.
#: "arg:N" = positional index N, "kwargs" = every keyword value,
#: "dict:N" = values of a dict literal at positional index N.
_SINK_FUNCS: Dict[str, Tuple[str, ...]] = {
    "repro.llm.prompts:render_task_prompt": ("dict:1", "kwargs"),
    "repro.llm.prompts:append_section": ("arg:2", "kw:body"),
    "repro.llm.prompts:PromptTemplate.render": ("kwargs",),
}

_COMPLETE_CALLS = {"complete", "complete_json", "complete_many"}


def _parse_taint_safe(source: str) -> Dict[int, Optional[str]]:
    """line -> justification (None/empty for a bare tag).

    Scans real ``#`` comments via :mod:`tokenize` — a line-scanning
    regex would also match the tag spelled inside string literals
    (error messages, docs, this very analyzer)."""
    tags: Dict[int, Optional[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = TAINT_SAFE_RE.search(token.string)
            if match is not None:
                reason = match.group(1)
                tags[token.start[0]] = reason.strip() if reason else None
    except (tokenize.TokenizeError, IndentationError):  # pragma: no cover
        pass
    return tags


class _FunctionTaint:
    """Local abstract interpretation of one function.

    Values are label sets: ``{"src"}`` for definitely-untrusted text,
    ``{"param:<name>"}`` for values derived from a parameter (used to
    build interprocedural summaries). Statements run in source order;
    branches merge by accumulation (a name tainted on any path stays
    tainted — the safe direction)."""

    def __init__(
        self,
        index: ProjectIndex,
        fn: FunctionInfo,
        sink_params: Dict[str, Set[str]],
        taint_returners: Set[str],
    ):
        self.index = index
        self.fn = fn
        self.info: ModuleInfo = index.modules[fn.module]
        self.sink_params = sink_params
        self.taint_returners = taint_returners
        self.labels: Dict[str, Set[str]] = {}
        self.sunk_labels: Dict[str, List[int]] = {}
        self.return_labels: Set[str] = set()
        self.in_gateway = fn.module.startswith("repro.gateway")
        self._seed_parameters()

    # -- seeding -------------------------------------------------------

    def _seed_parameters(self) -> None:
        args = self.fn.node.args
        all_args = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        for arg in all_args:
            labels: Set[str] = {f"param:{arg.arg}"}
            if self._param_is_source(arg):
                labels.add(_SRC)
            self.labels[arg.arg] = labels

    def _param_is_source(self, arg: ast.arg) -> bool:
        ann = self.index.resolve_annotation(self.info, arg.annotation)
        if ann is not None and ann.startswith(_TAINTED_CLASSES):
            return False  # the object itself isn't text; its reads are
        name = arg.arg.strip("_").lower()
        if name in _TAINTED_PARAM_NAMES:
            if arg.annotation is None:
                return self.in_gateway  # unannotated: only trust gateway ones
            ann_text = ast.unparse(arg.annotation)
            return "str" in ann_text
        if self.in_gateway and name in ("payload", "params", "query"):
            return True
        return False

    # -- evaluation ----------------------------------------------------

    def run(self) -> None:
        for node in self.fn.node.body:
            self._exec(node)

    def _exec(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # separate scope, analyzed on its own
        if isinstance(stmt, ast.Assign):
            labels = self._eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, labels)
            return
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._bind(stmt.target, self._eval(stmt.value))
            return
        if isinstance(stmt, ast.AugAssign):
            labels = self._eval(stmt.value) | self._eval(stmt.target)
            self._bind(stmt.target, labels)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.return_labels |= self._eval(stmt.value)
            return
        if isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
            return
        if isinstance(stmt, (ast.If, ast.For, ast.While, ast.With, ast.Try)):
            for field_name in ("items",):
                for item in getattr(stmt, field_name, []):
                    self._eval(item.context_expr)
                    if item.optional_vars is not None:
                        self._bind(item.optional_vars, set())
            if isinstance(stmt, ast.For):
                self._bind(stmt.target, self._eval(stmt.iter))
            if isinstance(stmt, (ast.If, ast.While)):
                self._eval(stmt.test)
            for body_name in ("body", "orelse", "finalbody"):
                for child in getattr(stmt, body_name, []):
                    self._exec(child)
            for handler in getattr(stmt, "handlers", []):
                for child in handler.body:
                    self._exec(child)
            return
        # Everything else (pass, raise, assert, ...): evaluate embedded
        # expressions for sink detection.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._eval(child)

    def _bind(self, target: ast.expr, labels: Set[str]) -> None:
        if isinstance(target, ast.Name):
            self.labels[target.id] = set(labels)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, labels)
        # Attribute/subscript stores: drop (out of scope for a local pass).

    def _eval(self, expr: ast.expr) -> Set[str]:
        if isinstance(expr, ast.Name):
            return set(self.labels.get(expr.id, set()))
        if isinstance(expr, ast.Constant):
            return set()
        if isinstance(expr, ast.Attribute):
            return self._eval_attribute(expr)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr)
        if isinstance(expr, ast.JoinedStr):
            labels: Set[str] = set()
            for value in expr.values:
                if isinstance(value, ast.FormattedValue):
                    labels |= self._eval(value.value)
            return labels
        if isinstance(expr, ast.BinOp):
            return self._eval(expr.left) | self._eval(expr.right)
        if isinstance(expr, ast.BoolOp):
            labels = set()
            for value in expr.values:
                labels |= self._eval(value)
            return labels
        if isinstance(expr, ast.Subscript):
            return self._eval(expr.value)
        if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
            labels = set()
            for element in expr.elts:
                labels |= self._eval(element)
            return labels
        if isinstance(expr, ast.Dict):
            labels = set()
            for value in expr.values:
                if value is not None:
                    labels |= self._eval(value)
            return labels
        if isinstance(expr, ast.IfExp):
            self._eval(expr.test)
            return self._eval(expr.body) | self._eval(expr.orelse)
        if isinstance(expr, ast.ListComp) or isinstance(
            expr, (ast.SetComp, ast.GeneratorExp)
        ):
            return self._eval_comprehension(expr)
        if isinstance(expr, ast.Compare):
            self._eval(expr.left)
            for comparator in expr.comparators:
                self._eval(comparator)
            return set()
        if isinstance(expr, ast.Starred):
            return self._eval(expr.value)
        return set()

    def _eval_comprehension(self, expr: ast.expr) -> Set[str]:
        labels: Set[str] = set()
        for gen in expr.generators:  # type: ignore[attr-defined]
            iter_labels = self._eval(gen.iter)
            self._bind(gen.target, iter_labels)
        labels |= self._eval(expr.elt)  # type: ignore[attr-defined]
        return labels

    def _eval_attribute(self, expr: ast.Attribute) -> Set[str]:
        base_labels = self._eval(expr.value)
        if expr.attr in _TEXT_ATTRS and self._is_docish(expr.value):
            return base_labels | {_SRC}
        return base_labels

    def _is_docish(self, receiver: ast.expr) -> bool:
        rtype = self.index.resolve_type(self.fn, receiver)
        if rtype is not None and rtype.startswith(_TAINTED_CLASSES):
            return True
        name: Optional[str] = None
        if isinstance(receiver, ast.Name):
            name = receiver.id
        elif isinstance(receiver, ast.Attribute):
            name = receiver.attr
        if name is not None and _DOCISH_RE.search(name.strip("_").lower()):
            return True
        return False

    # -- calls: sources, sanitizers, sinks, summaries ------------------

    def _eval_call(self, call: ast.Call) -> Set[str]:
        func = call.func
        arg_labels = [self._eval(a) for a in call.args]
        kw_labels = {kw.arg: self._eval(kw.value) for kw in call.keywords}
        all_labels: Set[str] = set()
        for labels in arg_labels:
            all_labels |= labels
        for labels in kw_labels.values():
            all_labels |= labels

        # Sanitizers clear taint.
        callee_name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if callee_name in SANITIZERS:
            return set()

        # Gateway sources: parsed bodies / query strings are untrusted.
        if self.in_gateway and callee_name in _GATEWAY_SOURCES:
            return all_labels | {_SRC}

        # Method reads of document text.
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _TEXT_METHODS
            and self._is_docish(func.value)
        ):
            return all_labels | {_SRC}

        resolved = self.index.resolve_call_target(self.fn, call)

        # Sink: known prompt constructors.
        sink_spec = _SINK_FUNCS.get(resolved or "")
        if sink_spec is None and isinstance(func, ast.Attribute) and func.attr == "render":
            # `TEMPLATE.render(...)` where the receiver is a PromptTemplate.
            rtype = self.index.resolve_type(self.fn, func.value)
            if rtype == "repro.llm.prompts:PromptTemplate":
                sink_spec = ("kwargs",)
        if sink_spec is not None:
            self._check_sink(call, sink_spec, arg_labels, kw_labels)
            return set()  # the rendered prompt was already audited

        # Sink: raw tainted string straight into an LLM call.
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _COMPLETE_CALLS
            and call.args
        ):
            self._record_sink(arg_labels[0], call.lineno)
            return set()

        # Sink/propagation via interprocedural summaries.
        if resolved is not None:
            summary_params = self.sink_params.get(resolved)
            if summary_params:
                self._check_summary_sink(call, resolved, summary_params, arg_labels, kw_labels)
            if resolved in self.taint_returners:
                return all_labels | {_SRC}
            if resolved in self.index.functions:
                # A known project function with a computed summary that
                # says neither "sinks these params" beyond the above nor
                # "returns taint": trust the summary over the blanket
                # args-propagate heuristic below.
                return set()

        # Unresolved calls (str methods, external helpers): taint flows
        # from the receiver and the arguments into the result.
        if isinstance(func, ast.Attribute):
            receiver_labels = self._eval(func.value)
            return receiver_labels | all_labels
        return all_labels

    def _check_sink(
        self,
        call: ast.Call,
        spec: Tuple[str, ...],
        arg_labels: List[Set[str]],
        kw_labels: Dict[Optional[str], Set[str]],
    ) -> None:
        for part in spec:
            if part == "kwargs":
                for name, labels in kw_labels.items():
                    self._record_sink(labels, call.lineno)
            elif part.startswith("arg:"):
                pos = int(part.split(":", 1)[1])
                if pos < len(arg_labels):
                    self._record_sink(arg_labels[pos], call.lineno)
            elif part.startswith("kw:"):
                name = part.split(":", 1)[1]
                if name in kw_labels:
                    self._record_sink(kw_labels[name], call.lineno)
            elif part.startswith("dict:"):
                pos = int(part.split(":", 1)[1])
                if pos < len(call.args) and isinstance(call.args[pos], ast.Dict):
                    for value in call.args[pos].values:  # type: ignore[union-attr]
                        if value is not None:
                            self._record_sink(self._eval(value), call.lineno)
                elif pos < len(arg_labels):
                    self._record_sink(arg_labels[pos], call.lineno)

    def _check_summary_sink(
        self,
        call: ast.Call,
        resolved: str,
        summary_params: Set[str],
        arg_labels: List[Set[str]],
        kw_labels: Dict[Optional[str], Set[str]],
    ) -> None:
        callee = self.index.functions.get(resolved)
        if callee is None:
            return
        params = _parameter_names(callee)
        for i, labels in enumerate(arg_labels):
            if i < len(params) and params[i] in summary_params:
                self._record_sink(labels, call.lineno)
        for name, labels in kw_labels.items():
            if name in summary_params:
                self._record_sink(labels, call.lineno)

    def _record_sink(self, labels: Set[str], line: int) -> None:
        for label in labels:
            self.sunk_labels.setdefault(label, []).append(line)


def _parameter_names(fn: FunctionInfo) -> List[str]:
    args = fn.node.args
    names = [a.arg for a in list(args.posonlyargs) + list(args.args)]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
        # Keep positional indexes aligned with call-site args.
    return names


def _analyze_program(
    index: ProjectIndex,
) -> Tuple[Dict[str, List[int]], Dict[str, Set[str]], Set[str]]:
    """Fixpoint over all functions.

    Returns (findings: path -> lines is folded by caller; here we return
    the raw per-function source-taint sink lines), the sink-parameter
    summaries, and the taint-returning function set."""
    sink_params: Dict[str, Set[str]] = {}
    taint_returners: Set[str] = set()
    source_sinks: Dict[str, List[int]] = {}

    for _ in range(4):  # small call-graph depths converge fast
        changed = False
        source_sinks = {}
        for fn in index.iter_functions():
            analysis = _FunctionTaint(index, fn, sink_params, taint_returners)
            analysis.run()
            # Source-tainted values reaching a sink: findings.
            lines = analysis.sunk_labels.get(_SRC, [])
            if lines:
                source_sinks.setdefault(fn.path, []).extend(lines)
            # Parameter labels reaching a sink: summary.
            param_sinks = {
                label.split(":", 1)[1]
                for label in analysis.sunk_labels
                if label.startswith("param:")
            }
            if param_sinks - sink_params.get(fn.qualname, set()):
                sink_params.setdefault(fn.qualname, set()).update(param_sinks)
                changed = True
            # Source taint reaching the return value: summary.
            if _SRC in analysis.return_labels and fn.qualname not in taint_returners:
                taint_returners.add(fn.qualname)
                changed = True
        if not changed:
            break
    return source_sinks, sink_params, taint_returners


@xregister
class PromptTaint(CrossRule):
    id = "prompt-taint"
    description = (
        "Untrusted text (document bodies, gateway request input) is "
        "interpolated into an LLM prompt without passing through a "
        "declared sanitizer (neutralize_markers): prompt injection."
    )

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        source_sinks, _, _ = _analyze_program(index)
        for path in sorted(source_sinks):
            info = index.module_of_path(path)
            tags = _parse_taint_safe(info.source) if info is not None else {}
            for line in sorted(set(source_sinks[path])):
                if _tag_covers(tags, line):
                    continue
                yield self.finding(
                    path=path,
                    line=line,
                    col=0,
                    message=(
                        "untrusted text reaches prompt construction without "
                        "neutralize_markers(); a document/request containing "
                        "<<SECTION:...>> markers can inject its own prompt "
                        "sections (add the sanitizer or a "
                        "'# repro: taint-safe[reason]' justification)"
                    ),
                )


def _tag_covers(tags: Dict[int, Optional[str]], line: int) -> bool:
    """A taint-safe tag on the line or the line above covers the sink —
    but only when it carries a justification (bare tags are findings)."""
    for candidate in (line, line - 1):
        if candidate in tags and tags[candidate]:
            return True
    return False


@xregister
class UnjustifiedTaintSafe(CrossRule):
    id = "unjustified-taint-safe"
    description = (
        "A '# repro: taint-safe' tag without a written justification: "
        "the escape hatch requires a reason ('taint-safe[reason]') so "
        "accepted injection risks stay reviewable."
    )

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        for name in sorted(index.modules):
            info = index.modules[name]
            for line, reason in sorted(_parse_taint_safe(info.source).items()):
                if not reason:
                    yield self.finding(
                        path=info.path,
                        line=line,
                        col=0,
                        message=(
                            "bare 'taint-safe' tag: a justification is "
                            "required — write '# repro: taint-safe[reason]'"
                        ),
                    )
