"""``future-escape``: cross-module future dataflow.

The single-file ``swallowed-future`` rule catches ``pool.submit(...)``
discarded on the spot. What it cannot see is a future that *crosses a
function or module boundary*: a helper in ``runtime`` mints the future,
a caller in ``serving`` drops it, and the failure it would have carried
evaporates two modules away from the bug.

This rule computes, by fixpoint over the call graph, the set of
*future-producing* functions — functions that return the result of
``.submit(...)``, a ``Future()`` they constructed, another producer's
return value, or whose return annotation names ``Future`` — then audits
every call site of a producer on the hot path (``serving``/``runtime``/
``execution``/``cluster``/``gateway``/``luna``):

* the returned future is **discarded** (a bare expression statement), or
* it is bound to a local that is **never referenced again** — no
  ``.result()``, ``.exception()``, ``.cancel()``, ``.add_done_callback``,
  no ``wait_future``, never returned, stored, or passed on.

Anything that escapes further (returned, stored on ``self``, appended,
passed as an argument) is treated as consumed: the rule trades recall
for near-zero false positives, like every rule in this codebase.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from ..engine import Finding
from .index import FunctionInfo, ProjectIndex
from .runner import CrossRule, xregister

__all__ = ["FutureEscape", "future_producers", "own_nodes"]


def own_nodes(fn: FunctionInfo) -> Iterator[ast.AST]:
    """Walk ``fn``'s body without descending into nested defs/lambdas —
    those are indexed (and analyzed) as their own functions."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn.node))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))

#: Caller packages audited: a dropped future on these paths loses real
#: user-facing failures (everything on a served query's critical path).
_HOT_PACKAGES = (
    "repro.serving",
    "repro.runtime",
    "repro.execution",
    "repro.cluster",
    "repro.gateway",
    "repro.luna",
)


def _returns_future_locally(fn: FunctionInfo) -> bool:
    """Does ``fn`` return a future it minted (no interprocedural info)?"""
    # Return annotation naming Future is authoritative.
    ann = fn.node.returns
    if ann is not None:
        text = ast.unparse(ann) if not isinstance(ann, ast.Constant) else str(ann.value)
        if "Future" in text:
            return True
    future_locals: Set[str] = set()
    for node in own_nodes(fn):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and _mints_future(node.value):
                future_locals.add(target.id)
    for node in own_nodes(fn):
        if isinstance(node, ast.Return) and node.value is not None:
            if _mints_future(node.value):
                return True
            if isinstance(node.value, ast.Name) and node.value.id in future_locals:
                return True
    return False


def _mints_future(expr: ast.AST) -> bool:
    if not isinstance(expr, ast.Call):
        return False
    func = expr.func
    if isinstance(func, ast.Attribute) and func.attr == "submit":
        return True
    if isinstance(func, ast.Name) and func.id == "Future":
        return True
    return False


def future_producers(index: ProjectIndex) -> Set[str]:
    """Qualnames of functions whose return value is (or forwards) a
    future, by fixpoint over the call graph."""
    producers: Set[str] = {
        fn.qualname for fn in index.iter_functions() if _returns_future_locally(fn)
    }
    changed = True
    while changed:
        changed = False
        for fn in index.iter_functions():
            if fn.qualname in producers:
                continue
            if _forwards_producer_return(index, fn, producers):
                producers.add(fn.qualname)
                changed = True
    return producers


def _forwards_producer_return(
    index: ProjectIndex, fn: FunctionInfo, producers: Set[str]
) -> bool:
    """Does ``fn`` return the result of calling a known producer?"""
    producer_locals: Set[str] = set()
    for node in own_nodes(fn):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if (
                isinstance(target, ast.Name)
                and isinstance(node.value, ast.Call)
                and index.resolve_call_target(fn, node.value) in producers
            ):
                producer_locals.add(target.id)
    for node in own_nodes(fn):
        if not (isinstance(node, ast.Return) and node.value is not None):
            continue
        value = node.value
        if isinstance(value, ast.Call):
            if index.resolve_call_target(fn, value) in producers:
                return True
        if isinstance(value, ast.Name) and value.id in producer_locals:
            return True
    return False


#: Attribute calls that consume a future.
_CONSUMERS = {"result", "exception", "cancel", "add_done_callback", "done", "running"}


@xregister
class FutureEscape(CrossRule):
    id = "future-escape"
    description = (
        "A future minted in another function/module is discarded or "
        "bound to a dead local on a hot path: its failure (and its "
        "completion) can never be observed."
    )

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        producers = future_producers(index)
        for fn in index.iter_functions():
            if not fn.module.startswith(_HOT_PACKAGES):
                continue
            if fn.qualname in producers:
                # A producer forwarding a future is not the consumer.
                continue
            yield from self._check_function(index, fn, producers)

    def _check_function(
        self, index: ProjectIndex, fn: FunctionInfo, producers: Set[str]
    ) -> Iterator[Finding]:
        for node in own_nodes(fn):
            # Case 1: producer call discarded as a statement.
            if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                call = node.value
                target = index.resolve_call_target(fn, call)
                if target in producers and not self._is_direct_submit(call):
                    yield self.finding(
                        path=fn.path,
                        line=call.lineno,
                        col=call.col_offset,
                        message=(
                            f"future returned by {_pretty(target)} is "
                            f"discarded; its failure can never be observed "
                            f"(call .result()/.cancel() or add_done_callback)"
                        ),
                    )
            # Case 2: producer result bound to a never-used local.
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target_node = node.targets[0]
                if not isinstance(target_node, ast.Name):
                    continue
                if not isinstance(node.value, ast.Call):
                    continue
                callee = index.resolve_call_target(fn, node.value)
                if callee not in producers or self._is_direct_submit(node.value):
                    continue
                if not self._is_used_after(fn, target_node.id, node):
                    yield self.finding(
                        path=fn.path,
                        line=node.value.lineno,
                        col=node.value.col_offset,
                        message=(
                            f"future returned by {_pretty(callee)} is bound "
                            f"to {target_node.id!r} but never consumed "
                            f"(no .result()/.exception()/.cancel()/"
                            f"add_done_callback reachable)"
                        ),
                    )

    @staticmethod
    def _is_direct_submit(call: ast.Call) -> bool:
        """Direct ``x.submit(...)`` discards are the single-file
        ``swallowed-future`` rule's finding; do not double-report."""
        return isinstance(call.func, ast.Attribute) and call.func.attr == "submit"

    @staticmethod
    def _is_used_after(fn: FunctionInfo, name: str, assignment: ast.Assign) -> bool:
        """Is ``name`` referenced (loaded) anywhere else in the function?
        Any load — consumer call, return, argument, store elsewhere —
        counts as consumption."""
        for node in ast.walk(fn.node):
            if (
                isinstance(node, ast.Name)
                and node.id == name
                and isinstance(node.ctx, ast.Load)
            ):
                return True
        return False


def _pretty(qualname: Optional[str]) -> str:
    if qualname is None:
        return "<unresolved>"
    module, _, rest = qualname.partition(":")
    return f"{module}.{rest}" if rest else qualname
