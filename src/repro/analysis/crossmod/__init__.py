"""Whole-program analysis: one :class:`ProjectIndex` pass, four rules.

Where :mod:`repro.analysis.rules` sees one file at a time, this package
parses every module of the program once and runs *interprocedural*
rules over the result:

* ``lock-order-inversion`` — cycles in the global lock-acquisition-order
  graph (:mod:`.lockorder`), cross-checkable against the runtime
  :mod:`repro.analysis.locksmith` sanitizer;
* ``future-escape`` — futures that cross a function/module boundary and
  are dropped on a hot path (:mod:`.dataflow`);
* ``prompt-taint`` / ``unjustified-taint-safe`` — untrusted text
  reaching prompt construction unsanitized (:mod:`.taint`);
* ``event-loop-blocker`` — blocking primitives reachable from dispatch
  loops: the computed asyncio-migration worklist (:mod:`.blockers`).

Entry point: ``python -m repro xlint`` or :func:`xlint_paths`.
"""

from .index import ProjectIndex, FunctionInfo, ClassInfo, ModuleInfo, LockDecl
from .runner import CrossRule, XRULES, xregister, xlint_paths, build_index

# Importing the rule modules registers them in XRULES.
from . import lockorder  # noqa: F401  (registers lock-order-inversion)
from . import dataflow  # noqa: F401  (registers future-escape)
from . import taint  # noqa: F401  (registers prompt-taint, unjustified-taint-safe)
from . import blockers  # noqa: F401  (registers event-loop-blocker)

from .lockorder import LockOrderGraph, build_lock_graph

__all__ = [
    "ProjectIndex",
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "LockDecl",
    "CrossRule",
    "XRULES",
    "xregister",
    "xlint_paths",
    "build_index",
    "LockOrderGraph",
    "build_lock_graph",
]
