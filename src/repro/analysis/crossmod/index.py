"""The whole-program :class:`ProjectIndex` behind ``repro xlint``.

PR 5's linter deliberately looks at one file at a time; every rule in
:mod:`repro.analysis.rules` must reach its verdict from a single AST.
The bugs that survive that filter are *cross-module by construction*: a
future minted in ``runtime`` is swallowed in ``serving``, a lock taken
in ``llm/client.py`` nests under one held in ``observability``, a
document body read in ``docmodel`` is interpolated into a planner
prompt three imports away. Those need one index of the whole program.

The index parses every module exactly once and layers four resolution
tables on top of the raw ASTs:

* **Module table** — dotted module names, sources, per-module import
  maps (``local name -> "pkg.module"`` or ``"pkg.module:Symbol"``),
  with relative imports resolved against the importing package.
* **Class table** — per-class method tables, resolved base classes,
  the *attribute type table* (``self._scheduler = RequestScheduler(...)``
  records ``_scheduler -> repro.runtime.scheduler:RequestScheduler``),
  and the *lock table* (every ``threading.Lock/RLock/Condition/
  Semaphore`` attribute, with the creation site that the runtime
  :mod:`~repro.analysis.locksmith` sanitizer keys on).
* **Function table** — module functions, methods, and *nested*
  functions (the per-document closures built by transform factories
  are where prompt assembly actually happens).
* **Approximate call graph** — call sites resolved through imports,
  ``self``-method dispatch with MRO walking over known repro classes,
  attribute chains through the class attribute table
  (``self._service._scheduler.submit`` resolves two hops), and
  parameter annotations.

Resolution is deliberately *approximate and sound-ish*: when a callee
cannot be resolved it is dropped, never guessed, so interprocedural
rules trade recall for a low false-positive rate — the same bargain
the single-file rules made.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from ..engine import iter_python_files, _parse_suppressions

__all__ = [
    "CallEdge",
    "ClassInfo",
    "FunctionInfo",
    "LockDecl",
    "ModuleInfo",
    "ProjectIndex",
]

#: threading constructors that create a lock-like synchronization object.
_LOCK_CTORS = {
    "Lock": "Lock",
    "RLock": "RLock",
    "Condition": "Condition",
    "Semaphore": "Semaphore",
    "BoundedSemaphore": "Semaphore",
}


@dataclass(frozen=True)
class LockDecl:
    """One declared lock: a ``self.X = threading.Lock()`` attribute or a
    module-level lock binding.

    ``lock_id`` is the global node name used by the lock-order graph
    (``module:Class.attr`` or ``module:name``); ``path``/``line`` is the
    creation site, which doubles as the join key against runtime
    acquisitions observed by the locksmith sanitizer.
    """

    lock_id: str
    kind: str
    path: str
    line: int


@dataclass
class FunctionInfo:
    """One function, method, or nested function in the program."""

    qualname: str  #: ``module:Class.method`` / ``module:func`` / ``module:outer.<locals>.inner``
    module: str
    cls: Optional[str]  #: owning class name, for methods
    name: str
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    path: str

    @property
    def line(self) -> int:
        return self.node.lineno


@dataclass
class ClassInfo:
    """One class: methods, resolved bases, attribute types, locks."""

    qualname: str  #: ``module:Class``
    name: str
    module: str
    path: str
    bases: List[str] = field(default_factory=list)  #: resolved ``module:Class`` names
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    attr_types: Dict[str, str] = field(default_factory=dict)  #: attr -> ``module:Class``
    lock_attrs: Dict[str, LockDecl] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed module plus its local resolution tables."""

    name: str
    path: str
    source: str
    tree: ast.Module
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    module_locks: Dict[str, LockDecl] = field(default_factory=dict)
    var_types: Dict[str, str] = field(default_factory=dict)  #: module var -> ``module:Class``
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)


@dataclass(frozen=True)
class CallEdge:
    """One resolved call site: ``caller`` invokes ``callee`` at ``line``."""

    caller: str
    callee: str
    line: int


class ProjectIndex:
    """Whole-program tables over one parse of every module."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.locks: Dict[str, LockDecl] = {}
        #: caller qualname -> outgoing resolved edges (sorted by line).
        self.calls: Dict[str, List[CallEdge]] = {}
        #: callee qualname -> incoming resolved edges.
        self.callers: Dict[str, List[CallEdge]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, paths: Iterable[Union[str, Path]]) -> "ProjectIndex":
        """Parse every ``.py`` file under ``paths`` and build all tables."""
        index = cls()
        files = list(iter_python_files(paths))
        for file_path in files:
            source = file_path.read_text(encoding="utf-8")
            try:
                tree = ast.parse(source, filename=str(file_path))
            except SyntaxError:
                continue  # the single-file linter reports these
            name = _module_name_for(file_path)
            info = ModuleInfo(
                name=name,
                path=str(file_path),
                source=source,
                tree=tree,
                suppressions=_parse_suppressions(source),
            )
            index.modules[name] = info
        for info in index.modules.values():
            index._collect_imports(info)
            index._collect_definitions(info)
        for info in index.modules.values():
            index._resolve_bases(info)
            index._collect_attr_types(info)
        index._build_call_graph()
        return index

    def _collect_imports(self, info: ModuleInfo) -> None:
        package = info.name.rpartition(".")[0]
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    info.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    parts = info.name.split(".")
                    # level=1 is the current package for modules, so drop
                    # `level` trailing parts from the *module* name.
                    anchor = parts[: len(parts) - node.level]
                    base = ".".join(anchor + ([base] if base else []))
                elif not base:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    # `from pkg import module` vs `from module import Symbol`
                    # is decided later, when targets are looked up; encode
                    # both candidates as module:Symbol and resolve lazily.
                    info.imports[local] = f"{base}:{alias.name}"
        _ = package  # (kept for symmetry; relative resolution used info.name)

    def _collect_definitions(self, info: ModuleInfo) -> None:
        def visit_function(
            node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
            prefix: str,
            cls_name: Optional[str],
        ) -> None:
            qualname = f"{info.name}:{prefix}{node.name}"
            fn = FunctionInfo(
                qualname=qualname,
                module=info.name,
                cls=cls_name,
                name=node.name,
                node=node,
                path=info.path,
            )
            self.functions[qualname] = fn
            if cls_name is None and prefix == "":
                info.functions[node.name] = fn
            for child in node.body:
                collect(child, f"{prefix}{node.name}.<locals>.", None)

        def collect(node: ast.stmt, prefix: str, cls_name: Optional[str]) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                visit_function(node, prefix, cls_name)
            elif isinstance(node, ast.ClassDef):
                cls_qual = f"{info.name}:{prefix}{node.name}"
                cinfo = ClassInfo(
                    qualname=cls_qual,
                    name=node.name,
                    module=info.name,
                    path=info.path,
                )
                cinfo.bases = [ast.unparse(b) for b in node.bases]
                self.classes[cls_qual] = cinfo
                if prefix == "":
                    info.classes[node.name] = cinfo
                for child in node.body:
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        method_qual = f"{info.name}:{prefix}{node.name}.{child.name}"
                        fn = FunctionInfo(
                            qualname=method_qual,
                            module=info.name,
                            cls=f"{prefix}{node.name}",
                            name=child.name,
                            node=child,
                            path=info.path,
                        )
                        self.functions[method_qual] = fn
                        cinfo.methods[child.name] = fn
                        for inner in child.body:
                            collect(
                                inner,
                                f"{prefix}{node.name}.{child.name}.<locals>.",
                                None,
                            )
                    else:
                        collect(child, f"{prefix}{node.name}.", None)

        for node in info.tree.body:
            collect(node, "", None)
            # Module-level locks and typed module vars.
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    lock_kind = self._lock_ctor_kind(info, node.value)
                    if lock_kind is not None:
                        decl = LockDecl(
                            lock_id=f"{info.name}:{target.id}",
                            kind=lock_kind,
                            path=info.path,
                            line=node.value.lineno,
                        )
                        info.module_locks[target.id] = decl
                        self.locks[decl.lock_id] = decl
                    elif isinstance(node.value, ast.Call):
                        ctor = self.resolve_symbol(info, node.value.func)
                        if ctor in self.classes:
                            info.var_types[target.id] = ctor

    def _resolve_bases(self, info: ModuleInfo) -> None:
        for cinfo in info.classes.values():
            resolved = []
            for base in cinfo.bases:
                target = self._resolve_dotted(info, base)
                if target in self.classes:
                    resolved.append(target)
            cinfo.bases = resolved

    def _collect_attr_types(self, info: ModuleInfo) -> None:
        for cinfo in info.classes.values():
            for method in cinfo.methods.values():
                for node in ast.walk(method.node):
                    if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                        continue
                    target = node.targets[0]
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    lock_kind = self._lock_ctor_kind(info, node.value)
                    if lock_kind is not None:
                        decl = LockDecl(
                            lock_id=f"{cinfo.qualname}.{target.attr}",
                            kind=lock_kind,
                            path=info.path,
                            line=node.value.lineno,
                        )
                        cinfo.lock_attrs.setdefault(target.attr, decl)
                        self.locks.setdefault(decl.lock_id, decl)
                    elif isinstance(node.value, ast.Call):
                        ctor = self.resolve_symbol(info, node.value.func)
                        if ctor in self.classes:
                            cinfo.attr_types.setdefault(target.attr, ctor)

    def _lock_ctor_kind(self, info: ModuleInfo, value: ast.AST) -> Optional[str]:
        """The lock kind when ``value`` constructs (or falls back to
        constructing, e.g. ``lock or threading.Lock()``) a threading
        primitive."""
        for call in ast.walk(value):
            if not isinstance(call, ast.Call):
                continue
            func = call.func
            name: Optional[str] = None
            if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
                if func.value.id == "threading":
                    name = func.attr
            elif isinstance(func, ast.Name):
                target = info.imports.get(func.id, "")
                if target.startswith("threading:"):
                    name = target.split(":", 1)[1]
            if name in _LOCK_CTORS:
                return _LOCK_CTORS[name]
        return None

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------

    def _resolve_dotted(self, info: ModuleInfo, dotted: str) -> Optional[str]:
        """Resolve a dotted source-level name (``exc.PlanError`` /
        ``Base``) to a ``module:Symbol`` qualname via the import map."""
        parts = dotted.split(".")
        head = parts[0]
        if head in info.classes and len(parts) == 1:
            return f"{info.name}:{head}"
        target = info.imports.get(head)
        if target is None:
            return None
        if ":" in target:
            mod, sym = target.split(":", 1)
            resolved = self._resolve_symbol_target(mod, sym)
            if resolved is None:
                return None
            if len(parts) == 1:
                return resolved
            # e.g. `from repro import luna` then `luna.Luna`
            if resolved in self.modules:
                return self._lookup_in_module(resolved, parts[1:])
            return None
        if len(parts) == 1:
            return target if target in self.modules else None
        return self._lookup_in_module(target, parts[1:])

    def _lookup_in_module(self, module: str, parts: Sequence[str]) -> Optional[str]:
        info = self.modules.get(module)
        if info is None or not parts:
            return None
        name = parts[0]
        if len(parts) == 1:
            if name in info.classes or name in info.functions:
                return f"{module}:{name}"
            return None
        return None

    def _resolve_symbol_target(
        self, mod: str, sym: str, _seen: Optional[Set[Tuple[str, str]]] = None
    ) -> Optional[str]:
        """Disambiguate ``from mod import sym``: a submodule, or a symbol
        defined in (or re-exported by) ``mod``."""
        if _seen is None:
            _seen = set()
        if (mod, sym) in _seen:  # re-export cycle: give up
            return None
        _seen.add((mod, sym))
        submodule = f"{mod}.{sym}"
        if submodule in self.modules:
            return submodule
        owner = self.modules.get(mod)
        if owner is not None:
            if sym in owner.classes or sym in owner.functions:
                return f"{mod}:{sym}"
            # Package __init__ re-export: chase the import chain.
            reexport = owner.imports.get(sym)
            if reexport is not None and ":" in reexport:
                inner_mod, inner_sym = reexport.split(":", 1)
                return self._resolve_symbol_target(inner_mod, inner_sym, _seen)
            if reexport is not None:
                return reexport if reexport in self.modules else None
        # Unparsed external module (threading, json, ...): keep the raw
        # module:symbol shape so callers can pattern-match on it.
        if mod not in self.modules:
            return f"{mod}:{sym}"
        return None

    def resolve_symbol(self, info: ModuleInfo, expr: ast.AST) -> Optional[str]:
        """Resolve a Name/Attribute expression to a ``module:Symbol`` or
        module qualname, without type inference."""
        if isinstance(expr, ast.Name):
            return self._resolve_dotted(info, expr.id)
        if isinstance(expr, ast.Attribute):
            try:
                return self._resolve_dotted(info, ast.unparse(expr))
            except Exception:  # pragma: no cover - unparse is total on exprs
                return None
        return None

    def mro(self, class_qualname: str) -> List[ClassInfo]:
        """The class and its known bases, nearest first (approximate MRO)."""
        seen: Set[str] = set()
        order: List[ClassInfo] = []
        stack = [class_qualname]
        while stack:
            qual = stack.pop(0)
            if qual in seen:
                continue
            seen.add(qual)
            cinfo = self.classes.get(qual)
            if cinfo is None:
                continue
            order.append(cinfo)
            stack.extend(cinfo.bases)
        return order

    def lookup_method(self, class_qualname: str, name: str) -> Optional[FunctionInfo]:
        for cinfo in self.mro(class_qualname):
            if name in cinfo.methods:
                return cinfo.methods[name]
        return None

    def lookup_attr_type(self, class_qualname: str, attr: str) -> Optional[str]:
        for cinfo in self.mro(class_qualname):
            if attr in cinfo.attr_types:
                return cinfo.attr_types[attr]
        return None

    def lookup_lock_attr(self, class_qualname: str, attr: str) -> Optional[LockDecl]:
        for cinfo in self.mro(class_qualname):
            if attr in cinfo.lock_attrs:
                return cinfo.lock_attrs[attr]
        return None

    def owning_class(self, fn: FunctionInfo) -> Optional[str]:
        """Qualname of the class a method belongs to, else None."""
        if fn.cls is None:
            return None
        return f"{fn.module}:{fn.cls}"

    def resolve_annotation(self, info: ModuleInfo, ann: Optional[ast.AST]) -> Optional[str]:
        """Resolve a parameter/return annotation to a class qualname."""
        if ann is None:
            return None
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            # String annotation: strip quotes/generics, take the head name.
            text = ann.value.split("[")[0].strip()
            return self._resolve_dotted(info, text) if text else None
        if isinstance(ann, ast.Subscript):  # Optional[X] / List[X]
            base = ann.value
            if isinstance(base, ast.Name) and base.id in ("Optional", "List", "Sequence"):
                return self.resolve_annotation(info, ann.slice)
            return None
        if isinstance(ann, (ast.Name, ast.Attribute)):
            return self.resolve_symbol(info, ann)
        return None

    def resolve_type(self, fn: FunctionInfo, expr: ast.AST) -> Optional[str]:
        """Resolve an expression inside ``fn`` to a class qualname (for
        instances) or a module name (for module aliases)."""
        info = self.modules[fn.module]
        if isinstance(expr, ast.Name):
            if expr.id == "self" and fn.cls is not None:
                return self.owning_class(fn)
            # Parameter annotation?
            args = fn.node.args
            all_args = (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            )
            for arg in all_args:
                if arg.arg == expr.id:
                    resolved = self.resolve_annotation(info, arg.annotation)
                    if resolved is not None:
                        return resolved
            # Local assignment from a known constructor?
            for node in ast.walk(fn.node):
                if (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and node.targets[0].id == expr.id
                    and isinstance(node.value, ast.Call)
                ):
                    ctor = self.resolve_symbol(info, node.value.func)
                    if ctor in self.classes:
                        return ctor
            # Module-level var or module alias.
            if expr.id in info.var_types:
                return info.var_types[expr.id]
            target = info.imports.get(expr.id)
            if target is not None and ":" not in target:
                return target  # a module name
            if target is not None:
                resolved = self._resolve_symbol_target(*target.split(":", 1))
                if resolved in self.modules:
                    return resolved
            return None
        if isinstance(expr, ast.Attribute):
            base = self.resolve_type(fn, expr.value)
            if base is None:
                return None
            if base in self.classes:
                return self.lookup_attr_type(base, expr.attr)
            if base in self.modules:
                owner = self.modules[base]
                if expr.attr in owner.var_types:
                    return owner.var_types[expr.attr]
            return None
        if isinstance(expr, ast.Call):
            ctor = self.resolve_call_target(fn, expr)
            if ctor is not None and ctor in self.classes:
                return ctor
            return None
        return None

    def resolve_call_target(self, fn: FunctionInfo, call: ast.Call) -> Optional[str]:
        """Resolve a call expression to the qualname of the function,
        method, or class (constructor) it invokes."""
        func = call.func
        info = self.modules[fn.module]
        if isinstance(func, ast.Name):
            # Sibling nested function in the same enclosing scope.
            sibling = self._nested_sibling(fn, func.id)
            if sibling is not None:
                return sibling
            resolved = self._resolve_dotted(info, func.id)
            if resolved is not None and (
                resolved in self.functions
                or resolved in self.classes
                or resolved in self.modules
            ):
                return resolved
            if func.id in info.functions:
                return info.functions[func.id].qualname
            return resolved
        if isinstance(func, ast.Attribute):
            receiver_type = self.resolve_type(fn, func.value)
            if receiver_type is not None:
                if receiver_type in self.classes:
                    method = self.lookup_method(receiver_type, func.attr)
                    if method is not None:
                        return method.qualname
                    return None
                if receiver_type in self.modules:
                    owner = self.modules[receiver_type]
                    if func.attr in owner.functions:
                        return owner.functions[func.attr].qualname
                    if func.attr in owner.classes:
                        return owner.classes[func.attr].qualname
            # Module alias attribute (repro.llm.prompts.render_task_prompt).
            resolved = self.resolve_symbol(info, func)
            if resolved is not None and (
                resolved in self.functions or resolved in self.classes
            ):
                return resolved
            return None
        return None

    def _nested_sibling(self, fn: FunctionInfo, name: str) -> Optional[str]:
        """A nested function defined in the same enclosing scope as
        ``fn`` (factories calling their own helpers)."""
        prefix = fn.qualname.rsplit(".", 1)[0] if "." in fn.qualname else None
        if prefix is None:
            return None
        candidate = f"{prefix}.{name}"
        if candidate in self.functions:
            return candidate
        return None

    def resolve_lock(self, fn: FunctionInfo, expr: ast.AST) -> Optional[LockDecl]:
        """Resolve an expression to a declared lock, or None."""
        info = self.modules[fn.module]
        if isinstance(expr, ast.Attribute):
            base = self.resolve_type(fn, expr.value)
            if base is not None and base in self.classes:
                return self.lookup_lock_attr(base, expr.attr)
            if base is not None and base in self.modules:
                return self.modules[base].module_locks.get(expr.attr)
            return None
        if isinstance(expr, ast.Name):
            if expr.id in info.module_locks:
                return info.module_locks[expr.id]
            target = info.imports.get(expr.id)
            if target is not None and ":" in target:
                mod, sym = target.split(":", 1)
                owner = self.modules.get(mod)
                if owner is not None:
                    return owner.module_locks.get(sym)
            return None
        return None

    # ------------------------------------------------------------------
    # Call graph
    # ------------------------------------------------------------------

    def _build_call_graph(self) -> None:
        for fn in self.functions.values():
            edges: List[CallEdge] = []
            for node in ast.walk(fn.node):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if node is not fn.node:
                        continue  # nested functions indexed separately
                if not isinstance(node, ast.Call):
                    continue
                # Skip call sites inside nested defs: they belong to the
                # nested FunctionInfo's own edges.
                target = self.resolve_call_target(fn, node)
                if target is None:
                    continue
                if target in self.classes:
                    ctor = self.lookup_method(target, "__init__")
                    target = ctor.qualname if ctor is not None else target
                if target in self.functions or target in self.classes:
                    edges.append(CallEdge(fn.qualname, target, node.lineno))
            # Drop edges that actually live in nested function bodies.
            nested_spans = [
                (child.lineno, getattr(child, "end_lineno", child.lineno))
                for child in ast.walk(fn.node)
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                and child is not fn.node
            ]
            if nested_spans:
                edges = [
                    e
                    for e in edges
                    if not any(lo <= e.line <= hi for lo, hi in nested_spans)
                ]
            edges.sort(key=lambda e: e.line)
            self.calls[fn.qualname] = edges
            for edge in edges:
                self.callers.setdefault(edge.callee, []).append(edge)

    def callees_of(self, qualname: str) -> List[CallEdge]:
        return self.calls.get(qualname, [])

    # ------------------------------------------------------------------
    # Queries used by rules and CLI scoping
    # ------------------------------------------------------------------

    def is_suppressed(self, path: str, rule_id: str, line: int) -> bool:
        """Engine-style ``# repro: lint-ignore`` suppression lookup."""
        for info in self.modules.values():
            if info.path == path:
                for candidate in (line, line - 1):
                    rules = info.suppressions.get(candidate)
                    if rules is not None and ("*" in rules or rule_id in rules):
                        return True
                return False
        return False

    def module_of_path(self, path: str) -> Optional[ModuleInfo]:
        for info in self.modules.values():
            if info.path == path:
                return info
        return None

    def module_neighbourhood(self, changed_modules: Set[str]) -> Set[str]:
        """Changed modules plus every module with a resolved call edge
        into or out of them — the touched call-graph slice."""
        result = set(changed_modules)
        for caller, edges in self.calls.items():
            caller_mod = caller.split(":", 1)[0]
            for edge in edges:
                callee_mod = edge.callee.split(":", 1)[0]
                if caller_mod in changed_modules:
                    result.add(callee_mod)
                if callee_mod in changed_modules:
                    result.add(caller_mod)
        return result

    def iter_functions(self) -> Iterator[FunctionInfo]:
        for qualname in sorted(self.functions):
            yield self.functions[qualname]


def _module_name_for(path: Path) -> str:
    """Dotted module name: rooted at the last ``repro`` path component
    when present (src layouts), else the file stem chain after the last
    directory that is not part of a package walk we can see. Fixture
    trees without a package simply use the stem."""
    parts = list(path.with_suffix("").parts)
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        parts = parts[anchor:]
    else:
        parts = parts[-1:]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else path.stem
