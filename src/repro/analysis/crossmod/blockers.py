"""``event-loop-blocker``: blocking primitives on dispatch paths.

The asyncio-migration worklist, computed instead of curated. The paper's
serving layer multiplexes many queries over few threads; every blocking
primitive *transitively reachable* from a dispatch loop is a place where
one slow tenant stalls everyone behind it — and the exact set of call
sites that must become awaitable when the serving/gateway layers move
to asyncio.

Roots (the dispatch paths):

* ``RequestScheduler._run`` / ``RequestScheduler._dispatch`` — the
  model-call scheduler loop;
* ``QueryService._worker_loop`` — the serving worker;
* the gateway's ``do_GET``/``do_POST``/``do_DELETE``/``_dispatch`` —
  one thread per in-flight HTTP request.

Blocking shapes reported (at the blocking call, with the root and call
chain in the message):

* ``time.sleep(...)``
* ``.result()`` / ``.wait(...)`` / ``.get(...)`` / ``.join(...)``
  **without a timeout argument** — unbounded waits; a bounded wait on a
  dispatch path is a latency bug, an unbounded one is a liveness bug;
* ``socket``-level receives (``recv``/``accept``).

Lock acquisitions are deliberately *not* reported here: short critical
sections are fine on these paths, and the single-file
``blocking-call-under-lock`` rule plus ``lock-order-inversion`` police
the pathological cases. Each finding names the shortest call chain from
its root so the worklist reads as a migration plan, not a pile of
lines. In-repo findings are expected to live in the committed baseline
with written justifications until the asyncio port lands.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..engine import Finding
from .dataflow import own_nodes
from .index import FunctionInfo, ProjectIndex
from .runner import CrossRule, xregister

__all__ = ["EventLoopBlocker", "DISPATCH_ROOTS", "reachable_from_roots"]

#: Dispatch-loop roots: module-qualified function names.
DISPATCH_ROOTS: Tuple[str, ...] = (
    "repro.runtime.scheduler:RequestScheduler._run",
    "repro.runtime.scheduler:RequestScheduler._dispatch",
    "repro.serving.service:QueryService._worker_loop",
    "repro.gateway.server:_GatewayHandler.do_GET",
    "repro.gateway.server:_GatewayHandler.do_POST",
    "repro.gateway.server:_GatewayHandler.do_DELETE",
    "repro.gateway.server:_GatewayHandler._dispatch",
)

#: method name -> does a timeout argument make it acceptable?
_BLOCKING_METHODS = {
    "result": True,
    "wait": True,
    "get": True,
    "join": True,
    "acquire": None,  # never reported; see module docstring
    "recv": False,
    "recv_into": False,
    "accept": False,
}

#: ``.get``/``.join`` are blocking only on queue-like / thread-like
#: receivers — ``dict.get`` and ``str.join`` share the method names.
#: Receiver *names* carry the evidence (``self._queue``, ``worker``);
#: anything else is assumed to be the non-blocking homonym.
_QUEUEISH_RE = re.compile(r"(?:^|_)(?:queue|queues|inbox|mailbox|channel)\d*$")
_THREADISH_RE = re.compile(r"(?:^|_)(?:thread|threads|worker|workers|proc|process|processes|pool)\d*$")


def _terminal_name(expr: ast.AST) -> Optional[str]:
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return None


def reachable_from_roots(
    index: ProjectIndex, roots: Tuple[str, ...] = DISPATCH_ROOTS
) -> Dict[str, Tuple[str, ...]]:
    """BFS over the call graph: qualname -> shortest chain from a root
    (chain includes the root and the function itself)."""
    chains: Dict[str, Tuple[str, ...]] = {}
    queue: List[str] = []
    for root in roots:
        if root in index.functions and root not in chains:
            chains[root] = (root,)
            queue.append(root)
    while queue:
        current = queue.pop(0)
        for edge in index.callees_of(current):
            if edge.callee in chains or edge.callee not in index.functions:
                continue
            chains[edge.callee] = chains[current] + (edge.callee,)
            queue.append(edge.callee)
    return chains


def _has_timeout(call: ast.Call) -> bool:
    if any(kw.arg == "timeout" for kw in call.keywords):
        return True
    # Positional timeouts: wait(0.5), get(True, 0.5), result(5.0).
    for arg in call.args:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, (int, float)):
            return True
        if isinstance(arg, (ast.Name, ast.Attribute)):
            name = arg.attr if isinstance(arg, ast.Attribute) else arg.id
            if "timeout" in name.lower() or "deadline" in name.lower():
                return True
    return False


def _blocking_calls(fn: FunctionInfo) -> Iterator[Tuple[ast.Call, str]]:
    """Yield (call, what) for blocking shapes in ``fn``'s own body."""
    for node in own_nodes(fn):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute):
            # time.sleep(...)
            if (
                func.attr == "sleep"
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
            ):
                yield node, "time.sleep()"
                continue
            spec = _BLOCKING_METHODS.get(func.attr)
            if spec is None:
                continue
            if func.attr in ("get", "join"):
                name = _terminal_name(func.value)
                pattern = _QUEUEISH_RE if func.attr == "get" else _THREADISH_RE
                if name is None or not pattern.search(name.strip("_").lower()):
                    continue  # dict.get / str.join homonym
            if spec is True and _has_timeout(node):
                continue  # bounded wait: latency, not liveness
            receiver = ast.unparse(func.value)
            suffix = "" if spec is False else " without a timeout"
            yield node, f"{receiver}.{func.attr}(){suffix}"
        elif isinstance(func, ast.Name) and func.id == "sleep":
            yield node, "sleep()"


@xregister
class EventLoopBlocker(CrossRule):
    id = "event-loop-blocker"
    description = (
        "A blocking primitive (sleep, unbounded wait/result/get/join, "
        "socket receive) is transitively reachable from a dispatch loop: "
        "the call site must become awaitable (or bounded) before the "
        "serving path can move to asyncio."
    )

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        chains = reachable_from_roots(index)
        for qualname in sorted(chains):
            fn = index.functions.get(qualname)
            if fn is None:
                continue
            chain = chains[qualname]
            for call, what in _blocking_calls(fn):
                root = chain[0]
                hops = " -> ".join(_short(q) for q in chain)
                yield self.finding(
                    path=fn.path,
                    line=call.lineno,
                    col=call.col_offset,
                    message=(
                        f"{what} blocks the dispatch path rooted at "
                        f"{_short(root)} (chain: {hops}); make it bounded "
                        f"or move it off the dispatch thread"
                    ),
                )


def _short(qualname: str) -> str:
    module, _, rest = qualname.partition(":")
    return f"{module.rsplit('.', 1)[-1]}:{rest}" if rest else qualname
